//! The shared [`Classifier`] interface and evaluation helpers.

use mdl_data::metrics::ConfusionMatrix;
use mdl_data::Dataset;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;

/// A trainable multi-class classifier.
///
/// All baselines take an explicit seeded RNG so comparisons are reproducible.
pub trait Classifier: Send {
    /// Fits the model to a training set.
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng);

    /// Predicts a class for every row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<usize>;

    /// Short human-readable model name for report tables.
    fn name(&self) -> &'static str;
}

/// Accuracy and macro-F1 of a fitted classifier on a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// Unweighted mean per-class F1.
    pub macro_f1: f64,
}

/// Evaluates `model` on `test`.
pub fn evaluate(model: &dyn Classifier, test: &Dataset) -> Evaluation {
    let pred = model.predict(&test.x);
    let cm = ConfusionMatrix::from_predictions(&test.y, &pred, test.classes);
    Evaluation { accuracy: cm.accuracy(), macro_f1: cm.macro_f1() }
}

/// Fits on `train`, evaluates on `test`.
pub fn fit_evaluate(
    model: &mut dyn Classifier,
    train: &Dataset,
    test: &Dataset,
    rng: &mut StdRng,
) -> Evaluation {
    model.fit(train, rng);
    evaluate(model, test)
}
