//! Dummy classifiers that calibrate the floor of every comparison table.

use crate::classifier::Classifier;
use mdl_data::Dataset;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Always predicts the most frequent training class.
#[derive(Debug, Clone, Default)]
pub struct MajorityClass {
    class: Option<usize>,
}

impl MajorityClass {
    /// Creates an unfitted majority-class baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for MajorityClass {
    fn fit(&mut self, data: &Dataset, _rng: &mut StdRng) {
        let counts = data.class_counts();
        self.class = counts.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(i, _)| i);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let class = self.class.expect("predict called before fit");
        vec![class; x.rows()]
    }

    fn name(&self) -> &'static str {
        "Majority"
    }
}

/// Predicts classes at random with the training label frequencies.
#[derive(Debug, Clone, Default)]
pub struct Stratified {
    cdf: Vec<f64>,
    seed: u64,
}

impl Stratified {
    /// Creates an unfitted stratified-random baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for Stratified {
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng) {
        let counts = data.class_counts();
        let total: usize = counts.iter().sum();
        let mut acc = 0.0f64;
        self.cdf = counts
            .iter()
            .map(|&c| {
                acc += c as f64 / total.max(1) as f64;
                acc
            })
            .collect();
        self.seed = rng.gen();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(!self.cdf.is_empty(), "predict called before fit");
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..x.rows())
            .map(|_| {
                let u: f64 = rng.gen();
                self.cdf.iter().position(|&c| u <= c).unwrap_or(self.cdf.len() - 1)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Stratified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::metrics::accuracy;
    use rand::SeedableRng;

    fn skewed() -> Dataset {
        let y: Vec<usize> = (0..100).map(|i| usize::from(i >= 70)).collect();
        Dataset::new(Matrix::zeros(100, 2), y, 2)
    }

    #[test]
    fn majority_matches_base_rate() {
        let mut rng = StdRng::seed_from_u64(160);
        let d = skewed();
        let mut m = MajorityClass::new();
        m.fit(&d, &mut rng);
        let pred = m.predict(&d.x);
        assert!(pred.iter().all(|&p| p == 0));
        assert!((accuracy(&d.y, &pred) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn stratified_accuracy_near_sum_of_squares() {
        let mut rng = StdRng::seed_from_u64(161);
        let d = skewed();
        let mut s = Stratified::new();
        s.fit(&d, &mut rng);
        let pred = s.predict(&d.x);
        // expected accuracy = 0.7² + 0.3² = 0.58; loose bound for n=100
        let acc = accuracy(&d.y, &pred);
        assert!((0.35..0.8).contains(&acc), "acc={acc}");
    }

    #[test]
    fn stratified_is_deterministic_after_fit() {
        let mut rng = StdRng::seed_from_u64(162);
        let d = skewed();
        let mut s = Stratified::new();
        s.fit(&d, &mut rng);
        assert_eq!(s.predict(&d.x), s.predict(&d.x));
    }
}
