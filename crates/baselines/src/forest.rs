//! Random forest: bagged CART trees with per-split feature subsampling.

use crate::classifier::Classifier;
use crate::tree::DecisionTree;
use mdl_data::Dataset;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random forest of [`DecisionTree`]s with majority voting.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Fraction of examples bootstrapped per tree.
    pub subsample: f64,
    trees: Vec<DecisionTree>,
    classes: usize,
}

impl Default for RandomForest {
    fn default() -> Self {
        Self { n_trees: 60, max_depth: 14, subsample: 1.0, trees: Vec::new(), classes: 0 }
    }
}

impl RandomForest {
    /// Creates a forest with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forest with an explicit tree count.
    pub fn with_trees(n_trees: usize) -> Self {
        Self { n_trees, ..Default::default() }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng) {
        assert!(!data.is_empty(), "cannot fit a forest to an empty dataset");
        self.classes = data.classes;
        self.trees.clear();
        let n = data.len();
        let draw = ((n as f64) * self.subsample).round().max(1.0) as usize;
        let mtry = ((data.dim() as f64).sqrt().round() as usize).max(1);
        for _ in 0..self.n_trees {
            // bootstrap sample
            let idx: Vec<usize> = (0..draw).map(|_| rng.gen_range(0..n)).collect();
            let sample = data.subset(&idx);
            let mut tree = DecisionTree {
                max_depth: self.max_depth,
                min_samples_split: 2,
                max_features: Some(mtry),
                ..Default::default()
            };
            let mut tree_rng = StdRng::seed_from_u64(rng.gen());
            tree.fit(&sample, &mut tree_rng);
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let mut votes = vec![vec![0usize; self.classes]; x.rows()];
        for tree in &self.trees {
            for (r, &p) in tree.predict(x).iter().enumerate() {
                votes[r][p] += 1;
            }
        }
        votes
            .iter()
            .map(|v| v.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(i, _)| i).unwrap_or(0))
            .collect()
    }

    fn name(&self) -> &'static str {
        "RandomForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::fit_evaluate;
    use mdl_data::synthetic::{gaussian_blobs, two_spirals};
    use rand::SeedableRng;

    #[test]
    fn forest_beats_chance_on_spirals() {
        let mut rng = StdRng::seed_from_u64(140);
        let d = two_spirals(400, 0.05, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut forest = RandomForest::with_trees(30);
        let eval = fit_evaluate(&mut forest, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.8, "{eval:?}");
    }

    #[test]
    fn forest_generalises_on_blobs() {
        let mut rng = StdRng::seed_from_u64(141);
        let d = gaussian_blobs(400, 4, 0.4, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut forest = RandomForest::with_trees(25);
        let eval = fit_evaluate(&mut forest, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.9, "{eval:?}");
        assert_eq!(forest.tree_count(), 25);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng_a = StdRng::seed_from_u64(142);
        let d = gaussian_blobs(150, 3, 0.4, &mut rng_a);
        let mut f1 = RandomForest::with_trees(10);
        let mut f2 = RandomForest::with_trees(10);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        f1.fit(&d, &mut r1);
        f2.fit(&d, &mut r2);
        assert_eq!(f1.predict(&d.x), f2.predict(&d.x));
    }
}
