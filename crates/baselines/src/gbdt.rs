//! Gradient-boosted decision trees with a second-order (XGBoost-style)
//! objective — the paper's strongest shallow baseline (reference [47]).
//!
//! Each boosting round fits one regression tree per class to the softmax
//! gradient/hessian pairs, with the regularised leaf weight
//! `w = -G / (H + λ)` and split gain
//! `½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`.

use crate::classifier::Classifier;
use mdl_data::Dataset;
use mdl_tensor::stats::softmax_rows;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegNode {
    Leaf { weight: f32 },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// One regression tree over `(gradient, hessian)` targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<RegNode>,
}

struct SplitSpec {
    feature: usize,
    threshold: f32,
}

impl RegTree {
    #[allow(clippy::too_many_arguments)]
    fn fit(
        x: &Matrix,
        idx: &[usize],
        grad: &[f32],
        hess: &[f32],
        max_depth: usize,
        lambda: f64,
        gamma: f64,
        min_child_weight: f64,
    ) -> Self {
        let mut tree = RegTree { nodes: Vec::new() };
        tree.build(x, idx, grad, hess, 0, max_depth, lambda, gamma, min_child_weight);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        idx: &[usize],
        grad: &[f32],
        hess: &[f32],
        depth: usize,
        max_depth: usize,
        lambda: f64,
        gamma: f64,
        min_child_weight: f64,
    ) -> usize {
        let g: f64 = idx.iter().map(|&i| grad[i] as f64).sum();
        let h: f64 = idx.iter().map(|&i| hess[i] as f64).sum();

        if depth < max_depth && idx.len() >= 2 {
            if let Some(split) =
                best_split(x, idx, grad, hess, g, h, lambda, gamma, min_child_weight)
            {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[(i, split.feature)] <= split.threshold);
                if !left_idx.is_empty() && !right_idx.is_empty() {
                    let me = self.nodes.len();
                    self.nodes.push(RegNode::Leaf { weight: 0.0 });
                    let left = self.build(
                        x,
                        &left_idx,
                        grad,
                        hess,
                        depth + 1,
                        max_depth,
                        lambda,
                        gamma,
                        min_child_weight,
                    );
                    let right = self.build(
                        x,
                        &right_idx,
                        grad,
                        hess,
                        depth + 1,
                        max_depth,
                        lambda,
                        gamma,
                        min_child_weight,
                    );
                    self.nodes[me] = RegNode::Split {
                        feature: split.feature,
                        threshold: split.threshold,
                        left,
                        right,
                    };
                    return me;
                }
            }
        }
        let me = self.nodes.len();
        self.nodes.push(RegNode::Leaf { weight: (-g / (h + lambda)) as f32 });
        me
    }

    fn predict_one(&self, row: &[f32]) -> f32 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                RegNode::Leaf { weight } => return *weight,
                RegNode::Split { feature, threshold, left, right } => {
                    at = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn best_split(
    x: &Matrix,
    idx: &[usize],
    grad: &[f32],
    hess: &[f32],
    g_total: f64,
    h_total: f64,
    lambda: f64,
    gamma: f64,
    min_child_weight: f64,
) -> Option<SplitSpec> {
    let parent_score = g_total * g_total / (h_total + lambda);
    let mut best: Option<(f64, SplitSpec)> = None;
    for f in 0..x.cols() {
        let mut sorted: Vec<usize> = idx.to_vec();
        sorted.sort_by(|&a, &b| {
            x[(a, f)].partial_cmp(&x[(b, f)]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut gl = 0.0f64;
        let mut hl = 0.0f64;
        for w in 0..sorted.len() - 1 {
            let i = sorted[w];
            gl += grad[i] as f64;
            hl += hess[i] as f64;
            let v_here = x[(i, f)];
            let v_next = x[(sorted[w + 1], f)];
            if v_here == v_next {
                continue;
            }
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < min_child_weight || hr < min_child_weight {
                continue;
            }
            let gain =
                0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score) - gamma;
            if gain > 0.0 && best.as_ref().is_none_or(|(b, _)| gain > *b) {
                best = Some((gain, SplitSpec { feature: f, threshold: 0.5 * (v_here + v_next) }));
            }
        }
    }
    best.map(|(_, s)| s)
}

/// Multi-class gradient-boosted trees.
#[derive(Debug, Clone)]
pub struct GradientBoost {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f32,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// L2 leaf-weight regularisation λ.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per round.
    pub subsample: f64,
    /// trees[round][class]
    trees: Vec<Vec<RegTree>>,
    classes: usize,
}

impl Default for GradientBoost {
    fn default() -> Self {
        Self {
            n_rounds: 40,
            learning_rate: 0.3,
            max_depth: 5,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.9,
            trees: Vec::new(),
            classes: 0,
        }
    }
}

impl GradientBoost {
    /// Creates a model with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with an explicit round count.
    pub fn with_rounds(n_rounds: usize) -> Self {
        Self { n_rounds, ..Default::default() }
    }

    /// Raw margins `F(x)` before the softmax.
    fn margins(&self, x: &Matrix) -> Matrix {
        let mut f = Matrix::zeros(x.rows(), self.classes);
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                for r in 0..x.rows() {
                    f[(r, k)] += self.learning_rate * tree.predict_one(x.row(r));
                }
            }
        }
        f
    }
}

impl Classifier for GradientBoost {
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng) {
        assert!(!data.is_empty(), "cannot fit GBDT to an empty dataset");
        self.classes = data.classes;
        self.trees.clear();
        let n = data.len();
        let c = data.classes;
        let mut margins = Matrix::zeros(n, c);

        for _ in 0..self.n_rounds {
            let probs = softmax_rows(&margins);
            // row subsample per round
            let idx: Vec<usize> = if self.subsample < 1.0 {
                (0..n).filter(|_| rng.gen::<f64>() < self.subsample).collect()
            } else {
                (0..n).collect()
            };
            let idx = if idx.is_empty() { (0..n).collect() } else { idx };

            let mut round_trees = Vec::with_capacity(c);
            for k in 0..c {
                let mut grad = vec![0.0f32; n];
                let mut hess = vec![0.0f32; n];
                for i in 0..n {
                    let p = probs[(i, k)];
                    let y = if data.y[i] == k { 1.0 } else { 0.0 };
                    grad[i] = p - y;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = RegTree::fit(
                    &data.x,
                    &idx,
                    &grad,
                    &hess,
                    self.max_depth,
                    self.lambda,
                    self.gamma,
                    self.min_child_weight,
                );
                for i in 0..n {
                    margins[(i, k)] += self.learning_rate * tree.predict_one(data.x.row(i));
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(!self.trees.is_empty(), "predict called before fit");
        self.margins(x).argmax_rows()
    }

    fn name(&self) -> &'static str {
        "XGBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::fit_evaluate;
    use mdl_data::synthetic::{gaussian_blobs, synthetic_digits, two_spirals};
    use rand::SeedableRng;

    #[test]
    fn boosting_learns_blobs() {
        let mut rng = StdRng::seed_from_u64(150);
        let d = gaussian_blobs(300, 3, 0.4, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut gb = GradientBoost::with_rounds(20);
        let eval = fit_evaluate(&mut gb, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.9, "{eval:?}");
    }

    #[test]
    fn boosting_learns_spirals() {
        let mut rng = StdRng::seed_from_u64(151);
        let d = two_spirals(400, 0.05, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut gb = GradientBoost::with_rounds(40);
        let eval = fit_evaluate(&mut gb, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.85, "{eval:?}");
    }

    #[test]
    fn boosting_handles_many_classes() {
        let mut rng = StdRng::seed_from_u64(152);
        let d = synthetic_digits(700, 0.08, &mut rng);
        let (train, test) = d.split(0.75, &mut rng);
        let mut gb = GradientBoost { n_rounds: 40, max_depth: 5, ..Default::default() };
        let eval = fit_evaluate(&mut gb, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.65, "{eval:?}");
    }

    #[test]
    fn more_rounds_fit_training_data_better() {
        let mut rng = StdRng::seed_from_u64(153);
        let d = gaussian_blobs(200, 3, 1.2, &mut rng);
        let train_acc = |rounds: usize, rng: &mut StdRng| {
            let mut gb = GradientBoost { n_rounds: rounds, subsample: 1.0, ..Default::default() };
            gb.fit(&d, rng);
            crate::classifier::evaluate(&gb, &d).accuracy
        };
        let few = train_acc(2, &mut rng);
        let many = train_acc(40, &mut rng);
        assert!(many >= few, "more rounds should not hurt training fit: {few} vs {many}");
    }

    #[test]
    fn leaf_weight_formula() {
        // single leaf on constant features: w = -G/(H+λ)
        let x = Matrix::zeros(4, 1);
        let idx = [0usize, 1, 2, 3];
        let grad = [1.0f32, 1.0, 1.0, 1.0];
        let hess = [1.0f32, 1.0, 1.0, 1.0];
        let tree = RegTree::fit(&x, &idx, &grad, &hess, 3, 1.0, 0.0, 0.0);
        let w = tree.predict_one(&[0.0]);
        assert!((w - (-4.0 / 5.0)).abs() < 1e-6, "w={w}");
    }
}
