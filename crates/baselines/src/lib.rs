//! # mdl-baselines
//!
//! The classical machine-learning baselines the paper compares its deep
//! models against (Table I and §IV-A): logistic regression, linear SVM,
//! CART decision tree, random forest and XGBoost-style gradient-boosted
//! trees — plus dummy classifiers that calibrate the floor of every table.
//!
//! All models implement the [`Classifier`] trait and are deterministic
//! given a seeded RNG.
//!
//! # Examples
//!
//! ```
//! use mdl_baselines::{Classifier, LogisticRegression, fit_evaluate};
//! use mdl_data::synthetic::gaussian_blobs;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = gaussian_blobs(200, 2, 0.3, &mut rng);
//! let (train, test) = data.split(0.7, &mut rng);
//! let mut lr = LogisticRegression::new();
//! let eval = fit_evaluate(&mut lr, &train, &test, &mut rng);
//! assert!(eval.accuracy > 0.9);
//! ```

#![warn(missing_docs)]

pub mod classifier;
pub mod dummy;
pub mod forest;
pub mod gbdt;
pub mod linear;
pub mod tree;

pub use classifier::{evaluate, fit_evaluate, Classifier, Evaluation};
pub use dummy::{MajorityClass, Stratified};
pub use forest::RandomForest;
pub use gbdt::GradientBoost;
pub use linear::{LinearSvm, LogisticRegression};
pub use tree::DecisionTree;

#[cfg(test)]
mod ranking_tests {
    //! Cross-model sanity: on a nonlinear task the tree family should beat
    //! the linear family, mirroring the ordering in the paper's Table I.

    use super::*;
    use mdl_data::synthetic::two_spirals;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ensemble_beats_single_tree_beats_linear_on_spirals() {
        let mut rng = StdRng::seed_from_u64(170);
        let d = two_spirals(500, 0.08, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);

        let mut lr = LogisticRegression::new();
        let mut dt = DecisionTree::new();
        let mut rf = RandomForest::with_trees(40);
        let e_lr = fit_evaluate(&mut lr, &train, &test, &mut rng);
        let e_dt = fit_evaluate(&mut dt, &train, &test, &mut rng);
        let e_rf = fit_evaluate(&mut rf, &train, &test, &mut rng);

        assert!(
            e_rf.accuracy >= e_dt.accuracy - 0.03,
            "forest {e_rf:?} should not trail tree {e_dt:?}"
        );
        assert!(
            e_dt.accuracy > e_lr.accuracy + 0.05,
            "tree {e_dt:?} should beat LR {e_lr:?} on a nonlinear task"
        );
    }
}
