//! Linear baselines: multinomial logistic regression and a linear SVM.

use crate::classifier::Classifier;
use mdl_data::Dataset;
use mdl_tensor::stats::softmax_rows;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Multinomial logistic regression trained by mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularisation strength.
    pub l2: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    weights: Option<Matrix>,
    bias: Option<Matrix>,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self { learning_rate: 0.1, l2: 1e-4, epochs: 60, batch_size: 32, weights: None, bias: None }
    }
}

impl LogisticRegression {
    /// Creates a model with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    fn scores(&self, x: &Matrix) -> Matrix {
        let w = self.weights.as_ref().expect("predict called before fit");
        let b = self.bias.as_ref().expect("predict called before fit");
        x.matmul(w).add_row_broadcast(b)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng) {
        let d = data.dim();
        let c = data.classes;
        let mut w = Matrix::zeros(d, c);
        let mut b = Matrix::zeros(1, c);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for chunk in order.chunks(self.batch_size.max(1)) {
                let bx = data.x.select_rows(chunk);
                let scores = bx.matmul(&w).add_row_broadcast(&b);
                let mut grad = softmax_rows(&scores);
                for (r, &i) in chunk.iter().enumerate() {
                    grad[(r, data.y[i])] -= 1.0;
                }
                grad.scale_mut(1.0 / chunk.len() as f32);
                let gw = bx.matmul_tn(&grad);
                w.scale_mut(1.0 - self.learning_rate * self.l2);
                w.add_scaled(-self.learning_rate, &gw);
                b.add_scaled(-self.learning_rate, &grad.sum_rows());
            }
        }
        self.weights = Some(w);
        self.bias = Some(b);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.scores(x).argmax_rows()
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

/// Linear SVM: one-vs-rest hinge loss trained by mini-batch SGD
/// (Pegasos-style but with a constant step for simplicity).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularisation strength.
    pub l2: f32,
    /// Training epochs.
    pub epochs: usize,
    weights: Option<Matrix>,
    bias: Option<Matrix>,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self { learning_rate: 0.05, l2: 1e-3, epochs: 60, weights: None, bias: None }
    }
}

impl LinearSvm {
    /// Creates a model with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng) {
        let d = data.dim();
        let c = data.classes;
        let mut w = Matrix::zeros(d, c);
        let mut b = Matrix::zeros(1, c);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for &i in &order {
                let xi = Matrix::row_vector(data.x.row(i));
                let scores = xi.matmul(&w).add_row_broadcast(&b);
                let yi = data.y[i];
                w.scale_mut(1.0 - self.learning_rate * self.l2);
                // one-vs-rest hinge: target margin +1 for true class, -1 others
                for k in 0..c {
                    let target = if k == yi { 1.0 } else { -1.0 };
                    if target * scores[(0, k)] < 1.0 {
                        for j in 0..d {
                            w[(j, k)] += self.learning_rate * target * xi[(0, j)];
                        }
                        b[(0, k)] += self.learning_rate * target;
                    }
                }
            }
        }
        self.weights = Some(w);
        self.bias = Some(b);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let w = self.weights.as_ref().expect("predict called before fit");
        let b = self.bias.as_ref().expect("predict called before fit");
        x.matmul(w).add_row_broadcast(b).argmax_rows()
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::fit_evaluate;
    use mdl_data::synthetic::{gaussian_blobs, two_spirals};
    use rand::SeedableRng;

    #[test]
    fn lr_separates_blobs() {
        let mut rng = StdRng::seed_from_u64(120);
        let d = gaussian_blobs(300, 3, 0.3, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut lr = LogisticRegression::new();
        let eval = fit_evaluate(&mut lr, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.9, "{eval:?}");
        assert!(eval.macro_f1 > 0.9);
    }

    #[test]
    fn svm_separates_blobs() {
        let mut rng = StdRng::seed_from_u64(121);
        let d = gaussian_blobs(300, 3, 0.3, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut svm = LinearSvm::new();
        let eval = fit_evaluate(&mut svm, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.9, "{eval:?}");
    }

    #[test]
    fn linear_models_fail_on_spirals() {
        // sanity: the nonlinear task defeats linear baselines (paper §IV-A
        // observes shallow models are a poor fit)
        let mut rng = StdRng::seed_from_u64(122);
        let d = two_spirals(400, 0.05, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut lr = LogisticRegression::new();
        let eval = fit_evaluate(&mut lr, &train, &test, &mut rng);
        assert!(eval.accuracy < 0.8, "spirals should defeat LR: {eval:?}");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let lr = LogisticRegression::new();
        let _ = lr.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    fn names() {
        assert_eq!(LogisticRegression::new().name(), "LR");
        assert_eq!(LinearSvm::new().name(), "SVM");
    }
}
