//! CART decision tree (Gini impurity, exact greedy splits).

use crate::classifier::Classifier;
use mdl_data::Dataset;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Tree nodes stored in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// A CART-style classification tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum examples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of random features considered per split
    /// (`None` = all features; random forests pass `sqrt(d)`).
    pub max_features: Option<usize>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) classes: usize,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            max_features: None,
            nodes: Vec::new(),
            classes: 0,
        }
    }
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(i, _)| i).unwrap_or(0)
}

impl DecisionTree {
    /// Creates a tree with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tree with an explicit depth limit.
    pub fn with_depth(max_depth: usize) -> Self {
        Self { max_depth, ..Default::default() }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn class_counts(&self, data: &Dataset, idx: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &i in idx {
            counts[data.y[i]] += 1;
        }
        counts
    }

    /// Finds the best `(feature, threshold, gini_decrease)` split, or `None`.
    fn best_split(
        &self,
        data: &Dataset,
        idx: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f32, f64)> {
        let parent_counts = self.class_counts(data, idx);
        let parent_gini = gini(&parent_counts);
        if parent_gini == 0.0 {
            return None;
        }
        let n = idx.len() as f64;

        let mut features: Vec<usize> = (0..data.dim()).collect();
        if let Some(k) = self.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1));
        }

        let mut best: Option<(usize, f32, f64)> = None;
        for &f in &features {
            // sort example indices by feature value
            let mut sorted: Vec<usize> = idx.to_vec();
            sorted.sort_by(|&a, &b| {
                data.x[(a, f)].partial_cmp(&data.x[(b, f)]).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0usize; self.classes];
            let mut right_counts = parent_counts.clone();
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_counts[data.y[i]] += 1;
                right_counts[data.y[i]] -= 1;
                let v_here = data.x[(i, f)];
                let v_next = data.x[(sorted[w + 1], f)];
                if v_here == v_next {
                    continue; // cannot split between equal values
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                let weighted = nl / n * gini(&left_counts) + nr / n * gini(&right_counts);
                let decrease = parent_gini - weighted;
                if best.is_none_or(|(_, _, d)| decrease > d) {
                    best = Some((f, 0.5 * (v_here + v_next), decrease));
                }
            }
        }
        best.filter(|&(_, _, d)| d > 1e-12)
    }

    fn build(&mut self, data: &Dataset, idx: &[usize], depth: usize, rng: &mut StdRng) -> usize {
        let counts = self.class_counts(data, idx);
        let make_leaf =
            depth >= self.max_depth || idx.len() < self.min_samples_split || gini(&counts) == 0.0;
        if !make_leaf {
            if let Some((feature, threshold, _)) = self.best_split(data, idx, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data.x[(i, feature)] <= threshold);
                if !left_idx.is_empty() && !right_idx.is_empty() {
                    let me = self.nodes.len();
                    self.nodes.push(Node::Leaf { class: 0 }); // placeholder
                    let left = self.build(data, &left_idx, depth + 1, rng);
                    let right = self.build(data, &right_idx, depth + 1, rng);
                    self.nodes[me] = Node::Split { feature, threshold, left, right };
                    return me;
                }
            }
        }
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority(&counts) });
        me
    }

    fn predict_one(&self, row: &[f32]) -> usize {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    at = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset, rng: &mut StdRng) {
        assert!(!data.is_empty(), "cannot fit a tree to an empty dataset");
        self.classes = data.classes;
        self.nodes.clear();
        let idx: Vec<usize> = (0..data.len()).collect();
        self.build(data, &idx, 0, rng);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(!self.nodes.is_empty(), "predict called before fit");
        (0..x.rows()).map(|r| self.predict_one(x.row(r))).collect()
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{evaluate, fit_evaluate};
    use mdl_data::synthetic::{gaussian_blobs, two_spirals};
    use rand::SeedableRng;

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn memorises_training_set_without_depth_limit() {
        let mut rng = StdRng::seed_from_u64(130);
        let d = gaussian_blobs(120, 3, 0.4, &mut rng);
        let mut tree = DecisionTree { max_depth: 64, min_samples_split: 2, ..Default::default() };
        tree.fit(&d, &mut rng);
        let eval = evaluate(&tree, &d);
        assert!(eval.accuracy > 0.99, "tree should fit training data: {eval:?}");
    }

    #[test]
    fn generalises_on_blobs() {
        let mut rng = StdRng::seed_from_u64(131);
        let d = gaussian_blobs(400, 4, 0.3, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut tree = DecisionTree::new();
        let eval = fit_evaluate(&mut tree, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.9, "{eval:?}");
    }

    #[test]
    fn handles_nonlinear_boundaries_better_than_chance() {
        let mut rng = StdRng::seed_from_u64(132);
        let d = two_spirals(400, 0.05, &mut rng);
        let (train, test) = d.split(0.7, &mut rng);
        let mut tree = DecisionTree::new();
        let eval = fit_evaluate(&mut tree, &train, &test, &mut rng);
        assert!(eval.accuracy > 0.7, "{eval:?}");
    }

    #[test]
    fn depth_limit_caps_nodes() {
        let mut rng = StdRng::seed_from_u64(133);
        let d = gaussian_blobs(200, 2, 1.5, &mut rng);
        let mut stump = DecisionTree::with_depth(1);
        stump.fit(&d, &mut rng);
        assert!(stump.node_count() <= 3, "depth-1 tree has ≤3 nodes");
    }

    #[test]
    fn constant_labels_give_single_leaf() {
        let mut rng = StdRng::seed_from_u64(134);
        let d = Dataset::new(Matrix::zeros(10, 2), vec![1; 10], 3);
        let mut tree = DecisionTree::new();
        tree.fit(&d, &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&Matrix::zeros(2, 2)), vec![1, 1]);
    }
}
