//! Benchmarks for the application models (E6–E9 ablations): one DeepMood
//! training step per fusion head, and session featurization throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdl_core::data::typing::{featurize_session, TypingProfile};
use mdl_core::prelude::*;
use std::time::Duration;

fn sample_sessions(n: usize, rng: &mut StdRng) -> Vec<mdl_core::data::typing::TypingSession> {
    let profile = TypingProfile::default();
    (0..n).map(|_| profile.generate_session(rng)).collect()
}

fn bench_fusion_heads(c: &mut Criterion) {
    let mut group = c.benchmark_group("deepmood_train_step");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2050);
    let sessions = sample_sessions(16, &mut rng);
    let pairs: Vec<(Vec<&Matrix>, usize)> =
        sessions.iter().enumerate().map(|(i, s)| (s.views().to_vec(), i % 2)).collect();

    for (name, fusion) in [
        ("fc", FusionKind::FullyConnected { hidden: 24 }),
        ("fm", FusionKind::FactorizationMachine { factors: 6 }),
        ("mvm", FusionKind::MultiViewMachine { factors: 6 }),
    ] {
        group.bench_with_input(BenchmarkId::new("fusion", name), &fusion, |bench, f| {
            bench.iter(|| {
                let mut model = DeepMood::new(
                    &mdl_core::deepmood::biaffect_view_dims(),
                    DeepMoodConfig { fusion: *f, epochs: 1, hidden_dim: 8, ..Default::default() },
                    &mut rng,
                );
                std::hint::black_box(model.train(&pairs, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_session_generation_and_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_pipeline");
    group.sample_size(50).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2051);
    let profile = TypingProfile::default();
    group.bench_function("generate_session", |bench| {
        bench.iter(|| std::hint::black_box(profile.generate_session(&mut rng)));
    });
    let session = profile.generate_session(&mut rng);
    group.bench_function("featurize_session", |bench| {
        bench.iter(|| std::hint::black_box(featurize_session(&session)));
    });
    group.finish();
}

criterion_group!(benches, bench_fusion_heads, bench_session_generation_and_features);
criterion_main!(benches);
