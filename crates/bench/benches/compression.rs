//! Benchmarks for the compression codecs (E5 ablations): Huffman encode /
//! decode throughput, k-means quantization, pruning, and the end-to-end
//! Deep Compression pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdl_core::prelude::*;
use rand::Rng as _;
use std::time::Duration;

fn bench_huffman(c: &mut Criterion) {
    let mut group = c.benchmark_group("huffman");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2030);
    // skewed stream resembling pruned quantization indices
    let data: Vec<u8> = (0..65_536)
        .map(|_| if rng.gen::<f32>() < 0.85 { 0 } else { rng.gen_range(1..16) })
        .collect();
    group.bench_function("encode_64k", |bench| {
        bench.iter(|| std::hint::black_box(HuffmanEncoded::encode(&data)));
    });
    let encoded = HuffmanEncoded::encode(&data);
    group.bench_function("decode_64k", |bench| {
        bench.iter(|| std::hint::black_box(encoded.decode()));
    });
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2031);
    let w = Init::Normal { std: 1.0 }.sample(128, 128, &mut rng);
    for &bits in &[2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("kmeans", bits), &bits, |bench, &b| {
            bench.iter(|| std::hint::black_box(QuantizedMatrix::kmeans(&w, b, &mut rng)));
        });
    }
    group.bench_function("uniform_8bit", |bench| {
        bench.iter(|| std::hint::black_box(QuantizedMatrix::uniform(&w, 8)));
    });
    group.finish();
}

fn bench_prune_and_pipeline(c: &mut Criterion) {
    use mdl_core::compress::prune_matrix;
    let mut group = c.benchmark_group("prune_pipeline");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2032);
    let w = Init::Normal { std: 1.0 }.sample(256, 256, &mut rng);
    group.bench_function("prune_256x256_90pct", |bench| {
        bench.iter(|| {
            let mut m = w.clone();
            std::hint::black_box(prune_matrix(&mut m, 0.9))
        });
    });
    group.bench_function("deep_compress_small_net", |bench| {
        bench.iter(|| {
            let mut net = Sequential::new();
            let mut r = StdRng::seed_from_u64(7);
            net.push(Dense::new(64, 64, Activation::Relu, &mut r));
            net.push(Dense::new(64, 10, Activation::Identity, &mut r));
            std::hint::black_box(deep_compress(
                &mut net,
                None,
                &DeepCompressionConfig {
                    sparsity: 0.9,
                    quant_bits: 4,
                    finetune: None,
                    prune_steps: 1,
                },
                &mut r,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_huffman, bench_quantize, bench_prune_and_pipeline);
criterion_main!(benches);
