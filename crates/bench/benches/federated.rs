//! Benchmarks for the training-side systems (E1/E2 ablations): cost of one
//! FedAvg round as local epochs grow, selective-SGD round cost vs θ, and
//! update-transport encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdl_core::prelude::*;
use rand::Rng as _;
use std::time::Duration;

fn setup(rng: &mut StdRng) -> (MlpSpec, Vec<Dataset>, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(400, 0.08, rng);
    let (train, test) = data.split(0.8, rng);
    let clients = partition_dataset(&train, 8, Partition::Iid, rng);
    (MlpSpec::new(vec![64, 32, 10], 42), clients, test)
}

fn bench_fedavg_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedavg_round");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2010);
    let (spec, clients, test) = setup(&mut rng);
    let availability = AvailabilityModel::always_available(clients.len());
    for &epochs in &[1usize, 5, 20] {
        group.bench_with_input(BenchmarkId::new("local_epochs", epochs), &epochs, |bench, &e| {
            bench.iter(|| {
                let cfg = FedConfig {
                    rounds: 1,
                    client_fraction: 1.0,
                    local_epochs: e,
                    batch_size: 16,
                    learning_rate: 0.1,
                    ..Default::default()
                };
                std::hint::black_box(run_federated(
                    &spec,
                    &clients,
                    &test,
                    &cfg,
                    &availability,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

fn bench_selective_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("selective_sgd_round");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2011);
    let (spec, clients, test) = setup(&mut rng);
    for &theta in &[0.01f64, 0.1, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("theta", format!("{theta}")),
            &theta,
            |bench, &t| {
                bench.iter(|| {
                    let cfg = SelectiveConfig {
                        rounds: 1,
                        upload_fraction: t,
                        local_steps: 5,
                        ..Default::default()
                    };
                    std::hint::black_box(run_selective_sgd(&spec, &clients, &test, &cfg, &mut rng))
                });
            },
        );
    }
    group.finish();
}

fn bench_update_transport(c: &mut Criterion) {
    use mdl_core::federated::{DenseUpdate, SparseUpdate};
    let mut group = c.benchmark_group("update_transport");
    group.sample_size(50).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2012);
    let values: Vec<f32> = (0..10_000).map(|_| rng.gen::<f32>() - 0.5).collect();
    group.bench_function("dense_encode_decode_10k", |bench| {
        bench.iter(|| {
            let u = DenseUpdate { values: values.clone(), num_examples: 100 };
            std::hint::black_box(DenseUpdate::decode(u.encode()))
        });
    });
    group.bench_function("sparse_top1pct_10k", |bench| {
        bench.iter(|| std::hint::black_box(SparseUpdate::top_fraction(&values, 0.01, 100)));
    });
    group.finish();
}

criterion_group!(benches, bench_fedavg_round, bench_selective_round, bench_update_transport);
criterion_main!(benches);
