//! Benchmarks for the inference paths of §III (E4 ablations): dense vs
//! compressed-sparse vs block-circulant forward passes, and the ARDEN
//! device-side transform.

use criterion::{criterion_group, criterion_main, Criterion};
use mdl_core::compress::{BlockCirculant, CsrMatrix};
use mdl_core::nn::Layer;
use mdl_core::prelude::*;
use std::time::Duration;

fn bench_forward_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_64x256x10");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2040);
    let x = Init::Normal { std: 0.5 }.sample(32, 64, &mut rng);

    let mut dense = Sequential::new();
    dense.push(Dense::new(64, 256, Activation::Relu, &mut rng));
    dense.push(Dense::new(256, 10, Activation::Identity, &mut rng));
    group.bench_function("dense", |bench| {
        bench.iter(|| std::hint::black_box(dense.forward(&x, Mode::Eval)));
    });

    // 90%-pruned first layer in CSR
    let mut w = Init::Normal { std: 0.5 }.sample(64, 256, &mut rng);
    let _ = mdl_core::compress::prune_matrix(&mut w, 0.9);
    let csr = CsrMatrix::from_dense(&w);
    group.bench_function("sparse_csr_layer1", |bench| {
        bench.iter(|| std::hint::black_box(csr.matmul_into(&x)));
    });
    group.bench_function("dense_layer1_reference", |bench| {
        bench.iter(|| std::hint::black_box(x.matmul(&w)));
    });

    let mut circ = Sequential::new();
    circ.push(BlockCirculant::new(64, 256, 32, Activation::Relu, &mut rng));
    circ.push(Dense::new(256, 10, Activation::Identity, &mut rng));
    group.bench_function("block_circulant", |bench| {
        bench.iter(|| std::hint::black_box(circ.forward(&x, Mode::Eval)));
    });
    group.finish();
}

fn bench_arden_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("arden");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2041);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 32, Activation::Relu, &mut rng));
    net.push(Dense::new(32, 10, Activation::Identity, &mut rng));
    let mut arden = Arden::from_pretrained(net, ArdenConfig::default());
    let x = Init::Normal { std: 0.5 }.sample(32, 64, &mut rng);
    group.bench_function("device_transform_batch32", |bench| {
        bench.iter(|| std::hint::black_box(arden.transform(&x, &mut rng)));
    });
    group.bench_function("full_private_inference_batch32", |bench| {
        bench.iter(|| std::hint::black_box(arden.infer(&x, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_forward_variants, bench_arden_transform);
criterion_main!(benches);
