//! Microbenchmarks of the blocked GEMM kernel layer: naive reference vs
//! cache-blocked at several thread counts, the `_into` zero-allocation
//! forms, and the GRU hot path they back.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdl_core::nn::{Layer, Mode};
use mdl_core::prelude::*;
use mdl_core::tensor::kernel;
use std::time::Duration;

fn bench_gemm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(15).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3001);
    for &n in &[64usize, 128, 256] {
        let a = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
        let b = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul_naive(&b)));
        });
        for threads in [1usize, 2] {
            kernel::set_threads(threads);
            let mut out = Matrix::zeros(n, n);
            group.bench_with_input(
                BenchmarkId::new(format!("blocked_t{threads}"), n),
                &n,
                |bench, _| {
                    bench.iter(|| {
                        a.matmul_into(&b, &mut out);
                        std::hint::black_box(&out);
                    });
                },
            );
        }
        kernel::set_threads(1);
    }
    group.finish();
}

fn bench_transposed_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_transposed");
    group.sample_size(15).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3002);
    let n = 128usize;
    let a = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
    let b = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
    let mut out = Matrix::zeros(n, n);
    group.bench_function("tn_into", |bench| {
        bench.iter(|| {
            a.matmul_tn_into(&b, &mut out);
            std::hint::black_box(&out);
        });
    });
    group.bench_function("nt_into", |bench| {
        bench.iter(|| {
            a.matmul_nt_into(&b, &mut out);
            std::hint::black_box(&out);
        });
    });
    group.finish();
}

fn bench_gru_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("gru_hot_path");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(3003);
    let mut gru = Gru::new(8, 32, &mut rng);
    let seq = Init::Normal { std: 0.5 }.sample(64, 8, &mut rng);
    let grad = Init::Normal { std: 0.1 }.sample(64, 32, &mut rng);
    group.bench_function("forward_backward", |bench| {
        bench.iter(|| {
            let out = gru.forward(&seq, Mode::Train);
            std::hint::black_box(&out);
            std::hint::black_box(gru.backward(&grad));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gemm_variants, bench_transposed_forms, bench_gru_hot_path);
criterion_main!(benches);
