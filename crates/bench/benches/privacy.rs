//! Benchmarks for the privacy machinery (E3 ablations): moments-accountant
//! queries, mechanism perturbation, and a full DP-SGD step (whose
//! per-example backward passes dominate DP training cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdl_core::prelude::*;
use rand::Rng as _;
use std::time::Duration;

fn bench_accountant(c: &mut Criterion) {
    let mut group = c.benchmark_group("moments_accountant");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    for &steps in &[100u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("epsilon", steps), &steps, |bench, &t| {
            bench.iter(|| std::hint::black_box(compute_epsilon(0.01, 1.1, t, 1e-5)));
        });
    }
    group.finish();
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms");
    group.sample_size(50).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2020);
    let template: Vec<f32> = (0..10_000).map(|_| rng.gen::<f32>() - 0.5).collect();
    group.bench_function("gaussian_perturb_10k", |bench| {
        let mech = GaussianMechanism::new(1.0, 1.1);
        bench.iter(|| {
            let mut v = template.clone();
            mech.perturb(&mut v, &mut rng);
            std::hint::black_box(v)
        });
    });
    group.bench_function("clip_10k", |bench| {
        bench.iter(|| {
            let mut v = template.clone();
            std::hint::black_box(mdl_core::privacy::clip_update(&mut v, 1.0))
        });
    });
    group.finish();
}

fn bench_dp_sgd_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_sgd");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2021);
    let data = mdl_core::data::synthetic::synthetic_digits(256, 0.08, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 42);
    group.bench_function("one_epoch_lot64", |bench| {
        bench.iter(|| {
            let mut model = spec.build();
            std::hint::black_box(train_dp_sgd(
                &mut model,
                &data.x,
                &data.y,
                &DpSgdConfig { epochs: 1, lot_size: 64, ..Default::default() },
                &mut rng,
            ))
        });
    });
    // non-private reference: same epoch of plain mini-batch SGD
    group.bench_function("one_epoch_sgd_reference", |bench| {
        bench.iter(|| {
            let mut model = spec.build();
            let mut opt = Sgd::new(0.1);
            std::hint::black_box(fit_classifier(
                &mut model,
                &mut opt,
                &data.x,
                &data.y,
                &TrainConfig { epochs: 1, batch_size: 64, ..Default::default() },
                &mut rng,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_accountant, bench_mechanisms, bench_dp_sgd_step);
criterion_main!(benches);
