//! Benchmarks for the `mdl-serve` runtime: single-request round trip
//! through the batching pipeline, batched closed-loop throughput, and the
//! shed (early-exit) fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use mdl_core::prelude::*;
use mdl_serve::{run_load, InferenceServer, LoadGenConfig, LoadMode, ServeConfig};
use std::time::Duration;

/// ~9.6M MACs: big enough that a wearable on Wi-Fi routes to the cloud,
/// so requests exercise the queue/scheduler/worker path.
fn cloud_model(rng: &mut StdRng) -> Sequential {
    let mut net = Sequential::new();
    net.push(Dense::new(32, 3072, Activation::Relu, rng));
    net.push(Dense::new(3072, 3072, Activation::Relu, rng));
    net.push(Dense::new(3072, 10, Activation::Identity, rng));
    net
}

fn wearable_wifi() -> ClientProfile {
    ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi }
}

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(3100);

    let server = InferenceServer::start(
        cloud_model(&mut rng),
        None,
        ServeConfig { workers: 2, max_wait: Duration::from_micros(200), ..Default::default() },
    );
    let client = server.client();
    let input = [0.25f32; 32];
    group.bench_function("cloud_round_trip_1", |b| {
        b.iter(|| {
            let rx = client.submit(&input, wearable_wifi()).expect("server up");
            std::hint::black_box(rx.recv().expect("answered"))
        });
    });

    let inputs = Matrix::from_fn(64, 32, |r, c2| ((r * 32 + c2) as f32 * 0.11).sin());
    group.bench_function("closed_loop_64req_c8", |b| {
        b.iter(|| {
            let report = run_load(
                &client,
                &inputs,
                &LoadGenConfig {
                    seed: 9,
                    requests: 64,
                    mode: LoadMode::Closed { concurrency: 8 },
                    profiles: vec![wearable_wifi()],
                    classes: vec![],
                },
            );
            assert_eq!(report.completed, 64);
            std::hint::black_box(report)
        });
    });
    drop(client);
    server.shutdown();

    // shed path: every cloud-bound request answered by the early-exit head
    let mut fallback = Sequential::new();
    fallback.push(Dense::new(32, 10, Activation::Identity, &mut rng));
    let server = InferenceServer::start(
        cloud_model(&mut rng),
        Some(fallback),
        ServeConfig { shed_queue_depth: 0, ..Default::default() },
    );
    let client = server.client();
    group.bench_function("shed_early_exit_1", |b| {
        b.iter(|| {
            let rx = client.submit(&input, wearable_wifi()).expect("server up");
            std::hint::black_box(rx.recv().expect("answered"))
        });
    });
    drop(client);
    server.shutdown();
    group.finish();
}

criterion_group!(benches, bench_round_trip);
criterion_main!(benches);
