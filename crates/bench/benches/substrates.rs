//! Microbenchmarks of the numeric substrate: matrix products, SVD, FFT,
//! and the GRU forward/backward that dominates the applications' training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdl_core::nn::Layer;
use mdl_core::prelude::*;
use rand::Rng as _;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2001);
    for &n in &[32usize, 64, 128] {
        let a = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
        let b = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2002);
    for &n in &[16usize, 32, 64] {
        let a = Init::Normal { std: 1.0 }.sample(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(mdl_core::tensor::linalg::svd(&a)));
        });
    }
    group.finish();
}

fn bench_circulant_fft_vs_dense(c: &mut Criterion) {
    use mdl_core::tensor::fft::{circulant_matvec, circulant_matvec_dense};
    let mut group = c.benchmark_group("circulant_matvec");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2003);
    for &n in &[64usize, 256, 1024] {
        let gen: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
        let x: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(circulant_matvec(&gen, &x)));
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(circulant_matvec_dense(&gen, &x)));
        });
    }
    group.finish();
}

fn bench_gru(c: &mut Criterion) {
    let mut group = c.benchmark_group("gru");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2004);
    let mut gru = Gru::new(4, 16, &mut rng);
    let seq = Init::Normal { std: 0.5 }.sample(40, 4, &mut rng);
    group.bench_function("forward_t40", |bench| {
        bench.iter(|| std::hint::black_box(gru.forward(&seq, Mode::Eval)));
    });
    group.bench_function("forward_backward_t40", |bench| {
        bench.iter(|| {
            gru.zero_grad();
            let out = gru.forward(&seq, Mode::Train);
            let gout = Matrix::ones(out.rows(), out.cols());
            std::hint::black_box(gru.backward(&gout))
        });
    });
    group.finish();
}

fn bench_lstm_vs_gru(c: &mut Criterion) {
    use mdl_core::nn::Lstm;
    let mut group = c.benchmark_group("recurrent_forward_t40");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2005);
    let seq = Init::Normal { std: 0.5 }.sample(40, 4, &mut rng);
    let mut gru = Gru::new(4, 16, &mut rng);
    let mut lstm = Lstm::new(4, 16, &mut rng);
    group.bench_function("gru", |bench| {
        bench.iter(|| std::hint::black_box(gru.forward(&seq, Mode::Eval)));
    });
    group.bench_function("lstm", |bench| {
        bench.iter(|| std::hint::black_box(lstm.forward(&seq, Mode::Eval)));
    });
    group.finish();
}

fn bench_conv_variants(c: &mut Criterion) {
    use mdl_core::nn::{Conv2d, ImageShape, SeparableConv2d};
    let mut group = c.benchmark_group("conv_16ch_8x8");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(2006);
    let shape = ImageShape::new(16, 8, 8);
    let x = Init::Normal { std: 0.5 }.sample(8, shape.len(), &mut rng);
    let mut standard = Conv2d::standard(shape, 16, 3, Activation::Relu, &mut rng);
    let mut separable = SeparableConv2d::new(shape, 16, 3, Activation::Relu, &mut rng);
    group.bench_function("standard", |bench| {
        bench.iter(|| std::hint::black_box(standard.forward(&x, Mode::Eval)));
    });
    group.bench_function("separable", |bench| {
        bench.iter(|| std::hint::black_box(separable.forward(&x, Mode::Eval)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_svd,
    bench_circulant_fft_vs_dense,
    bench_gru,
    bench_lstm_vs_gru,
    bench_conv_variants
);
criterion_main!(benches);
