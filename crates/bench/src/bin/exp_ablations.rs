//! Ablations over the design choices DESIGN.md §4 calls out:
//! encoder direction and width and fusion head for DeepMood, FedAvg local
//! epochs and 8-bit uploads, and DP clipping bounds.

use mdl_bench::{fmt_bytes, pct, print_table};
use mdl_core::deepmood::{train_and_evaluate, EncoderKind};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1011);

    // ---------- DeepMood architecture ablation ----------
    let cohort = BiAffectDataset::generate(
        &BiAffectConfig {
            participants: 20,
            sessions_per_participant: 40,
            mood_effect: 1.25,
            ..Default::default()
        },
        &mut rng,
    );
    let (train, test) = cohort.split(0.75, &mut rng);

    let fc = FusionKind::FullyConnected { hidden: 24 };
    let mut rows = Vec::new();
    for (label, encoder, hidden, fusion) in [
        ("GRU h=6, FC", EncoderKind::Gru, 6usize, fc),
        ("GRU h=12, FC", EncoderKind::Gru, 12, fc),
        ("BiGRU h=6, FC", EncoderKind::BiGru, 6, fc),
        ("LSTM h=12, FC (ref. [42])", EncoderKind::Lstm, 12, fc),
        ("GRU h=12, FM k=6", EncoderKind::Gru, 12, FusionKind::FactorizationMachine { factors: 6 }),
        ("GRU h=12, MVM k=6", EncoderKind::Gru, 12, FusionKind::MultiViewMachine { factors: 6 }),
    ] {
        let eval = train_and_evaluate(
            &train,
            &test,
            &DeepMoodConfig {
                hidden_dim: hidden,
                encoder,
                fusion,
                epochs: 12,
                learning_rate: 0.01,
                ..Default::default()
            },
            &mut rng,
        );
        rows.push(vec![label.into(), pct(eval.accuracy), pct(eval.macro_f1)]);
    }
    print_table(
        "ablation — DeepMood encoder/fusion (20 participants)",
        &["variant", "accuracy", "macro F1"],
        &rows,
    );

    // ---------- FedAvg transport ablation ----------
    let data = mdl_core::data::synthetic::synthetic_digits(1200, 0.08, &mut rng);
    let (ftrain, ftest) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&ftrain, 20, Partition::Iid, &mut rng);
    let availability = AvailabilityModel::always_available(20);
    let spec = MlpSpec::new(vec![64, 32, 10], 42);

    let mut rows = Vec::new();
    for (label, quantize, failure) in [
        ("fp32 uploads", false, 0.0f64),
        ("8-bit uploads", true, 0.0),
        ("fp32, 30% client failures", false, 0.3),
    ] {
        let run = run_federated(
            &spec,
            &clients,
            &ftest,
            &FedConfig {
                rounds: 15,
                client_fraction: 0.5,
                local_epochs: 3,
                learning_rate: 0.15,
                quantize_uploads: quantize,
                failure_prob: failure,
                ..Default::default()
            },
            &availability,
            &mut rng,
        );
        rows.push(vec![label.into(), pct(run.final_accuracy()), fmt_bytes(run.ledger.bytes_up)]);
    }
    print_table(
        "ablation — FedAvg transport and robustness (20 clients, 15 rounds)",
        &["variant", "accuracy", "uploaded"],
        &rows,
    );

    // ---------- DP clip-norm ablation ----------
    let mut rows = Vec::new();
    for clip in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let run = run_dp_fedavg(
            &spec,
            &clients,
            &ftest,
            &DpFedConfig {
                rounds: 20,
                sample_prob: 0.8,
                learning_rate: 0.15,
                local_epochs: 3,
                clip_norm: clip,
                noise_multiplier: 0.3,
                ..Default::default()
            },
            &mut rng,
        );
        rows.push(vec![
            format!("{clip}"),
            pct(run.final_accuracy()),
            format!("{:.0}%", 100.0 * run.clip_fraction),
        ]);
    }
    print_table(
        "ablation — DP-FedAvg clip bound S at z=0.3 (noise std ∝ S)",
        &["clip norm S", "accuracy", "deltas clipped"],
        &rows,
    );
    println!(
        "\nexpected shapes: wider/bidirectional encoders buy little on this\n\
         task (sessions are short); 8-bit uploads cut traffic ~4× at equal\n\
         accuracy; failures slow but do not break convergence; the clip bound\n\
         has a sweet spot — too small starves the signal, too large amplifies\n\
         the injected noise."
    );
}
