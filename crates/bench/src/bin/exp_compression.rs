//! E5 — §III-B: the model-compression family.
//!
//! Five tables: the pruning sweep, the quantization-bits sweep, the full
//! Deep Compression pipeline (with the one-shot vs iterative ablation),
//! the low-rank rank sweep, distillation, and the block-circulant
//! storage/compute trade-off.

use mdl_bench::{fmt_bytes, pct, print_table};
use mdl_core::compress::{
    apply_masks, factorize_network, prune_network, BlockCirculant, QuantizedMatrix,
};
use mdl_core::prelude::*;

fn trained_net(rng: &mut StdRng) -> (Sequential, Dataset, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(1600, 0.08, rng);
    let (train, test) = data.split(0.75, rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 128, Activation::Relu, rng));
    net.push(Dense::new(128, 10, Activation::Identity, rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 30, ..Default::default() },
        rng,
    );
    (net, train, test)
}

fn rebuild(params: &[f32], rng: &mut StdRng) -> Sequential {
    let mut n = Sequential::new();
    n.push(Dense::new(64, 128, Activation::Relu, rng));
    n.push(Dense::new(128, 10, Activation::Identity, rng));
    n.set_param_vector(params);
    n
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1005);
    let (mut base, train, test) = trained_net(&mut rng);
    let base_acc = base.accuracy(&test.x, &test.y);
    let params = base.param_vector();
    println!("reference net: 64→128→10, {} params, accuracy {}", params.len(), pct(base_acc));

    // --- pruning sweep (with brief masked fine-tuning) ---
    let mut rows = Vec::new();
    for sparsity in [0.5, 0.7, 0.8, 0.9, 0.95] {
        let mut net = rebuild(&params, &mut rng);
        let masks = prune_network(&mut net, sparsity);
        let no_ft = net.accuracy(&test.x, &test.y);
        let mut opt = Adam::new(0.01);
        for _ in 0..4 {
            let _ = fit_classifier(
                &mut net,
                &mut opt,
                &train.x,
                &train.y,
                &TrainConfig { epochs: 1, ..Default::default() },
                &mut rng,
            );
            apply_masks(&mut net, &masks);
        }
        rows.push(vec![pct(sparsity), pct(no_ft), pct(net.accuracy(&test.x, &test.y))]);
    }
    print_table(
        "§III-B — magnitude pruning (references [13], [28])",
        &["sparsity", "accuracy (one-shot)", "accuracy (+4 retrain epochs)"],
        &rows,
    );

    // --- quantization bits sweep ---
    let mut rows = Vec::new();
    for bits in [2u32, 3, 4, 5, 8] {
        let mut net = rebuild(&params, &mut rng);
        let mut q_bytes = 0u64;
        for layer in net.layers_mut() {
            let d = layer.as_any_mut().downcast_mut::<Dense>().expect("dense net");
            let q = QuantizedMatrix::kmeans(d.weight(), bits, &mut rng);
            q_bytes += q.storage_bytes();
            *d.weight_mut() = q.dequantize();
        }
        rows.push(vec![format!("{bits}"), pct(net.accuracy(&test.x, &test.y)), fmt_bytes(q_bytes)]);
    }
    print_table(
        "§III-B — k-means weight sharing (references [28], [32]–[34])",
        &["codebook bits", "accuracy", "weight storage"],
        &rows,
    );

    // --- deep compression pipeline: one-shot vs iterative ablation ---
    let mut rows = Vec::new();
    for (label, steps, finetune) in [
        ("one-shot, no retrain", 1usize, None),
        ("one-shot + retrain", 1, Some((6usize, 0.01f32))),
        ("iterative (3 steps) + retrain", 3, Some((6, 0.01))),
    ] {
        let mut net = rebuild(&params, &mut rng);
        let c = deep_compress(
            &mut net,
            Some((&train.x, &train.y)),
            &DeepCompressionConfig { sparsity: 0.8, quant_bits: 4, finetune, prune_steps: steps },
            &mut rng,
        );
        let acc = c.decompress().accuracy(&test.x, &test.y);
        rows.push(vec![
            label.into(),
            format!("{:.1}×", c.report.ratio()),
            fmt_bytes(c.report.original_bytes),
            fmt_bytes(c.report.final_bytes),
            pct(acc),
        ]);
    }
    print_table(
        "§III-B — Deep Compression pipeline at 80% sparsity + 4-bit + Huffman",
        &["schedule", "ratio", "fp32 size", "compressed", "accuracy"],
        &rows,
    );

    // --- low-rank factorization sweep ---
    let mut rows = Vec::new();
    for rank in [2usize, 4, 8, 16, 32] {
        let mut net = rebuild(&params, &mut rng);
        let fact =
            factorize_network(&mut net, |d| rank.min(d.weight().rows().min(d.weight().cols())));
        let infos = fact.layer_infos();
        let p: usize = infos.iter().map(|i| i.params).sum();
        rows.push(vec![format!("{rank}"), format!("{p}"), pct(fact.accuracy(&test.x, &test.y))]);
    }
    print_table(
        "§III-B — low-rank factorization (reference [36])",
        &["rank", "params", "accuracy (no fine-tune)"],
        &rows,
    );

    // --- distillation ---
    let mut rows = Vec::new();
    for student_hidden in [8usize, 16, 32] {
        let mut teacher = rebuild(&params, &mut rng);
        let mut student = Sequential::new();
        student.push(Dense::new(64, student_hidden, Activation::Relu, &mut rng));
        student.push(Dense::new(student_hidden, 10, Activation::Identity, &mut rng));
        let sp = student.num_params();
        let mut opt = Adam::new(0.01);
        let _ = distill(
            &mut teacher,
            &mut student,
            &mut opt,
            &train.x,
            &train.y,
            &DistillConfig { epochs: 40, ..Default::default() },
            &mut rng,
        );
        rows.push(vec![
            format!("64→{student_hidden}→10"),
            format!("{sp}"),
            format!("{:.1}×", params.len() as f64 / sp as f64),
            pct(student.accuracy(&test.x, &test.y)),
        ]);
    }
    print_table(
        "§III-B — knowledge distillation (reference [37])",
        &["student", "params", "shrink", "student accuracy"],
        &rows,
    );

    // --- block-circulant (CirCNN) ---
    let mut rows = Vec::new();
    for block in [4usize, 8, 16, 32] {
        let mut net = Sequential::new();
        net.push(Dense::new(64, 64, Activation::Relu, &mut rng));
        net.push(BlockCirculant::new(64, 64, block, Activation::Relu, &mut rng));
        net.push(Dense::new(64, 10, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &train.x,
            &train.y,
            &TrainConfig { epochs: 20, ..Default::default() },
            &mut rng,
        );
        let infos = net.layer_infos();
        rows.push(vec![
            format!("{block}"),
            format!("{}", infos[1].params),
            format!("{}", infos[1].macs),
            pct(net.accuracy(&test.x, &test.y)),
        ]);
    }
    print_table(
        "§III-B — block-circulant middle layer, 64×64 (CirCNN, reference [14]; dense = 4160 params / 4096 MACs)",
        &["block size", "layer params", "layer MACs (FFT)", "accuracy"],
        &rows,
    );
    println!(
        "\nexpected shape: every family trades a controlled accuracy loss for a\n\
         large size/compute reduction; retraining (pruning) and temperature\n\
         (distillation) recover most of the loss."
    );
}
