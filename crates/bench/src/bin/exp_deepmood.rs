//! E6 — §IV-A: DeepMood against the shallow baselines.
//!
//! The paper reports up to 90.31 % accuracy for the late-fusion DeepMood
//! models, a 5.56 % margin over XGBoost, and notes that LR/SVM "are not a
//! good fit" for the sequence task. This experiment reproduces the ordering
//! on the synthetic BiAffect cohort.

use mdl_bench::{pct, print_table};
use mdl_core::deepmood::train_and_evaluate;
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1006);
    let cohort = BiAffectDataset::generate(
        &BiAffectConfig {
            participants: 40,
            sessions_per_participant: 40,
            mood_effect: 1.25,
            ..Default::default()
        },
        &mut rng,
    );
    let (train_sessions, test_sessions) = cohort.split(0.75, &mut rng);
    println!(
        "cohort: 40 participants × 40 sessions  (train {}, test {})",
        train_sessions.len(),
        test_sessions.len()
    );

    // shallow baselines on flattened "traditional" features (means and
    // counts — the paper observes shallow models are not a good fit to the
    // sequence task, so they never see the temporal structure)
    let featurize = |sessions: &[mdl_core::data::biaffect::MoodSession]| {
        let mut x = Matrix::zeros(sessions.len(), mdl_core::data::typing::BASIC_FEATURE_DIM);
        let mut y = Vec::new();
        for (r, s) in sessions.iter().enumerate() {
            x.row_mut(r)
                .copy_from_slice(&mdl_core::data::typing::featurize_session_basic(&s.session));
            y.push(s.label);
        }
        Dataset::new(x, y, 2)
    };
    let mut train_flat = featurize(&train_sessions);
    let mut test_flat = featurize(&test_sessions);
    let (m, s) = train_flat.standardize();
    test_flat.apply_standardization(&m, &s);

    let mut rows = Vec::new();
    #[allow(unused_assignments)]
    let mut xgb_acc = 0.0;
    {
        let mut run = |name: &str, model: &mut dyn Classifier, rng: &mut StdRng| -> f64 {
            let eval = fit_evaluate(model, &train_flat, &test_flat, rng);
            rows.push(vec![name.into(), pct(eval.accuracy), pct(eval.macro_f1)]);
            eval.accuracy
        };
        run("Majority (floor)", &mut MajorityClass::new(), &mut rng);
        run("LR", &mut LogisticRegression::new(), &mut rng);
        run("SVM", &mut LinearSvm::new(), &mut rng);
        run("Decision Tree", &mut DecisionTree::new(), &mut rng);
        run("RandomForest", &mut RandomForest::new(), &mut rng);
        xgb_acc = run("XGBoost", &mut GradientBoost::new(), &mut rng);
    }

    // the three DeepMood fusion variants on the raw sequences
    let mut best_deep = 0.0f64;
    for (name, fusion) in [
        ("DeepMood-FC (Eq. 2)", FusionKind::FullyConnected { hidden: 24 }),
        ("DeepMood-FM (Eq. 3)", FusionKind::FactorizationMachine { factors: 6 }),
        ("DeepMood-MVM (Eq. 4)", FusionKind::MultiViewMachine { factors: 6 }),
    ] {
        let eval = train_and_evaluate(
            &train_sessions,
            &test_sessions,
            &DeepMoodConfig {
                hidden_dim: 12,
                fusion,
                epochs: 16,
                learning_rate: 0.01,
                ..Default::default()
            },
            &mut rng,
        );
        best_deep = best_deep.max(eval.accuracy);
        rows.push(vec![name.into(), pct(eval.accuracy), pct(eval.macro_f1)]);
    }

    print_table(
        "§IV-A — session-level mood prediction (paper: DeepMood 90.31%, +5.56% over XGBoost)",
        &["method", "accuracy", "macro F1"],
        &rows,
    );
    println!("\nbest DeepMood vs XGBoost margin: {:+.2}%", 100.0 * (best_deep - xgb_acc));
    println!(
        "expected shape: DeepMood variants lead, XGBoost is the strongest\n\
         shallow model, and the linear models trail far behind."
    );
}
