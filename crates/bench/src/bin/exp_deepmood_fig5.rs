//! E7 — Fig. 5: prediction performance per participant.
//!
//! The paper plots each of 20 participants as (training sessions
//! contributed, test accuracy) and observes accuracies of ≥87 % once a
//! participant contributes more than ~400 sessions. We reproduce the
//! scatter with heterogeneous per-participant session counts.

use mdl_bench::{pct, print_table};
use mdl_core::data::biaffect::MoodSession;
use mdl_core::deepmood::per_participant_analysis;
use mdl_core::prelude::*;
use rand::Rng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1007);

    // heterogeneous activity: participants contribute 20–500 sessions
    let mut all_sessions: Vec<MoodSession> = Vec::new();
    let participants = 20usize;
    let mut cohort_cfg = BiAffectConfig { participants, ..Default::default() };
    for p in 0..participants {
        let sessions = match p % 5 {
            0 => 20,
            1 => 60,
            2 => 150,
            3 => 320,
            _ => 520,
        } + rng.gen_range(0..20usize);
        let single = BiAffectConfig {
            participants: 1,
            sessions_per_participant: sessions,
            ..Default::default()
        };
        let one = BiAffectDataset::generate(&single, &mut rng);
        all_sessions.extend(one.sessions.into_iter().map(|mut s| {
            s.participant = p;
            s
        }));
    }
    cohort_cfg.sessions_per_participant = 0; // counts vary per participant
    let cohort = BiAffectDataset { sessions: all_sessions, config: cohort_cfg };

    let (train, test) = {
        // per-participant 80/20 split
        use rand::seq::SliceRandom;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for p in 0..participants {
            let mut mine: Vec<MoodSession> =
                cohort.sessions.iter().filter(|s| s.participant == p).cloned().collect();
            mine.shuffle(&mut rng);
            let cut = (mine.len() as f64 * 0.8).round() as usize;
            for (i, s) in mine.into_iter().enumerate() {
                if i < cut {
                    train.push(s);
                } else {
                    test.push(s);
                }
            }
        }
        (train, test)
    };

    let points = per_participant_analysis(
        &cohort,
        &train,
        &test,
        &DeepMoodConfig {
            hidden_dim: 10,
            fusion: FusionKind::FullyConnected { hidden: 24 },
            epochs: 10,
            learning_rate: 0.01,
            ..Default::default()
        },
        &mut rng,
    );

    let mut sorted = points.clone();
    sorted.sort_by_key(|p| p.training_sessions);
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|p| {
            vec![format!("{}", p.participant), format!("{}", p.training_sessions), pct(p.accuracy)]
        })
        .collect();
    print_table(
        "Fig. 5 — per-participant accuracy vs training sessions (20 participants)",
        &["participant", "training sessions", "accuracy"],
        &rows,
    );

    let high: Vec<&_> = sorted.iter().filter(|p| p.training_sessions > 400).collect();
    let low: Vec<&_> = sorted.iter().filter(|p| p.training_sessions < 100).collect();
    let mean = |ps: &[&mdl_core::deepmood::ParticipantPoint]| {
        ps.iter().map(|p| p.accuracy).sum::<f64>() / ps.len().max(1) as f64
    };
    println!(
        "\nmean accuracy: >400 sessions → {} | <100 sessions → {}",
        pct(mean(&high)),
        pct(mean(&low))
    );
    println!(
        "expected shape: accuracy rises with contributed sessions; heavy\n\
         contributors sit at the top of the scatter, as in the paper's Fig. 5."
    );
}
