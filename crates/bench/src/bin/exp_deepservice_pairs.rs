//! E9 — §IV-B: binary user identification.
//!
//! The paper reports 99.1 % mean accuracy / 98.97 % mean F1 when separating
//! any two users (the shared-phone scenario).

use mdl_bench::{pct, print_table};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1009);
    let cohort = KeystrokeDataset::generate(
        &KeystrokeConfig { users: 10, sessions_per_user: 100, ..Default::default() },
        &mut rng,
    );
    let report = pairwise_identification(&cohort, 10, 12, &mut rng);

    let rows: Vec<Vec<String>> = report
        .pairs
        .iter()
        .map(|p| vec![format!("({}, {})", p.users.0, p.users.1), pct(p.accuracy), pct(p.f1)])
        .collect();
    print_table(
        "§IV-B — binary identification over 10 random user pairs (paper: 99.1% acc / 98.97% F1)",
        &["pair", "accuracy", "F1"],
        &rows,
    );
    println!("\nmean accuracy: {}   mean F1: {}", pct(report.mean_accuracy), pct(report.mean_f1));
    println!(
        "expected shape: near-ceiling accuracy on pairs — far above the 10-way\n\
         and 26-way numbers of Table I, because two signatures rarely collide."
    );
}
