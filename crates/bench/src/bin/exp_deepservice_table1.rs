//! E8 — Table I: DEEPSERVICE vs the shallow baselines at 10 and 26 users.
//!
//! Paper values for reference:
//!
//! ```text
//!                 10 users          26 users
//! method        acc      F1       acc      F1
//! LR            44.25%   45.31%   27.44%   30.26%
//! SVM           44.39%   45.12%   30.33%   31.90%
//! DecisionTree  53.50%   52.85%   43.37%   42.42%
//! RandomForest  77.05%   76.59%   67.87%   66.31%
//! XGBoost       85.14%   84.93%   79.48%   78.81%
//! DEEPSERVICE   87.35%   87.69%   82.73%   83.25%
//! ```

use mdl_bench::{pct, print_table};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1008);
    for users in [10usize, 26] {
        let cohort = KeystrokeDataset::generate(
            &KeystrokeConfig { users, sessions_per_user: 100, ..Default::default() },
            &mut rng,
        );
        let rows_data = table_one(&cohort, &mut rng);
        let rows: Vec<Vec<String>> = rows_data
            .iter()
            .map(|r| vec![r.method.to_string(), pct(r.accuracy), pct(r.f1)])
            .collect();
        print_table(
            &format!("Table I — user identification with {users} users (100 sessions each)"),
            &["method", "accuracy", "macro F1"],
            &rows,
        );
    }
    println!(
        "\nexpected shape (as in the paper's Table I): LR ≈ SVM ≪ DecisionTree\n\
         < RandomForest < XGBoost < DEEPSERVICE, and every method degrades\n\
         going from 10 to 26 users."
    );
}
