//! E3 — §II-C: user-level differentially private federated training "can
//! guarantee differential privacy without losing accuracy" (reference [22]).
//!
//! Sweeps the noise multiplier `z` at fixed clip bound and reports accuracy
//! alongside the moments-accountant ε. Also sweeps DP-SGD (reference [20])
//! on a centralised version of the same task for comparison.

use mdl_bench::{pct, print_table};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1003);
    let data = mdl_core::data::synthetic::synthetic_digits(1500, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 25, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![64, 48, 10], 42);

    let mut rows = Vec::new();
    for z in [0.0, 0.2, 0.3, 0.5, 1.0] {
        let run = run_dp_fedavg(
            &spec,
            &clients,
            &test,
            &DpFedConfig {
                rounds: 30,
                sample_prob: 0.8,
                local_epochs: 3,
                batch_size: 16,
                learning_rate: 0.15,
                clip_norm: if z == 0.0 { 1e9 } else { 2.0 },
                noise_multiplier: z,
                delta: 1e-5,
                eval_every: 30,
            },
            &mut rng,
        );
        rows.push(vec![
            format!("{z}"),
            pct(run.final_accuracy()),
            if run.epsilon.is_finite() { format!("{:.1}", run.epsilon) } else { "∞".into() },
            format!("{:.0}%", 100.0 * run.clip_fraction),
        ]);
    }
    print_table(
        "§II-C — DP-FedAvg (25 clients, p=0.8, S=2, δ=1e-5, 30 rounds)",
        &["noise multiplier z", "accuracy", "ε (user-level)", "deltas clipped"],
        &rows,
    );
    println!(
        "\nnote: ε values are large because the simulated population has only\n\
         25 users; the mechanism's ε shrinks with the population since the\n\
         noise scale is z·S/(p·K). The paper's deployment assumes millions.\n"
    );

    // centralised DP-SGD on the pooled data for reference
    let mut pool_x = clients[0].x.clone();
    let mut pool_y = clients[0].y.clone();
    for c in &clients[1..] {
        pool_x = pool_x.vstack(&c.x);
        pool_y.extend_from_slice(&c.y);
    }
    let mut rows = Vec::new();
    for z in [0.6, 1.0, 2.0] {
        let mut model = spec.build();
        let report = train_dp_sgd(
            &mut model,
            &pool_x,
            &pool_y,
            &DpSgdConfig {
                epochs: 25,
                lot_size: 64,
                clip_norm: 2.0,
                noise_multiplier: z,
                learning_rate: 0.2,
                delta: 1e-5,
            },
            &mut rng,
        );
        let acc = model.accuracy(&test.x, &test.y);
        rows.push(vec![
            format!("{z}"),
            pct(acc),
            format!("{:.2}", report.epsilon),
            format!("{:.0}%", 100.0 * report.clip_fraction),
        ]);
    }
    print_table(
        "reference [20] — centralised DP-SGD with the moments accountant",
        &["noise multiplier σ", "accuracy", "ε (example-level)", "grads clipped"],
        &rows,
    );
    println!(
        "\nexpected shape: moderate noise costs a few accuracy points while\n\
         driving ε into the useful single-digit regime; heavy noise destroys\n\
         accuracy — the trade-off curve of references [20] and [22]."
    );
}
