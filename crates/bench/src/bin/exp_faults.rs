//! E12 — federated training over a faulty network: the same FedAvg task
//! run over the ideal fabric (the pre-`mdl-net` assumption) and over an
//! LTE cohort with 20% dropout, 2x stragglers and a flaky radio. The
//! server aggregates whatever a majority quorum delivers by the deadline.
//! Prints the accuracy/transport table, checks the faulty run is
//! bit-reproducible, and writes `BENCH_faults.json`.

use mdl_bench::{fmt_bytes, print_table};
use mdl_core::prelude::*;
use std::fmt::Write as _;

const CLIENTS: usize = 10;
const ROUNDS: usize = 20;
const SEED: u64 = 42;
const FABRIC_SEED: u64 = 0xFA17;

fn fed_config() -> FedConfig {
    FedConfig {
        rounds: ROUNDS,
        client_fraction: 1.0,
        learning_rate: 0.2,
        local_epochs: 3,
        ..Default::default()
    }
}

/// LTE with mild ambient loss and jitter; 2x stragglers overshoot the
/// 120 ms per-message timeout (a healthy transfer takes ~77 ms), so
/// straggling shows up as timeouts and ambient loss as successful retries.
fn faulty_fabric() -> Fabric {
    let link = LinkConfig {
        loss_prob: 0.08,
        jitter_frac: 0.1,
        ..LinkConfig::clean(NetworkProfile::lte())
    };
    let config = FabricConfig {
        faults: FaultPlan {
            dropout_prob: 0.2,
            straggler_prob: 0.25,
            straggler_slowdown: 2.0,
            flaky_prob: 0.1,
            flaky_loss: 0.25,
            partitions: Vec::new(),
        },
        retry: RetryPolicy {
            timeout_s: 0.12,
            max_attempts: 3,
            base_backoff_s: 0.05,
            backoff_multiplier: 2.0,
            max_backoff_s: 0.4,
        },
        round_deadline_s: 5.0,
        quorum_fraction: 0.4,
        max_failed_rounds: 5,
        link,
    };
    Fabric::new(CLIENTS, config, FABRIC_SEED)
}

struct FaultyRun {
    accuracy: f64,
    aggregated_rounds: usize,
    transport: TransportMetrics,
    /// Observability export of the same run; the `net.*` counters here are
    /// the single source of truth for the byte accounting below.
    obs: ObsSnapshot,
}

fn run_faulty(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    availability: &AvailabilityModel,
) -> FaultyRun {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut fabric = faulty_fabric();
    let obs = Obs::sim();
    fabric.attach_obs(obs.clone());
    let run =
        run_federated_over(spec, clients, test, &fed_config(), availability, &mut fabric, &mut rng)
            .expect("a 40% quorum is reachable under this fault plan");
    FaultyRun {
        accuracy: run.final_accuracy(),
        aggregated_rounds: run.history.len(),
        transport: run.transport,
        obs: obs.snapshot(),
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = mdl_core::data::synthetic::synthetic_digits(800, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, CLIENTS, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 17);
    let availability = AvailabilityModel::always_available(CLIENTS);

    // --- baseline: the ideal fabric (exactly the legacy simulation) ---
    let mut base_rng = StdRng::seed_from_u64(SEED);
    let baseline =
        run_federated(&spec, &clients, &test, &fed_config(), &availability, &mut base_rng);

    // --- the faulty cohort, twice, to prove bit-reproducibility ---
    let faulty = run_faulty(&spec, &clients, &test, &availability);
    let replay = run_faulty(&spec, &clients, &test, &availability);
    assert_eq!(
        faulty.transport, replay.transport,
        "same seeds must reproduce the transport bit-for-bit"
    );
    assert_eq!(
        faulty.obs, replay.obs,
        "same seeds must reproduce the observability export bit-for-bit"
    );
    assert!(
        (faulty.accuracy - replay.accuracy).abs() < f64::EPSILON,
        "same seeds must reproduce the model"
    );

    // Byte accounting has exactly one source of truth: the fabric's
    // `net.delivered_bytes` registry counter. The ledger-derived
    // TransportMetrics must agree with it, and the table/JSON below read
    // the counter rather than re-summing up/down traffic themselves.
    let t = &faulty.transport;
    let delivered_bytes =
        faulty.obs.counter("net.delivered_bytes").expect("fabric exports delivered bytes");
    assert_eq!(
        delivered_bytes,
        t.bytes_up + t.bytes_down,
        "registry and transport ledger disagree on delivered bytes"
    );
    assert_eq!(faulty.obs.counter("net.wasted_bytes"), Some(t.wasted_bytes));
    assert_eq!(faulty.obs.counter("net.attempts"), Some(t.attempts));
    assert_eq!(faulty.obs.counter("net.rounds"), Some(t.rounds));

    let gap_points = 100.0 * (baseline.final_accuracy() - faulty.accuracy);
    let row = |label: &str, acc: f64, aggregated: usize, t: &TransportMetrics, delivered: u64| {
        vec![
            label.to_string(),
            format!("{:.2}%", 100.0 * acc),
            format!("{aggregated}/{ROUNDS}"),
            format!("{}", t.attempts),
            format!("{}", t.retries),
            format!("{}", t.timeouts),
            format!("{}", t.drops),
            fmt_bytes(delivered),
            fmt_bytes(t.wasted_bytes),
            format!("{:.1} s", t.sim_clock_s),
        ]
    };
    print_table(
        "FedAvg over mdl-net: ideal vs faulty LTE cohort (10 clients, 20 rounds, 40% quorum)",
        &[
            "fabric",
            "accuracy",
            "aggregated",
            "attempts",
            "retries",
            "timeouts",
            "drops",
            "delivered",
            "wasted",
            "sim clock",
        ],
        &[
            row(
                "ideal",
                baseline.final_accuracy(),
                baseline.history.len(),
                &baseline.transport,
                baseline.transport.bytes_up + baseline.transport.bytes_down,
            ),
            row(
                "faulty-lte",
                faulty.accuracy,
                faulty.aggregated_rounds,
                &faulty.transport,
                delivered_bytes,
            ),
        ],
    );
    println!(
        "\naccuracy gap under faults: {gap_points:.2} points \
         (dropouts and timed-out stragglers shrink each round's cohort;\n\
         quorum aggregation keeps the run moving and convergence survives)"
    );

    assert!(faulty.transport.retries > 0, "ambient loss must force retries");
    assert!(faulty.transport.timeouts > 0, "2x stragglers must time out");
    assert!(faulty.transport.drops > 0, "20% dropout must be visible");
    assert!(gap_points.abs() < 3.0, "fault tolerance must hold the accuracy gap under 3 points");

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"faults\",\n");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"baseline_accuracy\": {:.4},", baseline.final_accuracy());
    let _ = writeln!(json, "  \"faulty_accuracy\": {:.4},", faulty.accuracy);
    let _ = writeln!(json, "  \"accuracy_gap_points\": {gap_points:.2},");
    let _ = writeln!(json, "  \"aggregated_rounds\": {},", faulty.aggregated_rounds);
    let _ = writeln!(json, "  \"attempts\": {},", t.attempts);
    let _ = writeln!(json, "  \"retries\": {},", t.retries);
    let _ = writeln!(json, "  \"timeouts\": {},", t.timeouts);
    let _ = writeln!(json, "  \"drops\": {},", t.drops);
    let _ = writeln!(json, "  \"bytes_up\": {},", t.bytes_up);
    let _ = writeln!(json, "  \"bytes_down\": {},", t.bytes_down);
    let _ = writeln!(json, "  \"delivered_bytes\": {delivered_bytes},");
    let _ = writeln!(json, "  \"wasted_bytes\": {},", t.wasted_bytes);
    let _ = writeln!(json, "  \"sim_clock_s\": {:.3},", t.sim_clock_s);
    let _ = writeln!(json, "  \"bit_reproducible\": true");
    json.push_str("}\n");
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("\nwrote BENCH_faults.json");
}
