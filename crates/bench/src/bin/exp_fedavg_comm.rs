//! E2 — §II-B: federated averaging uses 10–100× less communication than a
//! naively distributed SGD (the paper's reference [18] claim).
//!
//! Both algorithms run on a non-IID label-shard partition until they reach
//! the same target accuracy; the ratio of rounds (= parameter transfers) is
//! the communication-reduction factor.

use mdl_bench::{fmt_bytes, pct, print_table};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1002);
    let data = mdl_core::data::synthetic::synthetic_digits(2000, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 50, Partition::LabelShards, &mut rng);
    let availability = AvailabilityModel::always_available(50);
    let spec = MlpSpec::new(vec![64, 32, 10], 42);
    let target = 0.75;
    let max_rounds = 2000;
    let lr = 0.15; // identical client learning rate for every algorithm

    let mut rows = Vec::new();

    // FedSGD baseline: every client, one full-batch step per round — each
    // round costs one model upload from all 50 clients
    let sgd = run_federated(
        &spec,
        &clients,
        &test,
        &FedConfig {
            target_accuracy: Some(target),
            eval_every: 5,
            ..FedConfig::fedsgd(max_rounds, lr)
        },
        &availability,
        &mut rng,
    );
    let fedsgd_uploads = sgd.ledger.messages_up;
    rows.push(vec![
        "FedSGD (E=1, full batch, C=1)".into(),
        sgd.rounds_to_target.map_or(format!("> {max_rounds}"), |r| r.to_string()),
        format!("{}", sgd.ledger.messages_up),
        pct(sgd.final_accuracy()),
        fmt_bytes(sgd.ledger.total_bytes()),
        "1.0×".into(),
    ]);

    for (e, b) in [(1usize, 16usize), (5, 16), (20, 16)] {
        let run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig {
                rounds: max_rounds,
                client_fraction: 0.2,
                local_epochs: e,
                batch_size: b,
                learning_rate: lr,
                eval_every: 1,
                target_accuracy: Some(target),
                ..Default::default()
            },
            &availability,
            &mut rng,
        );
        let reduction = if run.rounds_to_target.is_some() && run.ledger.messages_up > 0 {
            format!("{:.1}×", fedsgd_uploads as f64 / run.ledger.messages_up as f64)
        } else {
            "n/a".into()
        };
        rows.push(vec![
            format!("FedAvg (E={e}, B={b}, C=0.2)"),
            run.rounds_to_target.map_or(format!("> {max_rounds}"), |r| r.to_string()),
            format!("{}", run.ledger.messages_up),
            pct(run.final_accuracy()),
            fmt_bytes(run.ledger.total_bytes()),
            reduction,
        ]);
    }

    print_table(
        &format!(
            "§II-B — communication to reach {} on non-IID digits (50 clients, label shards, equal lr)",
            pct(target)
        ),
        &[
            "algorithm",
            "rounds to target",
            "client uploads",
            "final accuracy",
            "total traffic",
            "upload reduction",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: FedAvg with more local computation reaches the target\n\
         with 10–100× fewer client uploads than FedSGD, mirroring reference [18]."
    );
}
