//! Bench-regression gate: compares freshly written `BENCH_*.json`
//! artifacts against the committed floors in `tests/bench_floors.json`
//! and exits non-zero if any tracked metric regressed more than 15%
//! beyond its floor. Run it right after `exp_kernels` / `exp_serving`
//! in the same directory:
//!
//! ```text
//! cargo run --release --bin exp_kernels
//! cargo run --release --bin exp_serving
//! cargo run --release --bin exp_gate            # tests/bench_floors.json
//! cargo run --release --bin exp_gate -- custom_floors.json
//! ```
//!
//! The floors file is a flat list so it can be parsed (and audited)
//! without a JSON dependency — one object per line:
//!
//! ```json
//! {
//!   "floors": [
//!     {"file": "BENCH_kernels.json", "key": "blocked_256_t1_gflops", "floor": 17.686, "better": "higher"},
//!     {"file": "BENCH_serving.json", "key": "p99_us_800rps", "floor": 2000, "better": "lower"}
//!   ]
//! }
//! ```
//!
//! `better: "higher"` fails when `fresh < floor * 0.85`;
//! `better: "lower"` fails when `fresh > floor * 1.15`. Every `key`
//! must be a *unique* top-level key in its bench artifact — the gate
//! looks the value up by exact `"key":` match, so repeated per-row
//! keys (like the per-`n` GEMM entries) cannot be gated directly.

use std::process::ExitCode;

const SLACK: f64 = 0.15;

#[derive(Debug)]
struct Floor {
    file: String,
    key: String,
    floor: f64,
    higher_is_better: bool,
}

/// Extracts the string value of `"field": "..."` from a single line.
fn str_field(line: &str, field: &str) -> Option<String> {
    let tag = format!("\"{field}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value of `"field": <number>` from a single line.
fn num_field(line: &str, field: &str) -> Option<f64> {
    let tag = format!("\"{field}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_floors(text: &str) -> Vec<Floor> {
    let mut floors = Vec::new();
    for line in text.lines() {
        let Some(file) = str_field(line, "file") else { continue };
        let key = str_field(line, "key").expect("floor entry missing \"key\"");
        let floor = num_field(line, "floor").expect("floor entry missing numeric \"floor\"");
        let better = str_field(line, "better").expect("floor entry missing \"better\"");
        let higher_is_better = match better.as_str() {
            "higher" => true,
            "lower" => false,
            other => panic!("\"better\" must be \"higher\" or \"lower\", got {other:?}"),
        };
        floors.push(Floor { file, key, floor, higher_is_better });
    }
    floors
}

/// Looks up a unique top-level `"key": <number>` in a bench artifact.
fn lookup(artifact: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let first = artifact.find(&tag)?;
    assert!(
        artifact[first + tag.len()..].find(&tag).is_none(),
        "key {key:?} appears more than once in the artifact; gate keys must be unique"
    );
    num_field(&artifact[first..], key)
}

fn main() -> ExitCode {
    let floors_path =
        std::env::args().nth(1).unwrap_or_else(|| "tests/bench_floors.json".to_string());
    let text =
        std::fs::read_to_string(&floors_path).unwrap_or_else(|e| panic!("read {floors_path}: {e}"));
    let floors = parse_floors(&text);
    assert!(!floors.is_empty(), "{floors_path} defines no floors");

    let mut failures = 0;
    let mut cache: std::collections::HashMap<String, String> = Default::default();
    for f in &floors {
        let artifact = cache.entry(f.file.clone()).or_insert_with(|| {
            std::fs::read_to_string(&f.file)
                .unwrap_or_else(|e| panic!("read {} (run the bench bins first): {e}", f.file))
        });
        let fresh = lookup(artifact, &f.key)
            .unwrap_or_else(|| panic!("{}: key {:?} not found", f.file, f.key));
        let (ok, bound) = if f.higher_is_better {
            (fresh >= f.floor * (1.0 - SLACK), f.floor * (1.0 - SLACK))
        } else {
            (fresh <= f.floor * (1.0 + SLACK), f.floor * (1.0 + SLACK))
        };
        let verdict = if ok { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {}:{} = {fresh:.3} (floor {:.3}, {} is better, limit {bound:.3})",
            f.file,
            f.key,
            f.floor,
            if f.higher_is_better { "higher" } else { "lower" },
        );
        failures += usize::from(!ok);
    }

    if failures > 0 {
        eprintln!(
            "\nbench gate: {failures} metric(s) regressed >{:.0}% past their floor",
            SLACK * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nbench gate: all {} metrics within {:.0}% of their floors",
        floors.len(),
        SLACK * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_floor_entries() {
        let text = r#"{
  "floors": [
    {"file": "A.json", "key": "x_gflops", "floor": 17.686, "better": "higher"},
    {"file": "B.json", "key": "p99_us", "floor": 2000, "better": "lower"}
  ]
}"#;
        let floors = parse_floors(text);
        assert_eq!(floors.len(), 2);
        assert_eq!(floors[0].file, "A.json");
        assert_eq!(floors[0].key, "x_gflops");
        assert!(floors[0].higher_is_better);
        assert!((floors[0].floor - 17.686).abs() < 1e-9);
        assert!(!floors[1].higher_is_better);
    }

    #[test]
    fn looks_up_exact_keys_without_prefix_collisions() {
        let artifact = "{\n  \"p99_us_800rps_int8\": 1500,\n  \"p99_us_800rps\": 1200\n}\n";
        assert_eq!(lookup(artifact, "p99_us_800rps"), Some(1200.0));
        assert_eq!(lookup(artifact, "p99_us_800rps_int8"), Some(1500.0));
        assert_eq!(lookup(artifact, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn rejects_repeated_keys() {
        let artifact = "{\"n\": 1}\n{\"n\": 2}";
        let _ = lookup(artifact, "n");
    }
}
