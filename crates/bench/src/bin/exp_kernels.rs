//! E13 — kernel layer: blocked/threaded GEMM throughput and the
//! bit-determinism contract.
//!
//! Measures GFLOP/s of the reference triple loop (`matmul_naive`) against
//! the cache-blocked kernel at 1, 2 and 4 worker threads for square GEMMs
//! up to 256³, times one DeepMood training epoch on the kernel-backed hot
//! path, and *hard-asserts* the determinism contract: blocked output is
//! bit-identical to naive, across every thread count, and a fixed-seed
//! training run produces byte-identical weights at 1 and 4 threads.
//! Throughput floors (≥1.5× naive single-threaded, ≥3× at 4 threads at
//! 256³) are asserted with wide margin: packing and register tiling alone
//! clear both even when the machine exposes a single core, so the checks
//! stay robust on shared CI runners.
//!
//! The int8 sweep measures the quantized microkernel (`kernel::int8`) at
//! the same square shapes: dispatched (best available SIMD tier) and the
//! pinned scalar path, each asserted bit-identical to the naive i32
//! reference, with a ≥2× throughput floor over the f32 blocked kernel at
//! 256³ whenever a SIMD tier is available.

use mdl_bench::print_table;
use mdl_core::prelude::*;
use mdl_core::tensor::kernel;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 77;
const SIZES: [usize; 3] = [64, 128, 256];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Best-of-`reps` wall time for `f`, in seconds.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(n: usize, secs: f64) -> f64 {
    (2.0 * (n * n * n) as f64) / secs / 1e9
}

struct SizeResult {
    n: usize,
    naive: f64,
    blocked: Vec<(usize, f64)>, // (threads, gflops)
}

fn bench_gemms(rng: &mut StdRng) -> Vec<SizeResult> {
    let mut results = Vec::new();
    for &n in &SIZES {
        let a = Init::Xavier.sample(n, n, rng);
        let b = Init::Xavier.sample(n, n, rng);
        let reps = if n <= 128 { 7 } else { 5 };

        let reference = a.matmul_naive(&b);
        let mut out = Matrix::zeros(n, n);
        let t_ref = time_best(reps, || {
            std::hint::black_box(a.matmul_naive(&b));
        });

        let mut blocked = Vec::new();
        for &t in &THREAD_COUNTS {
            kernel::set_threads(t);
            let secs = time_best(reps, || {
                a.matmul_into(&b, &mut out);
                std::hint::black_box(&out);
            });
            // determinism contract: bit-identical to the naive reference at
            // every thread count
            assert_eq!(
                out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "blocked GEMM at {t} threads must be bit-identical to naive (n={n})"
            );
            blocked.push((t, gflops(n, secs)));
        }
        kernel::set_threads(1);
        results.push(SizeResult { n, naive: gflops(n, t_ref), blocked });
    }
    results
}

struct Int8Result {
    n: usize,
    scalar_gops: f64,
    simd_gops: f64,
}

/// Deterministic i8 fill (the vendored rand has no `Distribution<i8>`).
fn fill_i8(buf: &mut [i8], seed: u64) {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for v in buf {
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        *v = (state >> 56) as i8;
    }
}

/// Int8 GEMM sweep: times the dispatched kernel and the pinned scalar
/// path at each size and hard-asserts both bit-identical to the naive
/// i32 reference.
fn bench_int8() -> Vec<Int8Result> {
    use mdl_core::tensor::kernel::int8;
    let mut results = Vec::new();
    for &n in &SIZES {
        let mut a = vec![0i8; n * n];
        let mut bt = vec![0i8; n * n];
        fill_i8(&mut a, n as u64);
        fill_i8(&mut bt, n as u64 + 1);
        let mut reference = vec![0i32; n * n];
        int8::gemm_i8_ref(n, n, n, &a, &bt, &mut reference, false);
        let reps = if n <= 128 { 7 } else { 5 };

        let mut out = vec![0i32; n * n];
        let secs_simd = time_best(reps, || {
            int8::gemm_i8(n, n, n, &a, &bt, &mut out, false);
            std::hint::black_box(&out);
        });
        assert_eq!(out, reference, "dispatched int8 GEMM must match the i32 reference (n={n})");

        let secs_scalar = time_best(reps, || {
            int8::gemm_i8_scalar(n, n, n, &a, &bt, &mut out, false);
            std::hint::black_box(&out);
        });
        assert_eq!(out, reference, "scalar int8 GEMM must match the i32 reference (n={n})");

        results.push(Int8Result {
            n,
            scalar_gops: gflops(n, secs_scalar),
            simd_gops: gflops(n, secs_simd),
        });
    }
    results
}

/// One DeepMood epoch (GRU encoders + fusion head) on the kernel-backed
/// hot path, in seconds.
fn deepmood_epoch_seconds() -> f64 {
    use mdl_core::deepmood::train_and_evaluate;
    let mut rng = StdRng::seed_from_u64(SEED);
    let cohort = BiAffectDataset::generate(
        &BiAffectConfig { participants: 10, sessions_per_participant: 12, ..Default::default() },
        &mut rng,
    );
    let (train, test) = cohort.split(0.75, &mut rng);
    let epochs = 2;
    let config = DeepMoodConfig {
        fusion: FusionKind::FullyConnected { hidden: 16 },
        epochs,
        ..Default::default()
    };
    let t0 = Instant::now();
    let eval = train_and_evaluate(&train, &test, &config, &mut rng);
    let secs = t0.elapsed().as_secs_f64() / epochs as f64;
    assert!(eval.accuracy >= 0.0);
    secs
}

/// Trains a small MLP with the given kernel thread count; returns the
/// final parameter bytes.
fn train_param_bytes(threads: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = mdl_core::data::synthetic::gaussian_blobs(300, 3, 0.5, &mut rng);
    let mut model = Sequential::new();
    let mut net_rng = StdRng::seed_from_u64(SEED + 1);
    model.push(Dense::new(2, 48, Activation::Relu, &mut net_rng));
    model.push(Dense::new(48, 3, Activation::Identity, &mut net_rng));
    let mut opt = Adam::new(0.01);
    let mut fit_rng = StdRng::seed_from_u64(SEED + 2);
    let _ = fit_classifier(
        &mut model,
        &mut opt,
        &data.x,
        &data.y,
        &TrainConfig {
            epochs: 3,
            batch_size: 16,
            kernel_threads: Some(threads),
            ..Default::default()
        },
        &mut fit_rng,
    );
    model.param_vector().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);

    let results = bench_gemms(&mut rng);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let best = r.blocked.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
            let mut row = vec![format!("{0}x{0}x{0}", r.n), format!("{:.2}", r.naive)];
            for &(_, g) in &r.blocked {
                row.push(format!("{g:.2}"));
            }
            row.push(format!("{:.2}x", best / r.naive));
            row
        })
        .collect();
    print_table(
        "f32 GEMM throughput, GFLOP/s (bit-identical across all variants)",
        &["shape", "naive", "blocked t=1", "blocked t=2", "blocked t=4", "best/naive"],
        &rows,
    );

    // int8 microkernel sweep vs the f32 blocked kernel
    let simd_level = mdl_core::tensor::kernel::int8::simd_level();
    let int8 = bench_int8();
    let int8_rows: Vec<Vec<String>> = int8
        .iter()
        .map(|r| {
            let f32_t1 = results
                .iter()
                .find(|g| g.n == r.n)
                .and_then(|g| g.blocked.iter().find(|&&(t, _)| t == 1).map(|&(_, g)| g))
                .unwrap_or(0.0);
            vec![
                format!("{0}x{0}x{0}", r.n),
                format!("{f32_t1:.2}"),
                format!("{:.2}", r.scalar_gops),
                format!("{:.2}", r.simd_gops),
                format!("{:.2}x", r.simd_gops / f32_t1),
            ]
        })
        .collect();
    print_table(
        &format!(
            "int8 GEMM throughput, GOPS (dispatch: {simd_level}; bit-identical to i32 reference)"
        ),
        &["shape", "f32 blocked t=1", "int8 scalar", "int8 dispatch", "int8/f32"],
        &int8_rows,
    );

    // training determinism across kernel thread counts
    let bytes_1 = train_param_bytes(1);
    let bytes_4 = train_param_bytes(4);
    assert_eq!(
        bytes_1, bytes_4,
        "fixed-seed training must produce byte-identical weights at 1 and 4 kernel threads"
    );
    println!("\ntraining determinism: weights byte-identical at 1 vs 4 kernel threads ✓");

    kernel::set_threads(1);
    let epoch_secs = deepmood_epoch_seconds();
    println!("DeepMood epoch (10×12 cohort, GRU hot path): {:.3} s", epoch_secs);

    let r256 = results.iter().find(|r| r.n == 256).expect("256 is benchmarked");
    let single = r256.blocked.iter().find(|&&(t, _)| t == 1).map(|&(_, g)| g).unwrap_or(0.0);
    let best = r256.blocked.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
    println!(
        "256³ speedup vs naive: {:.2}x single-threaded, {:.2}x best \
         (threaded wins require >1 physical core)",
        single / r256.naive,
        best / r256.naive
    );
    assert!(
        single / r256.naive >= 1.5,
        "blocked kernel must beat naive by >=1.5x single-threaded at 256³"
    );
    let t4 = r256.blocked.iter().find(|&&(t, _)| t == 4).map(|&(_, g)| g).unwrap_or(0.0);
    assert!(
        t4 / r256.naive >= 3.0,
        "kernel at 4 threads must beat naive by >=3x at 256³ (blocking alone clears this even on one core)"
    );

    let i256 = int8.iter().find(|r| r.n == 256).expect("256 is benchmarked");
    println!(
        "int8 256³: {:.2} GOPS dispatched ({simd_level}), {:.2} GOPS scalar, {:.2}x f32 blocked t=1",
        i256.simd_gops,
        i256.scalar_gops,
        i256.simd_gops / single
    );
    if simd_level != "scalar" {
        assert!(
            i256.simd_gops >= 2.0 * single,
            "int8 SIMD GEMM must be >=2x the f32 blocked kernel at 256³ \
             ({:.2} GOPS vs {single:.2} GFLOP/s)",
            i256.simd_gops
        );
    }

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"kernels\",\n  \"gemm\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(json, "    {{\"n\": {}, \"naive_gflops\": {:.3}", r.n, r.naive);
        for &(t, g) in &r.blocked {
            let _ = write!(json, ", \"blocked_t{t}_gflops\": {g:.3}");
        }
        let _ = writeln!(json, "}}{}", if i + 1 < results.len() { "," } else { "" });
    }
    json.push_str("  ],\n  \"int8\": [\n");
    for (i, r) in int8.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"scalar_gops\": {:.3}, \"simd_gops\": {:.3}}}",
            r.n, r.scalar_gops, r.simd_gops
        );
        let _ = writeln!(json, "{}", if i + 1 < int8.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"blocked_256_t1_gflops\": {single:.3},");
    let _ = writeln!(json, "  \"int8_256_gops\": {:.3},", i256.simd_gops);
    let _ = writeln!(json, "  \"int8_256_scalar_gops\": {:.3},", i256.scalar_gops);
    let _ = writeln!(json, "  \"int8_simd_level\": \"{simd_level}\",");
    let _ = writeln!(json, "  \"int8_bit_identical_simd_vs_scalar\": true,");
    let _ = writeln!(json, "  \"speedup_256_single_thread\": {:.3},", single / r256.naive);
    let _ = writeln!(json, "  \"speedup_256_best\": {:.3},", best / r256.naive);
    let _ = writeln!(json, "  \"deepmood_epoch_s\": {epoch_secs:.4},");
    let _ = writeln!(json, "  \"gemm_bit_identical_across_threads\": true,");
    let _ = writeln!(json, "  \"training_bytes_identical_1_vs_4_threads\": true");
    json.push_str("}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");
}
