//! E15 — deployment matrix: device profile × model architecture ×
//! weight precision, the capability table behind the paper's placement
//! story (§III). Each model trains once on the synthetic digit task;
//! each codebook precision snaps its weights onto a `2^bits`-level grid
//! (the artifact a quantized rollout ships, see `mdl_compress::delta`)
//! but still *executes* in f32 — those rows are labelled `Nb→f32`. The
//! `int8` row is the genuinely quantized path: per-channel int8 weights
//! through the `kernel::int8` GEMM, 1 byte/weight at inference time.
//! Each device then prices the model through the analytic cost model.
//! Prints the matrix, checks that accuracy degrades monotonically-ish
//! with precision while cost shrinks, and writes `BENCH_matrix.json`.
//!
//! `-- smoke` runs the reduced CI grid (one model, two precisions).

use mdl_bench::{fmt_bytes, print_table};
use mdl_core::compress::{snap_to_codebook, uniform_codebook};
use mdl_core::prelude::*;
use std::fmt::Write as _;

const SEED: u64 = 0x3A721;

struct ModelSpec {
    name: &'static str,
    dims: Vec<usize>,
}

struct Cell {
    device: &'static str,
    model: &'static str,
    /// Storage bits per weight (8 for the true-int8 row).
    bits: u32,
    /// Honest execution label: `f32`, `Nb→f32` (snapped codebook,
    /// dequantized to f32 for inference) or `int8` (int8 execution).
    precision: String,
    accuracy: f64,
    model_bytes: u64,
    latency_ms: f64,
    energy_mj: f64,
}

fn build(dims: &[usize], rng: &mut StdRng) -> Sequential {
    let mut net = Sequential::new();
    for (i, w) in dims.windows(2).enumerate() {
        let act = if i + 2 == dims.len() { Activation::Identity } else { Activation::Relu };
        net.push(Dense::new(w[0], w[1], act, rng));
    }
    net
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let models: Vec<ModelSpec> = if smoke {
        vec![ModelSpec { name: "small", dims: vec![64, 32, 10] }]
    } else {
        vec![
            ModelSpec { name: "small", dims: vec![64, 32, 10] },
            ModelSpec { name: "medium", dims: vec![64, 64, 32, 10] },
            ModelSpec { name: "large", dims: vec![64, 128, 64, 10] },
        ]
    };
    let precisions: &[u32] = if smoke { &[32, 5] } else { &[32, 8, 5, 3] };
    let devices = [
        ("wearable", DeviceProfile::wearable()),
        ("midrange", DeviceProfile::midrange_phone()),
        ("flagship", DeviceProfile::flagship_phone()),
        ("cloud", DeviceProfile::cloud_server()),
    ];

    let mut rng = StdRng::seed_from_u64(SEED);
    let data = mdl_core::data::synthetic::synthetic_digits(1500, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);

    let mut cells: Vec<Cell> = Vec::new();
    for spec in &models {
        let mut model = build(&spec.dims, &mut rng);
        let mut opt = Adam::new(0.005);
        fit_classifier(
            &mut model,
            &mut opt,
            &train.x,
            &train.y,
            &TrainConfig {
                epochs: if smoke { 2 } else { 5 },
                batch_size: 32,
                ..Default::default()
            },
            &mut rng,
        );
        let trained = model.param_vector();
        let infos: Vec<_> = model.layers().iter().map(|l| l.info()).collect();
        let params: u64 = infos.iter().map(|l| l.params as u64).sum();

        for &bits in precisions {
            // full precision keeps the trained weights; lower precisions
            // snap them onto the 2^bits-level grid the rollout would ship
            let snapped = if bits >= 32 {
                trained.clone()
            } else {
                snap_to_codebook(&trained, &uniform_codebook(&trained, 1usize << bits))
            };
            model.set_param_vector(&snapped);
            let accuracy = model.accuracy(&test.x, &test.y);
            let bytes_per_weight = bits as f64 / 8.0;
            let precision = if bits >= 32 { "f32".to_string() } else { format!("{bits}b→f32") };
            for (dev_name, profile) in &devices {
                let cost = profile.inference_cost(&infos, bytes_per_weight);
                cells.push(Cell {
                    device: dev_name,
                    model: spec.name,
                    bits,
                    precision: precision.clone(),
                    accuracy,
                    model_bytes: (params as f64 * bytes_per_weight) as u64,
                    latency_ms: 1000.0 * cost.latency_s,
                    energy_mj: 1000.0 * cost.energy_j,
                });
            }
        }
        model.set_param_vector(&trained);

        // the true int8 row: per-channel quantized weights executed
        // through the int8 GEMM, not dequantized back to f32
        let qm = QuantizedModel::from_model(&mut model).expect("all-Dense model quantizes");
        let q_accuracy = qm.accuracy(&test.x, &test.y);
        for (dev_name, profile) in &devices {
            let cost = profile.inference_cost(&infos, 1.0);
            cells.push(Cell {
                device: dev_name,
                model: spec.name,
                bits: 8,
                precision: "int8".to_string(),
                accuracy: q_accuracy,
                model_bytes: qm.storage_bytes() as u64,
                latency_ms: 1000.0 * cost.latency_s,
                energy_mj: 1000.0 * cost.energy_j,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.device.to_string(),
                c.model.to_string(),
                c.precision.clone(),
                format!("{:.2}%", 100.0 * c.accuracy),
                fmt_bytes(c.model_bytes),
                format!("{:.3} ms", c.latency_ms),
                format!("{:.4} mJ", c.energy_mj),
            ]
        })
        .collect();
    print_table(
        "deployment matrix: device x model x precision (digits task)",
        &["device", "model", "precision", "accuracy", "weights", "latency", "energy"],
        &rows,
    );

    // coherence checks across the grid
    for spec in &models {
        let full = cells
            .iter()
            .find(|c| c.model == spec.name && c.bits == 32)
            .expect("full-precision cell exists");
        let floor = if smoke { 0.5 } else { 0.7 };
        assert!(
            full.accuracy > floor,
            "{}: fp32 accuracy {:.3} below {floor}",
            spec.name,
            full.accuracy
        );
        for c in cells.iter().filter(|c| c.model == spec.name && c.bits < 32) {
            assert!(
                c.accuracy > full.accuracy - 0.35,
                "{} @ {}: accuracy {:.3} collapsed from {:.3}",
                spec.name,
                c.precision,
                c.accuracy,
                full.accuracy
            );
            assert!(c.model_bytes < full.model_bytes, "quantized weights must be smaller");
        }
        let int8 = cells
            .iter()
            .find(|c| c.model == spec.name && c.precision == "int8")
            .expect("int8 cell exists");
        assert!(
            int8.accuracy > full.accuracy - 0.05,
            "{}: true int8 execution lost {:.3} accuracy vs f32",
            spec.name,
            full.accuracy - int8.accuracy
        );
    }
    for c in &cells {
        assert!(c.latency_ms.is_finite() && c.energy_mj >= 0.0);
    }
    let speedup = |a: &str, b: &str| {
        let pick = |d: &str| {
            cells.iter().filter(|c| c.device == d).map(|c| c.latency_ms).fold(0.0f64, f64::max)
        };
        pick(a) / pick(b).max(1e-12)
    };
    assert!(speedup("wearable", "cloud") > 1.0, "the cloud must outrun a wearable");
    println!(
        "\nwearable worst-case latency is {:.0}x the cloud's; quantization trades \
         ≤{:.0}pp accuracy for {:.1}x smaller weights",
        speedup("wearable", "cloud"),
        100.0
            * cells
                .iter()
                .map(|c| {
                    let full = cells
                        .iter()
                        .find(|f| f.model == c.model && f.bits == 32)
                        .expect("full cell");
                    full.accuracy - c.accuracy
                })
                .fold(0.0f64, f64::max),
        32.0 / precisions.iter().copied().min().unwrap_or(32) as f64,
    );

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"matrix\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"device\": \"{}\",", c.device);
        let _ = writeln!(json, "      \"model\": \"{}\",", c.model);
        let _ = writeln!(json, "      \"bits\": {},", c.bits);
        let _ = writeln!(json, "      \"precision\": \"{}\",", c.precision);
        let _ = writeln!(json, "      \"accuracy\": {:.4},", c.accuracy);
        let _ = writeln!(json, "      \"model_bytes\": {},", c.model_bytes);
        let _ = writeln!(json, "      \"latency_ms\": {:.5},", c.latency_ms);
        let _ = writeln!(json, "      \"energy_mj\": {:.6}", c.energy_mj);
        json.push_str(if i + 1 == cells.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_matrix.json", &json).expect("write BENCH_matrix.json");
    println!("wrote BENCH_matrix.json");
}
