//! E12 — §III-B, reference [29]: MobileNets' streamlined architecture.
//!
//! Compares a standard small CNN against its depthwise-separable
//! counterpart on the 8×8 digit glyphs: parameters, MACs, accuracy, and
//! what the MAC reduction buys on real device classes.

use mdl_bench::{pct, print_table};
use mdl_core::nn::{AvgPool2d, Conv2d, ImageShape, SeparableConv2d};
use mdl_core::prelude::*;

fn train_and_score(
    mut net: Sequential,
    train: &Dataset,
    test: &Dataset,
    rng: &mut StdRng,
) -> (Sequential, f64) {
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 20, ..Default::default() },
        rng,
    );
    let acc = net.accuracy(&test.x, &test.y);
    (net, acc)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1012);
    let data = mdl_core::data::synthetic::synthetic_digits(1500, 0.08, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let shape = ImageShape::new(1, 8, 8);

    // standard CNN: conv3×3(1→16) → conv3×3(16→16) → pool → dense
    let mut standard = Sequential::new();
    let c1 = Conv2d::standard(shape, 16, 3, Activation::Relu, &mut rng);
    let s1 = c1.output_shape();
    standard.push(c1);
    let c2 = Conv2d::standard(s1, 16, 3, Activation::Relu, &mut rng);
    let s2 = c2.output_shape();
    standard.push(c2);
    standard.push(AvgPool2d::new(s2));
    standard.push(Dense::new(16 * 4 * 4, 10, Activation::Identity, &mut rng));

    // MobileNet-style: conv3×3(1→16) → separable3×3(16→16) → pool → dense
    let mut mobile = Sequential::new();
    let m1 = Conv2d::standard(shape, 16, 3, Activation::Relu, &mut rng);
    let ms1 = m1.output_shape();
    mobile.push(m1);
    let m2 = SeparableConv2d::new(ms1, 16, 3, Activation::Relu, &mut rng);
    let ms2 = m2.output_shape();
    mobile.push(m2);
    mobile.push(AvgPool2d::new(ms2));
    mobile.push(Dense::new(16 * 4 * 4, 10, Activation::Identity, &mut rng));

    let std_info = standard.info();
    let mob_info = mobile.info();
    let (standard, std_acc) = train_and_score(standard, &train, &test, &mut rng);
    let (mobile, mob_acc) = train_and_score(mobile, &train, &test, &mut rng);

    // the second conv stage is where the factorisation bites
    let std_stage = standard.layer_infos()[1].clone();
    let mob_stage = mobile.layer_infos()[1].clone();
    print_table(
        "§III-B / reference [29] — standard vs depthwise-separable CNN (8×8 glyphs)",
        &["architecture", "stage-2 params", "stage-2 MACs", "total MACs", "accuracy"],
        &[
            vec![
                "standard conv".into(),
                format!("{}", std_stage.params),
                format!("{}", std_stage.macs),
                format!("{}", std_info.macs),
                pct(std_acc),
            ],
            vec![
                "depthwise separable".into(),
                format!("{}", mob_stage.params),
                format!("{}", mob_stage.macs),
                format!("{}", mob_info.macs),
                pct(mob_acc),
            ],
        ],
    );

    // device economics of the MAC reduction
    let mut rows = Vec::new();
    for (name, device) in
        [("midrange", DeviceProfile::midrange_phone()), ("wearable", DeviceProfile::wearable())]
    {
        let s = device.inference_cost(&standard.layer_infos(), 4.0);
        let m = device.inference_cost(&mobile.layer_infos(), 4.0);
        rows.push(vec![
            name.into(),
            format!("{:.1} µs", 1e6 * s.latency_s),
            format!("{:.1} µs", 1e6 * m.latency_s),
            format!("{:.2}×", s.latency_s / m.latency_s),
        ]);
    }
    print_table(
        "device latency per inference",
        &["device", "standard", "separable", "speedup"],
        &rows,
    );
    println!(
        "\nexpected shape: the separable stage holds ~5–8× fewer parameters\n\
         and MACs at comparable accuracy — reference [29]'s core trade."
    );
}
