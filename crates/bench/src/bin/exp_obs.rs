//! E14 — observability layer: tracing overhead and determinism contract.
//!
//! Times a DeepMood-style training epoch (GRU encoder + dense head on the
//! kernel-backed hot path) with observability fully off and fully on
//! (spans + per-layer profiling + kernel GEMM tallies), best-of-N wall
//! clock, and *hard-asserts* the contracts: instrumentation costs <5%
//! wall time, never changes a single weight bit, and a sim-clock
//! [`ObsSnapshot`] is byte-identical across repeated runs and across
//! kernel thread counts. Writes `BENCH_obs.json`.

use mdl_bench::print_table;
use mdl_core::prelude::*;
use mdl_core::tensor::kernel;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 99;
const EPOCHS: usize = 2;
const REPS: usize = 5;

/// DeepMood-style sequence classifier: a GRU encoder over keystroke-like
/// feature rows feeding a small dense head.
fn build_model(rng: &mut StdRng) -> Sequential {
    let mut model = Sequential::new();
    model.push(Gru::new(32, 128, rng));
    model.push(Dense::new(128, 32, Activation::Relu, rng));
    model.push(Dense::new(32, 4, Activation::Identity, rng));
    model
}

fn training_data(rng: &mut StdRng) -> Dataset {
    let blobs = mdl_core::data::synthetic::gaussian_blobs(600, 4, 0.4, rng);
    // lift the 2-d blobs into the GRU's 32-wide input with a fixed basis
    let x = Matrix::from_fn(blobs.x.rows(), 32, |r, c| {
        let a = blobs.x.row(r)[0];
        let b = blobs.x.row(r)[1];
        (a * (c as f32 * 0.37).sin() + b * (c as f32 * 0.61).cos()) * 0.5
    });
    Dataset { x, y: blobs.y, classes: blobs.classes }
}

/// One fixed-seed training run; returns (seconds, final weight bits).
fn train_once(data: &Dataset, obs: Option<&Obs>) -> (f64, Vec<u32>) {
    let mut net_rng = StdRng::seed_from_u64(SEED + 1);
    let mut model = build_model(&mut net_rng);
    let mut opt = Sgd::new(0.05);
    let mut fit_rng = StdRng::seed_from_u64(SEED + 2);
    let config =
        TrainConfig { epochs: EPOCHS, batch_size: 32, obs: obs.cloned(), ..Default::default() };
    let t0 = Instant::now();
    let _ = fit_classifier(&mut model, &mut opt, &data.x, &data.y, &config, &mut fit_rng);
    let secs = t0.elapsed().as_secs_f64();
    (secs, model.param_vector().iter().map(|v| v.to_bits()).collect())
}

/// Best-of-`REPS` epoch seconds; `instrumented` also enables the kernel
/// GEMM tally so the "on" runs pay every hot-path hook at once.
fn best_epoch_seconds(data: &Dataset, instrumented: bool) -> (f64, Vec<u32>) {
    let mut best = f64::INFINITY;
    let mut bits = Vec::new();
    for _ in 0..REPS {
        let obs = instrumented.then(Obs::wall);
        if let Some(o) = &obs {
            kernel::profile::enable(o.clock().clone());
        }
        let (secs, b) = train_once(data, obs.as_ref());
        if instrumented {
            kernel::profile::disable();
            kernel::profile::reset();
        }
        best = best.min(secs / EPOCHS as f64);
        bits = b;
    }
    (best, bits)
}

/// A full instrumented run under the simulated clock, at a given kernel
/// thread count, exported as canonical snapshot JSON.
fn sim_snapshot_json(data: &Dataset, threads: usize) -> String {
    kernel::set_threads(threads);
    let obs = Obs::sim();
    kernel::profile::enable(obs.clock().clone());
    let (_, _) = train_once(data, Some(&obs));
    kernel::profile::export_into(obs.registry());
    kernel::profile::disable();
    kernel::profile::reset();
    kernel::set_threads(1);
    obs.snapshot().to_json().to_string()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = training_data(&mut rng);

    // --- wall-clock overhead: obs off vs fully on ---
    let (off_s, off_bits) = best_epoch_seconds(&data, false);
    let (on_s, on_bits) = best_epoch_seconds(&data, true);
    let overhead = (on_s - off_s) / off_s;
    print_table(
        "observability overhead, DeepMood-style GRU epoch (best of 5)",
        &["variant", "epoch time", "overhead"],
        &[
            vec!["obs off".into(), format!("{:.1} ms", off_s * 1e3), "—".into()],
            vec![
                "obs on (spans+layers+kernel)".into(),
                format!("{:.1} ms", on_s * 1e3),
                format!("{:+.2}%", overhead * 100.0),
            ],
        ],
    );
    assert_eq!(off_bits, on_bits, "instrumentation must never change a weight bit");
    assert!(
        overhead < 0.05,
        "tracing must cost <5% of epoch wall time, measured {:.2}%",
        overhead * 100.0
    );
    println!("\ninstrumentation: weights bit-identical with obs on vs off ✓");

    // --- determinism: sim-clock snapshots are byte-identical across runs
    //     and across kernel thread counts ---
    let snap_a = sim_snapshot_json(&data, 1);
    let snap_b = sim_snapshot_json(&data, 1);
    let snap_t4 = sim_snapshot_json(&data, 4);
    assert_eq!(snap_a, snap_b, "repeated sim-clock runs must export identical snapshots");
    assert_eq!(snap_a, snap_t4, "kernel thread count must not leak into the snapshot");
    println!("determinism: snapshot JSON byte-identical across runs and thread counts ✓");

    // pull a few headline numbers back out of the canonical export
    let snap = ObsSnapshot::from_json(&snap_a).expect("snapshot JSON round-trips");
    let batches = snap.counter("train.batches").unwrap_or(0);
    let gemm_calls = snap.counter("kernel.gemm.calls").unwrap_or(0);
    let gemm_flops = snap.counter("kernel.gemm.flops").unwrap_or(0);
    println!(
        "per-epoch ledger: {batches} batches, {gemm_calls} GEMM calls, {:.2} GFLOP total",
        gemm_flops as f64 / 1e9
    );
    assert!(batches > 0 && gemm_calls > 0, "instrumented run must record work");

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"obs\",\n");
    let _ = writeln!(json, "  \"epoch_off_s\": {off_s:.5},");
    let _ = writeln!(json, "  \"epoch_on_s\": {on_s:.5},");
    let _ = writeln!(json, "  \"overhead_frac\": {overhead:.5},");
    let _ = writeln!(json, "  \"train_batches\": {batches},");
    let _ = writeln!(json, "  \"gemm_calls\": {gemm_calls},");
    let _ = writeln!(json, "  \"gemm_flops\": {gemm_flops},");
    let _ = writeln!(json, "  \"weights_identical_obs_on_vs_off\": true,");
    let _ = writeln!(json, "  \"snapshot_identical_across_runs_and_threads\": true");
    json.push_str("}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
}
