//! E10 — Fig. 6: multi-view pattern analysis of the top-5 active users.
//!
//! Reproduces the qualitative analysis: per-user typing-speed/rhythm
//! signatures in the alphabet view, frequent- vs infrequent-key usage in
//! the symbol/number view, and axis correlations in the acceleration view
//! that separate users.

use mdl_bench::print_table;
use mdl_core::deepservice::{analyze_top_users, format_patterns};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1010);
    let cohort = KeystrokeDataset::generate(
        &KeystrokeConfig { users: 10, sessions_per_user: 100, ..Default::default() },
        &mut rng,
    );
    let patterns = analyze_top_users(&cohort, 5);

    println!("\n== Fig. 6 — multi-view pattern analysis of the top-5 active users ==\n");
    println!("{}", format_patterns(&patterns));

    let rows: Vec<Vec<String>> = patterns
        .iter()
        .map(|p| {
            vec![
                format!("user{}", p.user),
                p.frequent_keys().join(", "),
                format!(
                    "auto={:.1} sugg={:.1} switch={:.1}",
                    p.special_per_session[0], p.special_per_session[3], p.special_per_session[4]
                ),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — frequent keys (>2 uses/session) and infrequent-key rates per user",
        &["user", "frequent keys", "infrequent keys (per session)"],
        &rows,
    );
    println!(
        "\nexpected shape: each user exhibits a distinct (duration, inter-key\n\
         time, keystroke volume) signature and distinct frequent-key sets —\n\
         the separability Fig. 6 visualises before Table I quantifies it."
    );
}
