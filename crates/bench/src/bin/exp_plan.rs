//! E-plan — planned graph executor: dynamic vs planned vs planned+fused
//! steady-state inference throughput, f32 and int8, batch 1/8/32.
//!
//! The dynamic eval path allocates per call (layer outputs, dropout
//! identity clones, quantized workspaces) and runs the historical
//! two-pass int8 drain; a compiled [`Plan`] lays every intermediate into
//! one shared arena, elides eval-mode dropout at compile time, and fuses
//! bias+activation (f32) / bias-fold+dequant+activation (int8) into the
//! kernels' accumulator drains, so steady-state runs are allocation-free
//! and single-pass. The model is a DeepMood-style dense classifier (the
//! paper's mobile-tier shape): a stack of narrow hidden layers with
//! dropout regularization between them; the int8 variant quantizes the
//! dropout-stripped stack, exactly what a mobile export pipeline ships.
//!
//! Dynamic and planned paths are timed interleaved (alternating
//! measurement slices, best-of each) so clock drift on shared hardware
//! cancels out of the ratio. The bench asserts the planned path is
//! bit-identical to dynamic, asserts **zero heap allocations** in steady
//! state via a counting global allocator, and hard-asserts the ≥1.3×
//! fused int8 throughput floor at batch 8 (plus a no-regression floor
//! for f32) that `tests/bench_floors.json` gates
//! (`plan_speedup_int8_b8`, `plan_speedup_f32_b8`).

use mdl_bench::print_table;
use mdl_core::nn::Dropout;
use mdl_core::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const SEED: u64 = 0x91a2;
const IN_DIM: usize = 16;
const HIDDEN: usize = 12;
const DEPTH: usize = 8;
const BATCHES: [usize; 3] = [1, 8, 32];
/// Gated floor: fused int8 plan vs dynamic int8 eval at batch 8.
const INT8_SPEEDUP_FLOOR_B8: f64 = 1.3;
/// Regression guard: the fused f32 plan must never lose to dynamic
/// (the f32 path is kernel-bound at mobile widths, so its win is
/// smaller — the headline fusion win is the int8 drain).
const F32_SPEEDUP_FLOOR_B8: f64 = 0.95;

/// DeepMood-style dense classifier; `dropout` controls whether the
/// regularization layers are still in the stack (the shipped f32 model)
/// or stripped (what the int8 export quantizes).
fn model(dropout: bool) -> Sequential {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut net = Sequential::new();
    net.push(Dense::new(IN_DIM, HIDDEN, Activation::Relu, &mut rng));
    for i in 0..DEPTH {
        if dropout {
            net.push(Dropout::new(HIDDEN, 0.25, i as u64));
        }
        net.push(Dense::new(HIDDEN, HIDDEN, Activation::Relu, &mut rng));
    }
    if dropout {
        net.push(Dropout::new(HIDDEN, 0.25, 0xD0));
    }
    net.push(Dense::new(HIDDEN, 4, Activation::Identity, &mut rng));
    net
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// One timing slice: seconds/call over `iters` calls.
fn slice_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

struct Row {
    precision: &'static str,
    rows: usize,
    dynamic_us: f64,
    planned_us: f64,
    fused_us: f64,
    steady_allocs: usize,
}

fn bench_variant(model: PlanModel<'_>, rows: usize, precision: &'static str) -> Row {
    let x = Matrix::from_fn(rows, IN_DIM, |r, c| ((r * IN_DIM + c) as f32 * 0.29).sin());
    let iters = 2048 / rows.max(1);
    let reps = 9;

    let dynamic_eval = |x: &Matrix| match model {
        PlanModel::F32(net) => net.forward_eval(x),
        PlanModel::Int8(qm) => qm.forward_eval(x),
    };
    let reference = dynamic_eval(&x);

    let compiled = |fuse: bool| {
        let mut plan =
            Plan::compile(model, rows, IN_DIM, PlanOptions { fuse }).expect("bench model plans");
        let mut out = Matrix::default();
        plan.run(model, &x, &mut out); // warm-up
        assert_eq!(bits(&out), bits(&reference), "planned (fuse={fuse}) must match dynamic");
        (plan, out)
    };
    let (mut plan_unfused, mut out_unfused) = compiled(false);
    let (mut plan_fused, mut out_fused) = compiled(true);

    // Interleaved best-of: one dynamic, one planned, one fused slice per
    // rep, so slow drift hits all three paths alike and divides out.
    let (mut dynamic_us, mut planned_us, mut fused_us) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        dynamic_us = dynamic_us.min(slice_secs(iters, || {
            std::hint::black_box(dynamic_eval(&x));
        }));
        planned_us = planned_us.min(slice_secs(iters, || {
            plan_unfused.run(model, &x, &mut out_unfused);
            std::hint::black_box(&out_unfused);
        }));
        fused_us = fused_us.min(slice_secs(iters, || {
            plan_fused.run(model, &x, &mut out_fused);
            std::hint::black_box(&out_fused);
        }));
    }

    // count allocations across a steady-state burst of both plan modes
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..8 {
        plan_unfused.run(model, &x, &mut out_unfused);
        plan_fused.run(model, &x, &mut out_fused);
    }
    ARMED.store(false, Ordering::SeqCst);
    let steady_allocs = ALLOCS.load(Ordering::SeqCst);

    Row {
        precision,
        rows,
        dynamic_us: dynamic_us * 1e6,
        planned_us: planned_us * 1e6,
        fused_us: fused_us * 1e6,
        steady_allocs,
    }
}

fn main() {
    // Single kernel thread: the zero-alloc contract covers the
    // single-threaded path, and mobile-tier batches never cross the
    // parallel GEMM threshold anyway.
    mdl_core::tensor::kernel::set_threads(1);

    let net = model(true);
    let mut stripped = model(false);
    let qm = QuantizedModel::from_model(&mut stripped).expect("stripped bench model quantizes");

    let mut rows = Vec::new();
    for &b in &BATCHES {
        rows.push(bench_variant(PlanModel::F32(&net), b, "f32"));
    }
    for &b in &BATCHES {
        rows.push(bench_variant(PlanModel::Int8(&qm), b, "int8"));
    }

    print_table(
        "planned executor: steady-state µs/batch (interleaved best of 9)",
        &["precision", "batch", "dynamic", "planned", "planned+fused", "speedup", "allocs"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.precision.to_string(),
                    r.rows.to_string(),
                    format!("{:.1}", r.dynamic_us),
                    format!("{:.1}", r.planned_us),
                    format!("{:.1}", r.fused_us),
                    format!("{:.2}x", r.dynamic_us / r.fused_us),
                    r.steady_allocs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    for r in &rows {
        assert_eq!(
            r.steady_allocs, 0,
            "{} batch {} plan allocated in steady state",
            r.precision, r.rows
        );
    }
    let speedup = |precision: &str, b: usize| {
        let r = rows
            .iter()
            .find(|r| r.precision == precision && r.rows == b)
            .expect("benched combination");
        r.dynamic_us / r.fused_us
    };
    let f32_b8 = speedup("f32", 8);
    let int8_b8 = speedup("int8", 8);
    assert!(
        int8_b8 >= INT8_SPEEDUP_FLOOR_B8,
        "fused int8 plan speedup at batch 8 is {int8_b8:.2}x, below the {INT8_SPEEDUP_FLOOR_B8}x floor"
    );
    assert!(
        f32_b8 >= F32_SPEEDUP_FLOOR_B8,
        "fused f32 plan at batch 8 is {f32_b8:.2}x dynamic — the plan must never lose to dynamic eval"
    );

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"plan\",\n  \"batches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"precision\": \"{}\", \"batch\": {}, \"dynamic_us\": {:.2}, \
             \"planned_us\": {:.2}, \"fused_us\": {:.2}, \"steady_allocs\": {}}}",
            r.precision, r.rows, r.dynamic_us, r.planned_us, r.fused_us, r.steady_allocs
        );
        let _ = writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"plan_speedup_f32_b8\": {f32_b8:.3},");
    let _ = writeln!(json, "  \"plan_speedup_int8_b8\": {int8_b8:.3},");
    let _ = writeln!(json, "  \"plan_bit_identical_to_dynamic\": true,");
    let _ = writeln!(json, "  \"plan_zero_alloc_steady_state\": true");
    json.push_str("}\n");
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    println!("\nwrote BENCH_plan.json");
}
