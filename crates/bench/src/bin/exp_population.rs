//! E13 — population-scale federated simulation: the `mdl-sim` event
//! engine drives FedAvg over 1k → 10k → 100k synthetic mobile clients on
//! a faulty LTE-era mix. Per-client availability chains gate eligibility,
//! cohorts are sampled by keyed hash, updates stream through the sharded
//! aggregator, and every link carries the fault plan keyed by stable
//! client id. Prints the scaling table, checks bit-reproducibility
//! (including across kernel thread counts), enforces the wall-clock
//! ceiling, and writes `BENCH_population.json`.
//!
//! Pass explicit sizes to override the sweep (CI runs `-- 10000`).

use mdl_bench::{fmt_bytes, print_table};
use mdl_core::prelude::*;
use mdl_core::tensor::kernel::{set_threads, threads};
use std::fmt::Write as _;
use std::time::Instant;

const ROUNDS: usize = 5;
const SEED: u64 = 0xF1EE7;
/// Per-round wall-clock ceiling at every size — a 100k-client round must
/// stay in single-digit seconds on a laptop-class machine.
const ROUND_CEILING_S: f64 = 10.0;

/// Faulty-LTE engine settings: ambient loss and jitter on every link plus
/// dropouts, stragglers and flaky radios keyed by stable client id.
fn sim_config(population: u64) -> SimConfig {
    SimConfig {
        rounds: ROUNDS,
        cohort: CohortSpec {
            fraction: 0.01,
            min_size: 32,
            max_size: (population as usize / 10).max(32),
        },
        faults: FaultPlan {
            dropout_prob: 0.1,
            straggler_prob: 0.1,
            straggler_slowdown: 2.0,
            flaky_prob: 0.05,
            flaky_loss: 0.25,
            partitions: Vec::new(),
        },
        loss_prob: 0.02,
        jitter_frac: 0.1,
        quorum_fraction: 0.5,
        seed: SEED,
        ..SimConfig::default()
    }
}

struct Sweep {
    population: u64,
    report: PopulationReport,
    accuracy: f64,
    wall_s: f64,
}

fn run(population: u64) -> (PopulationReport, f64) {
    let task = PopulationTask::blobs(SEED);
    let mut pop = Population::new(PopulationSpec::mobile_mix(population, SEED));
    run_population_fedavg(&sim_config(population), &mut pop, &task, None)
        .expect("a 50% quorum is reachable under this fault plan")
}

fn main() {
    let sizes: Vec<u64> = {
        let cli: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("sizes must be unsigned integers"))
            .collect();
        if cli.is_empty() {
            vec![1_000, 10_000, 100_000]
        } else {
            cli
        }
    };

    // --- bit-reproducibility: same seeds, then different kernel threads ---
    let (base, base_acc) = run(sizes[0]);
    let (replay, replay_acc) = run(sizes[0]);
    assert_eq!(base, replay, "same seeds must reproduce the report bit-for-bit");
    assert_eq!(base_acc.to_bits(), replay_acc.to_bits(), "accuracy must replay bit-for-bit");
    let default_threads = threads();
    set_threads(1);
    let single = run(sizes[0]);
    set_threads(4);
    let multi = run(sizes[0]);
    set_threads(default_threads);
    assert_eq!(single.0, multi.0, "kernel thread count must not change any bit");
    assert_eq!(single.1.to_bits(), multi.1.to_bits());

    // --- the scaling sweep ---
    let mut sweeps = Vec::new();
    for &population in &sizes {
        let start = Instant::now();
        let (report, accuracy) = run(population);
        let wall_s = start.elapsed().as_secs_f64();
        sweeps.push(Sweep { population, report, accuracy, wall_s });
    }

    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            let r = &s.report;
            let quorum = r.rounds.iter().filter(|x| x.quorum_met).count();
            let cohort: usize = r.rounds.iter().map(|x| x.cohort).sum();
            let delivered: usize = r.rounds.iter().map(|x| x.delivered).sum();
            vec![
                format!("{}", s.population),
                format!("{:.2}%", 100.0 * s.accuracy),
                format!("{quorum}/{ROUNDS}"),
                format!("{cohort}"),
                format!("{delivered}"),
                format!("{}", r.events),
                fmt_bytes(r.transport.bytes_up + r.transport.bytes_down),
                format!("{:.1} s", r.sim_clock_s),
                format!("{:.0} ms", 1000.0 * s.wall_s / ROUNDS as f64),
            ]
        })
        .collect();
    print_table(
        "population-scale FedAvg over mdl-sim (faulty LTE mix, 1% cohorts, 50% quorum)",
        &[
            "clients",
            "accuracy",
            "quorum",
            "sampled",
            "delivered",
            "events",
            "bytes",
            "sim clock",
            "wall/round",
        ],
        &rows,
    );

    for s in &sweeps {
        let per_round = s.wall_s / ROUNDS as f64;
        assert!(
            per_round < ROUND_CEILING_S,
            "{} clients: {per_round:.1} s per round breaches the {ROUND_CEILING_S} s ceiling",
            s.population
        );
        let quorum = s.report.rounds.iter().filter(|x| x.quorum_met).count();
        assert!(quorum > 0, "{} clients: no round met quorum", s.population);
    }
    println!(
        "\nevery size stays under the {ROUND_CEILING_S:.0} s/round ceiling; \
         memory is O(cohort + shards), never O(population)"
    );

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"population\",\n");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"round_ceiling_s\": {ROUND_CEILING_S},");
    let _ = writeln!(json, "  \"bit_reproducible\": true,");
    let _ = writeln!(json, "  \"thread_invariant\": true,");
    json.push_str("  \"sweep\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        let r = &s.report;
        let quorum = r.rounds.iter().filter(|x| x.quorum_met).count();
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"clients\": {},", s.population);
        let _ = writeln!(json, "      \"accuracy\": {:.4},", s.accuracy);
        let _ = writeln!(json, "      \"quorum_rounds\": {quorum},");
        let _ = writeln!(json, "      \"events\": {},", r.events);
        let _ = writeln!(json, "      \"bytes_up\": {},", r.transport.bytes_up);
        let _ = writeln!(json, "      \"bytes_down\": {},", r.transport.bytes_down);
        let _ = writeln!(json, "      \"wasted_bytes\": {},", r.transport.wasted_bytes);
        let _ = writeln!(json, "      \"sim_clock_s\": {:.3},", r.sim_clock_s);
        let _ = writeln!(json, "      \"wall_s\": {:.3}", s.wall_s);
        json.push_str(if i + 1 == sweeps.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_population.json", &json).expect("write BENCH_population.json");
    println!("wrote BENCH_population.json");
}
