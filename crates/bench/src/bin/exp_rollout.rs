//! E14 — staged fleet rollout: a fine-tuned candidate ships to a
//! 1k-device fleet as a delta checkpoint over faulty LTE (ambient loss,
//! stragglers, a hard first-round partition), advancing canary → pilot →
//! fleet behind obs-derived health gates. A second arm injects a broken
//! candidate and must be caught by the A/B gate at the canary and rolled
//! back to the pinned base. Asserts the delta ships ≥3× fewer bytes than
//! a full checkpoint, every stage completes within its retry budget, and
//! the whole report is bit-reproducible — across two executions and
//! across kernel thread counts. Writes `BENCH_rollout.json`.
//!
//! Pass an explicit fleet size to override (CI runs `-- 200`).

use mdl_bench::{fmt_bytes, print_table};
use mdl_core::net::PartitionWindow;
use mdl_core::prelude::*;
use mdl_core::tensor::kernel::{set_threads, threads};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0xD0_11;
const MIN_DELTA_RATIO: f64 = 3.0;

/// Base + candidate sharing one quantization grid: the base is a trained
/// classifier snapped onto the grid, the candidate a sparse fine-tune of
/// it (every 11th weight nudged) snapped onto the *same* grid — exactly
/// the artifact pair a quantized deployment produces, and the shape the
/// delta encoder compacts hardest.
fn versions() -> (Sequential, Sequential) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = mdl_core::data::synthetic::synthetic_digits(600, 0.08, &mut rng);
    let mut base = Sequential::new();
    base.push(Dense::new(64, 48, Activation::Relu, &mut rng));
    base.push(Dense::new(48, 10, Activation::Identity, &mut rng));
    let mut opt = Sgd::new(0.1);
    fit_classifier(
        &mut base,
        &mut opt,
        &data.x,
        &data.y,
        &TrainConfig { epochs: 3, batch_size: 32, ..Default::default() },
        &mut rng,
    );

    let params = base.param_vector();
    let grid = mdl_core::compress::uniform_codebook(&params, 256);
    base.set_param_vector(&mdl_core::compress::snap_to_codebook(&params, &grid));
    let nudged: Vec<f32> =
        params.iter().enumerate().map(|(i, &v)| if i % 11 == 0 { v + 0.02 } else { v }).collect();
    let mut candidate = Sequential::new();
    candidate.push(Dense::new(64, 48, Activation::Relu, &mut rng));
    candidate.push(Dense::new(48, 10, Activation::Identity, &mut rng));
    candidate.set_param_vector(&mdl_core::compress::snap_to_codebook(&nudged, &grid));
    (base, candidate)
}

fn probe() -> (Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let data = mdl_core::data::synthetic::synthetic_digits(200, 0.08, &mut rng);
    (data.x, data.y)
}

/// Faulty LTE: ambient flaky radios plus a hard fleet-wide partition in
/// the first distribution round, so every device exercises offset resume.
fn config(fleet: u64) -> RolloutConfig {
    let mut cfg = RolloutConfig::staged(fleet, SEED);
    cfg.fabric = FabricConfig {
        faults: FaultPlan {
            straggler_prob: 0.15,
            straggler_slowdown: 3.0,
            flaky_prob: 0.4,
            flaky_loss: 0.3,
            partitions: vec![PartitionWindow { from_round: 1, until_round: 2, clients: vec![] }],
            ..FaultPlan::none()
        },
        ..FabricConfig::faulty(LinkConfig::clean(NetworkProfile::lte()))
    };
    cfg.chunk.chunk_bytes = 256; // several chunks per delta → real resume traffic
    cfg.chunk.retry_budget = 48;
    cfg
}

fn healthy(fleet: u64) -> RolloutReport {
    let (mut base, mut candidate) = versions();
    let (x, y) = probe();
    run_rollout(&mut base, &mut candidate, &x, &y, &config(fleet), None)
}

fn regression(fleet: u64) -> RolloutReport {
    let (mut base, _) = versions();
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let mut broken = Sequential::new();
    broken.push(Dense::new(64, 48, Activation::Relu, &mut rng));
    broken.push(Dense::new(48, 10, Activation::Identity, &mut rng));
    let n = broken.num_params();
    broken.set_param_vector(&vec![0.0; n]);
    let (x, y) = probe();
    run_rollout(&mut base, &mut broken, &x, &y, &config(fleet), None)
}

fn main() {
    let fleet: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("fleet size must be an unsigned integer"))
        .unwrap_or(1_000);

    // --- bit-reproducibility: two executions, then kernel thread counts ---
    let start = Instant::now();
    let good = healthy(fleet);
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(good, healthy(fleet), "same seeds must reproduce the report bit-for-bit");
    let default_threads = threads();
    set_threads(1);
    let single = healthy(fleet);
    set_threads(4);
    let multi = healthy(fleet);
    set_threads(default_threads);
    assert_eq!(single, multi, "kernel thread count must not change any bit");
    assert_eq!(good, single);

    // --- the healthy arm: full ladder, within budget, compact delta ---
    assert!(good.completed && !good.rolled_back, "healthy rollout must finish the ladder");
    assert_eq!(good.stages.len(), 3);
    assert_eq!(good.serving_version, good.candidate_version);
    for s in &good.stages {
        assert_eq!(
            s.completed, s.cohort,
            "stage {}: every device must finish within the retry budget",
            s.name
        );
        assert_eq!(s.exhausted, 0);
    }
    assert!(
        good.bytes_ratio() >= MIN_DELTA_RATIO,
        "delta {}B vs full {}B: ratio {:.2} under the {MIN_DELTA_RATIO}x floor",
        good.delta_bytes,
        good.full_bytes,
        good.bytes_ratio()
    );

    // --- the regression arm: the A/B gate stops the canary ---
    let bad = regression(fleet);
    assert_eq!(bad, regression(fleet), "the rollback path must replay bit-for-bit too");
    assert!(bad.rolled_back && !bad.completed);
    assert!(bad.ab.flagged, "the behavioural diff must flag the regression");
    assert_eq!(bad.stages.len(), 1, "nothing past the canary");
    assert_eq!(bad.serving_version, bad.base_version, "serving reverted to the pin");
    assert_eq!(bad.reverts, 1);

    let rows: Vec<Vec<String>> = good
        .stages
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{}", s.cohort),
                format!("{}/{}", s.completed, s.cohort),
                format!("{}", s.rounds),
                fmt_bytes(s.delivered_bytes),
                fmt_bytes(s.wasted_bytes),
                format!("{:.1}%", 100.0 * s.gate.error_rate),
                format!("{:.2}s", s.gate.transfer_p99_s),
                if s.gate.passed { "pass".into() } else { "FAIL".into() },
            ]
        })
        .collect();
    print_table(
        &format!(
            "staged rollout to {fleet} devices over faulty LTE (delta {} = {:.1}x smaller than full {})",
            fmt_bytes(good.delta_bytes),
            good.bytes_ratio(),
            fmt_bytes(good.full_bytes),
        ),
        &["stage", "cohort", "done", "rounds", "delivered", "wasted", "err", "p99", "gate"],
        &rows,
    );
    println!(
        "\nhealthy candidate: {} mode, A/B mismatch {:.1}%, serving v{}",
        good.delta_mode,
        100.0 * good.ab.mismatch_rate,
        good.serving_version
    );
    println!(
        "injected regression: flagged at the canary (mismatch {:.1}%), {} revert, serving v{}",
        100.0 * bad.ab.mismatch_rate,
        bad.reverts,
        bad.serving_version
    );

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"rollout\",\n");
    let _ = writeln!(json, "  \"fleet\": {fleet},");
    let _ = writeln!(json, "  \"bit_reproducible\": true,");
    let _ = writeln!(json, "  \"thread_invariant\": true,");
    let _ = writeln!(json, "  \"delta_bytes\": {},", good.delta_bytes);
    let _ = writeln!(json, "  \"full_bytes\": {},", good.full_bytes);
    let _ = writeln!(json, "  \"delta_ratio\": {:.3},", good.bytes_ratio());
    let _ = writeln!(json, "  \"delta_mode\": \"{}\",", good.delta_mode);
    let _ = writeln!(json, "  \"ab_mismatch\": {:.4},", good.ab.mismatch_rate);
    let _ = writeln!(json, "  \"wall_s\": {wall_s:.3},");
    json.push_str("  \"stages\": [\n");
    for (i, s) in good.stages.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(json, "      \"cohort\": {},", s.cohort);
        let _ = writeln!(json, "      \"completed\": {},", s.completed);
        let _ = writeln!(json, "      \"rounds\": {},", s.rounds);
        let _ = writeln!(json, "      \"delivered_bytes\": {},", s.delivered_bytes);
        let _ = writeln!(json, "      \"wasted_bytes\": {},", s.wasted_bytes);
        let _ = writeln!(json, "      \"transfer_p99_s\": {:.4},", s.gate.transfer_p99_s);
        let _ = writeln!(json, "      \"gate_passed\": {}", s.gate.passed);
        json.push_str(if i + 1 == good.stages.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"regression\": {\n");
    let _ = writeln!(json, "    \"flagged\": {},", bad.ab.flagged);
    let _ = writeln!(json, "    \"ab_mismatch\": {:.4},", bad.ab.mismatch_rate);
    let _ = writeln!(json, "    \"rolled_back\": {},", bad.rolled_back);
    let _ = writeln!(json, "    \"reverts\": {},", bad.reverts);
    let _ = writeln!(json, "    \"stages_run\": {},", bad.stages.len());
    let _ = writeln!(json, "    \"serving_version\": {}", bad.serving_version);
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_rollout.json", &json).expect("write BENCH_rollout.json");
    println!("wrote BENCH_rollout.json");
}
