//! E1 — Fig. 1 / §II-A: distributed selective SGD.
//!
//! Reproduces the core claim of Shokri & Shmatikov's scheme: participants
//! who upload only a small selected fraction θ of their gradients still
//! approach the accuracy of fully shared training, at a fraction of the
//! communication cost.

use mdl_bench::{fmt_bytes, pct, print_table};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1001);
    let data = mdl_core::data::synthetic::synthetic_digits(1500, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let participants = partition_dataset(&train, 10, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 42);

    let central =
        mdl_core::federated::centralized_reference(&spec, &participants, &test, 30, 0.1, &mut rng);

    let mut rows = Vec::new();
    for theta in [0.01, 0.05, 0.1, 0.5, 1.0] {
        let run = run_selective_sgd(
            &spec,
            &participants,
            &test,
            &SelectiveConfig {
                rounds: 40,
                upload_fraction: theta,
                download_fraction: 1.0,
                local_steps: 5,
                batch_size: 16,
                learning_rate: 0.1,
                eval_every: 40,
            },
            &mut rng,
        );
        rows.push(vec![
            format!("{theta}"),
            pct(run.final_accuracy()),
            fmt_bytes(run.ledger.bytes_up),
            format!("{:.3}", run.final_accuracy() / central),
        ]);
    }
    print_table(
        "Fig. 1 / §II-A — distributed selective SGD (10 participants, synthetic digits)",
        &["θ (upload fraction)", "accuracy", "uploaded", "vs centralised"],
        &rows,
    );
    println!("\ncentralised reference accuracy: {}", pct(central));
    println!(
        "expected shape: accuracy rises with θ and approaches the centralised\n\
         reference well before θ = 1, while upload bytes grow linearly in θ."
    );
}
