//! E11 — serving-tier behaviour under load: the `mdl-serve` runtime
//! (dynamic micro-batching + placement routing + early-exit shedding)
//! driven by a deterministic open-loop Poisson load at three offered
//! rates. Prints the latency/throughput/shed table and writes the same
//! numbers to `BENCH_serving.json` so the perf trajectory is tracked
//! across commits, then demonstrates a hot model swap under load.
//!
//! The sweep runs each offered rate twice — once against the f32 model
//! and once against its int8 quantization served through the same
//! registry — so the table doubles as an accuracy-vs-latency comparison:
//! the argmax agreement between the two precisions is asserted up front,
//! and the final swap demo hot-swaps f32 → int8 under load.
//!
//! A second, virtual-time sweep drives the sharded SLO-classed fleet
//! engine at 800 and 10,000 offered rps with a 20/30/50
//! interactive/standard/best-effort mix. Those numbers are deterministic
//! (virtual clock, seeded arrivals), so `serving_p99_interactive_10k` is
//! floor-gated in `tests/bench_floors.json`, and the run asserts the SLO
//! contract outright: at 10k rps every shed lands on best-effort and
//! interactive p99 stays within 1.5× its 800 rps value.

use mdl_bench::print_table;
use mdl_core::prelude::*;
use mdl_serve::{
    request_stream, run_load, BatchPolicy, FleetConfig, FleetEngine, InferenceServer,
    LoadGenConfig, LoadMode, ServeConfig, SloClass,
};
use std::fmt::Write as _;
use std::time::Duration;

/// ~9.6M MACs per example — a wearable on Wi-Fi offloads this to the
/// cloud path, which is where batching and shedding live.
fn model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 10, Activation::Identity, &mut rng));
    net
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        queue_capacity: 256,
        shed_queue_depth: 32,
        kernel_threads: None,
        obs: None,
    }
}

struct Level {
    offered_rps: f64,
    precision: &'static str,
    report: mdl_serve::LoadReport,
}

/// The on-device early-exit head used for shedding.
fn fallback() -> Sequential {
    let mut rng = StdRng::seed_from_u64(1007);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 10, Activation::Identity, &mut rng));
    net
}

/// The int8 quantization of `model(seed)`, built the way `mdl-serve`
/// builds it when loading a compression artifact.
fn quantized(seed: u64) -> QuantizedModel {
    let mut net = model(seed);
    QuantizedModel::from_model(&mut net).expect("all-Dense model quantizes")
}

fn main() {
    let inputs = Matrix::from_fn(128, 32, |r, c| ((r * 32 + c) as f32 * 0.37).sin());

    // precision sanity up front: the two snapshots the sweep serves must
    // agree on nearly every argmax before latency numbers mean anything
    let f32_model = model(42);
    let int8_model = quantized(42);
    let agree = f32_model
        .predict(&inputs)
        .iter()
        .zip(int8_model.predict(&inputs))
        .filter(|&(&a, b)| a == b)
        .count() as f64
        / inputs.rows() as f64;
    println!("f32 vs int8 argmax agreement on the load-gen inputs: {:.1}%", agree * 100.0);
    assert!(agree >= 0.95, "int8 serving must agree with f32 on >=95% of argmaxes, got {agree}");

    // --- open-loop sweep: offered load vs latency/throughput/shedding ---
    // All clients are wearables on Wi-Fi, so every request is cloud-bound
    // and the sweep isolates the queue/batch/shed machinery. (Local and
    // split routing are exercised by the pipeline smoke test and the
    // integration suite.) Each rate runs at both precisions.
    let offered = [200.0, 800.0, 3200.0];
    let requests = 480;
    let mut levels = Vec::new();
    for precision in ["f32", "int8"] {
        for (i, &rps) in offered.iter().enumerate() {
            // fresh server per level so the histograms don't mix
            let server = match precision {
                "int8" => InferenceServer::start(quantized(42), Some(fallback()), serve_config()),
                _ => InferenceServer::start(model(42), Some(fallback()), serve_config()),
            };
            let client = server.client();
            let report = run_load(
                &client,
                &inputs,
                &LoadGenConfig {
                    seed: 500 + i as u64,
                    requests,
                    mode: LoadMode::Open { rps },
                    profiles: vec![ClientProfile {
                        device: DeviceClass::Wearable,
                        network: NetworkClass::Wifi,
                    }],
                    classes: vec![],
                },
            );
            drop(client);
            server.shutdown();
            levels.push(Level { offered_rps: rps, precision, report });
        }
    }

    let rows: Vec<Vec<String>> = levels
        .iter()
        .map(|l| {
            let r = &l.report;
            vec![
                format!("{:.0}", l.offered_rps),
                l.precision.to_string(),
                format!("{}", r.completed),
                format!("{:.0}", r.throughput_rps()),
                format!("{:.2}", r.percentile(50.0).as_secs_f64() * 1e3),
                format!("{:.2}", r.percentile(95.0).as_secs_f64() * 1e3),
                format!("{:.2}", r.percentile(99.0).as_secs_f64() * 1e3),
                format!("{:.1}", r.mean_batch_size),
                format!("{:.1}%", r.shed_rate() * 100.0),
            ]
        })
        .collect();
    print_table(
        "serving under open-loop Poisson load (4 workers, max_batch 8, max_wait 2ms)",
        &[
            "offered rps",
            "precision",
            "done",
            "rps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean batch",
            "shed",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: throughput tracks offered load until the worker pool\n\
         saturates; past that the queue fills, batches grow toward max_batch,\n\
         and excess cloud-bound requests shed to the on-device early exit."
    );

    // --- virtual-time fleet sweep: SLO classes at 800 and 10,000 rps ---
    // 4 replicas × 2 workers, 10 ms admission windows, budget 80/window
    // (≈ 8k rps admitted): at 800 rps everything fits; at 10k rps the
    // best-effort half of the mix absorbs every shed while interactive
    // and standard ride through untouched.
    let fleet_model = model(42);
    let mix = [
        SloClass::Interactive,
        SloClass::Interactive,
        SloClass::Standard,
        SloClass::Standard,
        SloClass::Standard,
        SloClass::BestEffort,
        SloClass::BestEffort,
        SloClass::BestEffort,
        SloClass::BestEffort,
        SloClass::BestEffort,
    ];
    let fleet_config = FleetConfig {
        replicas: 4,
        workers_per_replica: 2,
        max_batch: 8,
        admit_window_ns: 10_000_000,
        admit_budget: 80,
        policy: BatchPolicy::Continuous,
        ..FleetConfig::default()
    };
    let engine = FleetEngine::new(&fleet_model, &inputs, fleet_config.clone());
    let fleet_levels: Vec<(f64, mdl_serve::FleetReport)> = [(800.0, 800usize), (10_000.0, 3000)]
        .iter()
        .map(|&(rps, n)| {
            let stream = request_stream(0xf1ee7, rps, n, &mix, inputs.rows());
            let report = engine.run(&stream);
            // the whole point of the virtual clock: a repeat run is
            // bit-identical, so these numbers are floor-gateable
            assert_eq!(
                report.result_digest(),
                engine.run(&stream).result_digest(),
                "fleet run must be bit-reproducible at {rps} rps"
            );
            (rps, report)
        })
        .collect();

    let fleet_rows: Vec<Vec<String>> = fleet_levels
        .iter()
        .flat_map(|(rps, report)| {
            SloClass::ALL.into_iter().map(move |class| {
                let s = report.class(class);
                vec![
                    format!("{rps:.0}"),
                    class.label().to_string(),
                    format!("{}", s.offered),
                    format!("{}", s.served),
                    format!("{}", s.shed),
                    format!("{:.2}", s.percentile_ns(50.0) as f64 / 1e6),
                    format!("{:.2}", s.percentile_ns(99.0) as f64 / 1e6),
                ]
            })
        })
        .collect();
    print_table(
        "SLO-classed fleet, virtual time (4 replicas x 2 workers, 10ms windows, budget 80)",
        &["offered rps", "class", "offered", "served", "shed", "p50 ms", "p99 ms"],
        &fleet_rows,
    );
    for (rps, report) in &fleet_levels {
        println!(
            "  {rps:.0} rps: {} batches (mean {:.1} rows), {} steals, plan {}h/{}m",
            report.batches,
            report.mean_batch_rows,
            report.steals,
            report.plan_hits,
            report.plan_misses
        );
    }

    // the SLO contract, asserted on the deterministic numbers
    let at = |rps: f64| &fleet_levels.iter().find(|(r, _)| *r == rps).expect("level ran").1;
    let (low, high) = (at(800.0), at(10_000.0));
    for report in [low, high] {
        assert_eq!(report.class(SloClass::Interactive).shed, 0, "interactive never sheds");
        assert_eq!(report.class(SloClass::Standard).shed, 0, "standard never sheds");
    }
    assert!(high.class(SloClass::BestEffort).shed > 0, "10k rps must overload the budget");
    let p99_int_800 = low.class(SloClass::Interactive).percentile_ns(99.0);
    let p99_int_10k = high.class(SloClass::Interactive).percentile_ns(99.0);
    assert!(
        p99_int_10k as f64 <= 1.5 * p99_int_800 as f64,
        "interactive p99 at 10k rps ({p99_int_10k} ns) must stay within 1.5x \
         its 800 rps value ({p99_int_800} ns)"
    );
    println!(
        "\nSLO contract holds: sheds confined to best-effort \
         ({} of {} at 10k rps), interactive p99 {:.2} ms -> {:.2} ms (<= 1.5x)",
        high.class(SloClass::BestEffort).shed,
        high.class(SloClass::BestEffort).offered,
        p99_int_800 as f64 / 1e6,
        p99_int_10k as f64 / 1e6,
    );

    // --- JSON artifact ---
    let mut json = String::from("{\n  \"benchmark\": \"serving\",\n  \"levels\": [\n");
    for (i, l) in levels.iter().enumerate() {
        let r = &l.report;
        let _ = writeln!(
            json,
            "    {{\"offered_rps\": {:.1}, \"precision\": \"{}\", \"requests\": {}, \
             \"completed\": {}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"mean_batch_size\": {:.2}, \"shed_rate\": {:.4}}}{}",
            l.offered_rps,
            l.precision,
            requests,
            r.completed,
            r.throughput_rps(),
            r.percentile(50.0).as_micros(),
            r.percentile(95.0).as_micros(),
            r.percentile(99.0).as_micros(),
            r.mean_batch_size,
            r.shed_rate(),
            if i + 1 < levels.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"fleet\": [\n");
    for (i, (rps, report)) in fleet_levels.iter().enumerate() {
        for (j, class) in SloClass::ALL.into_iter().enumerate() {
            let s = report.class(class);
            let _ = writeln!(
                json,
                "    {{\"offered_rps\": {:.1}, \"class\": \"{}\", \"offered\": {}, \
                 \"served\": {}, \"shed\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}",
                rps,
                class.label(),
                s.offered,
                s.served,
                s.shed,
                s.percentile_ns(50.0) / 1_000,
                s.percentile_ns(99.0) / 1_000,
                if i + 1 < fleet_levels.len() || j + 1 < SloClass::COUNT { "," } else { "" },
            );
        }
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"serving_p99_interactive_10k\": {},", p99_int_10k / 1_000);
    let _ = writeln!(
        json,
        "  \"fleet_shed_best_effort_10k\": {},",
        high.class(SloClass::BestEffort).shed
    );
    let _ = writeln!(json, "  \"fleet_digest_10k\": {},", high.result_digest());
    let p99_at = |rps: f64, precision: &str| {
        levels
            .iter()
            .find(|l| l.offered_rps == rps && l.precision == precision)
            .map(|l| l.report.percentile(99.0).as_micros())
            .unwrap_or(0)
    };
    let _ = writeln!(json, "  \"p99_us_800rps\": {},", p99_at(800.0, "f32"));
    let _ = writeln!(json, "  \"p99_us_800rps_int8\": {},", p99_at(800.0, "int8"));
    let _ = writeln!(json, "  \"int8_argmax_agreement\": {agree:.4}");
    json.push_str("}\n");
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");

    // --- hot swap under load ---
    let server = InferenceServer::start(model(42), None, serve_config());
    let client = server.client();
    let profile = ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi };
    let loader = {
        let client = client.clone();
        let inputs = inputs.clone();
        std::thread::spawn(move || {
            run_load(
                &client,
                &inputs,
                &LoadGenConfig {
                    seed: 900,
                    requests: 240,
                    mode: LoadMode::Closed { concurrency: 6 },
                    profiles: vec![profile],
                    classes: vec![],
                },
            )
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let v2 = server.swap_model(model(43));
    std::thread::sleep(Duration::from_millis(20));
    // precision swap mid-run: same lifecycle, 4x smaller weights
    let v3 = server.swap_quantized(quantized(43));
    let report = loader.join().expect("load thread");
    println!(
        "\nhot swap under load: swapped to v{v2} (f32) then v{v3} (int8) mid-run; \
         {} / 240 requests answered, {} swaps recorded, final served version {} ({})",
        report.completed,
        server.swap_count(),
        server.version(),
        server.precision()
    );
    assert_eq!(server.precision(), "int8", "final snapshot must be the quantized swap");
    drop(client);
    server.shutdown();
}
