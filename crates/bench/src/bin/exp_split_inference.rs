//! E4 — §III-A / Figs. 2–3: ARDEN private split inference.
//!
//! Three tables: (1) accuracy under the nullification × noise sweep, with
//! and without noisy training; (2) what actually crosses the network (raw
//! input vs perturbed representation); (3) device-side latency/energy of
//! on-device vs cloud vs split placements across device/network classes.

use mdl_bench::{fmt_bytes, pct, print_table};
use mdl_core::prelude::*;

fn pretrained(rng: &mut StdRng) -> (Sequential, Dataset, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(1600, 0.08, rng);
    let (train, test) = data.split(0.75, rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 32, Activation::Relu, rng));
    net.push(Dense::new(32, 32, Activation::Relu, rng));
    net.push(Dense::new(32, 10, Activation::Identity, rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 30, ..Default::default() },
        rng,
    );
    (net, train, test)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1004);
    let (net, train, test) = pretrained(&mut rng);
    let reference = net;
    let base_acc = reference.accuracy(&test.x, &test.y);
    println!("pretrained accuracy (no perturbation): {}", pct(base_acc));

    // --- table 1: perturbation sweep, before vs after noisy training ---
    let mut rows = Vec::new();
    for mu in [0.0f32, 0.2, 0.4, 0.6, 0.8] {
        for sigma in [0.1f32, 0.3, 0.5, 0.8] {
            let rebuild = |rng: &mut StdRng| {
                let (n, _, _) = {
                    // rebuild deterministically from the same seed
                    let mut r2 = StdRng::seed_from_u64(1004);
                    pretrained(&mut r2)
                };
                let _ = rng;
                n
            };
            let cfg = ArdenConfig {
                split_at: 1,
                nullification_rate: mu,
                noise_sigma: sigma,
                clip_norm: 5.0,
            };
            let mut arden = Arden::from_pretrained(rebuild(&mut rng), cfg.clone());
            let before = arden.accuracy(&test.x, &test.y, &mut rng);
            let _ = arden.noisy_train(&train.x, &train.y, 25, 0.005, &mut rng);
            let after = arden.accuracy(&test.x, &test.y, &mut rng);
            rows.push(vec![
                format!("{mu}"),
                format!("{sigma}"),
                pct(before),
                pct(after),
                format!("{:.1}", arden.privacy_epsilon(1e-5)),
            ]);
        }
    }
    print_table(
        "§III-A — ARDEN accuracy under perturbation (clip=5, split after layer 1)",
        &["nullification μ", "noise σ", "plain cloud net", "after noisy training", "ε/query"],
        &rows,
    );
    println!(
        "\nexpected shape: noisy training recovers most of the accuracy lost\n\
         to perturbation at moderate (μ, σ) and the gap widens as σ grows."
    );

    // --- table 2: communication ---
    let mut r2 = StdRng::seed_from_u64(1004);
    let (net2, _, _) = pretrained(&mut r2);
    let arden = Arden::from_pretrained(net2, ArdenConfig::default());
    print_table(
        "§III-A — bytes crossing the network per inference",
        &["payload", "bytes"],
        &[
            vec!["raw input (cloud inference, Fig. 2)".into(), fmt_bytes(4 * 64)],
            vec![
                "perturbed representation (Fig. 3)".into(),
                fmt_bytes(arden.representation_bytes()),
            ],
        ],
    );

    // --- table 3: placement economics ---
    let mut r3 = StdRng::seed_from_u64(1004);
    let (net3, _, _) = pretrained(&mut r3);
    let mut rows = Vec::new();
    for (dev_name, device) in [
        ("flagship", DeviceProfile::flagship_phone()),
        ("midrange", DeviceProfile::midrange_phone()),
        ("wearable", DeviceProfile::wearable()),
    ] {
        for (net_name, network) in [
            ("wifi", NetworkProfile::wifi()),
            ("lte", NetworkProfile::lte()),
            ("3g", NetworkProfile::cellular_3g()),
        ] {
            let comparison = compare_deployments(
                &net3,
                &arden,
                &device,
                &DeviceProfile::cloud_server(),
                &network,
                4 * 64,
            );
            for row in comparison {
                rows.push(vec![
                    dev_name.into(),
                    net_name.into(),
                    row.strategy.into(),
                    format!("{:.3} ms", 1000.0 * row.cost.latency_s),
                    format!("{:.3} mJ", 1000.0 * row.cost.energy_j),
                    fmt_bytes(row.upload_bytes),
                ]);
            }
        }
    }
    print_table(
        "§III / Figs. 2–3 — device-side cost of the three serving strategies",
        &["device", "network", "strategy", "latency", "energy", "upload"],
        &rows,
    );
    println!(
        "\nexpected shape: on weak links the radio dominates (split < cloud in\n\
         upload and energy); on strong devices local inference wins outright;\n\
         the split path always keeps raw data on the device."
    );
}
