//! # mdl-bench
//!
//! Experiment binaries and Criterion benchmarks that regenerate every table
//! and figure of the paper's evaluation. Each `exp_*` binary prints the
//! rows/series of one artifact (see `DESIGN.md` §3 for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_selective_sgd` | Fig. 1 / §II-A convergence vs upload fraction θ |
//! | `exp_fedavg_comm` | §II-B 10–100× communication reduction |
//! | `exp_dp_fedavg` | §II-C privacy/accuracy trade-off |
//! | `exp_split_inference` | Fig. 2–3 / §III-A ARDEN sweeps + placement costs |
//! | `exp_compression` | §III-B compression family sweeps |
//! | `exp_deepmood` | §IV-A DeepMood vs shallow baselines |
//! | `exp_deepmood_fig5` | Fig. 5 per-participant accuracy |
//! | `exp_deepservice_table1` | Table I at 10 and 26 users |
//! | `exp_deepservice_pairs` | §IV-B binary identification |
//! | `exp_patterns_fig6` | Fig. 6 multi-view pattern analysis |
//! | `exp_ablations` | DESIGN.md §4 design-choice ablations |
//! | `exp_mobilenets` | §III-B reference [29] depthwise-separable CNNs |
//! | `exp_faults` | FedAvg over the `mdl-net` faulty fabric vs the ideal one |
//! | `exp_kernels` | blocked GEMM kernel throughput + bit-determinism contract |
//! | `exp_obs` | observability overhead (<5% per epoch) + snapshot determinism |
//! | `exp_population` | 1k → 100k-client event-driven FedAvg over `mdl-sim` |
//! | `exp_rollout` | 1k-device staged delta rollout over faulty LTE via `mdl-fleet` |
//! | `exp_matrix` | deployment matrix: device × model × weight precision |

/// Prints a markdown-style table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$} | ", cell, w = widths.get(i).copied().unwrap_or(4)));
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats bytes with a binary-prefix unit.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9031), "90.31%");
    }

    #[test]
    fn bytes_format_scales() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
