//! Block-circulant layers with FFT-based products (CirCNN, paper
//! reference [14]): an `n × n` block is represented by a single length-`n`
//! generator vector, cutting storage `n×` and compute from `O(n²)` to
//! `O(n log n)`.

use mdl_nn::{Activation, Layer, LayerInfo, Mode};
use mdl_tensor::fft::circular_convolve;
use mdl_tensor::{Init, Matrix};
use rand::Rng;

/// Reverses a circulant generator: `rev(c)[k] = c[(b − k) mod b]`, so that
/// `circ(c)ᵀ = circ(rev(c))`.
fn rev_gen(c: &[f32]) -> Vec<f32> {
    let b = c.len();
    (0..b).map(|k| c[(b - k) % b]).collect()
}

/// A dense-equivalent layer built from a grid of circulant blocks.
///
/// Input width `in_dim = b · p`, output width `out_dim = b · q`; the weight
/// grid holds `p × q` generator vectors of length `b` (block size must be a
/// power of two for the FFT).
pub struct BlockCirculant {
    block: usize,
    in_blocks: usize,
    out_blocks: usize,
    /// generators\[i\]\[j\] is the block mapping input block `i` → output `j`.
    generators: Vec<Vec<Matrix>>, // stored as 1 × block matrices
    grads: Vec<Vec<Matrix>>,
    bias: Matrix,
    grad_bias: Matrix,
    activation: Activation,
    cache: Option<(Matrix, Matrix)>, // (input, pre-activation)
}

impl std::fmt::Debug for BlockCirculant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCirculant")
            .field("block", &self.block)
            .field("in_dim", &(self.block * self.in_blocks))
            .field("out_dim", &(self.block * self.out_blocks))
            .finish()
    }
}

impl BlockCirculant {
    /// Creates a block-circulant layer.
    ///
    /// # Panics
    ///
    /// Panics unless `block` is a power of two dividing both widths.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        block: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert_eq!(in_dim % block, 0, "block must divide the input width");
        assert_eq!(out_dim % block, 0, "block must divide the output width");
        let in_blocks = in_dim / block;
        let out_blocks = out_dim / block;
        let std = (2.0 / in_dim as f32).sqrt();
        let generators: Vec<Vec<Matrix>> = (0..in_blocks)
            .map(|_| (0..out_blocks).map(|_| Init::Normal { std }.sample(1, block, rng)).collect())
            .collect();
        let grads = (0..in_blocks)
            .map(|_| (0..out_blocks).map(|_| Matrix::zeros(1, block)).collect())
            .collect();
        Self {
            block,
            in_blocks,
            out_blocks,
            generators,
            grads,
            bias: Matrix::zeros(1, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            activation,
            cache: None,
        }
    }

    /// Block size `b`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Materialises the equivalent dense weight matrix (`in × out`).
    ///
    /// `W[i·b + k, j·b + t] = c_ij[(t − k) mod b]` so that
    /// `y_j = Σ_i circ(c_ij) · x_i` matches `y = x · W`.
    pub fn to_dense_weight(&self) -> Matrix {
        let b = self.block;
        let mut w = Matrix::zeros(self.in_blocks * b, self.out_blocks * b);
        for (i, row) in self.generators.iter().enumerate() {
            for (j, c) in row.iter().enumerate() {
                for k in 0..b {
                    for t in 0..b {
                        w[(i * b + k, j * b + t)] = c[(0, (t + b - k) % b)];
                    }
                }
            }
        }
        w
    }

    /// Pre-activation outputs via the FFT block products.
    fn pre_activation(&self, x: &Matrix) -> Matrix {
        let b = self.block;
        assert_eq!(x.cols(), b * self.in_blocks, "circulant input width mismatch");
        let mut pre = Matrix::zeros(x.rows(), b * self.out_blocks);
        for r in 0..x.rows() {
            for j in 0..self.out_blocks {
                let mut acc = vec![0.0f32; b];
                for i in 0..self.in_blocks {
                    let xi = &x.row(r)[i * b..(i + 1) * b];
                    let prod = circular_convolve(self.generators[i][j].row(0), xi);
                    for (a, p) in acc.iter_mut().zip(prod.iter()) {
                        *a += p;
                    }
                }
                for (t, &a) in acc.iter().enumerate() {
                    pre[(r, j * b + t)] = a + self.bias[(0, j * b + t)];
                }
            }
        }
        pre
    }
}

impl Layer for BlockCirculant {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Matrix, _mode: Mode) -> Matrix {
        let pre = self.pre_activation(x);
        let out = self.activation.apply_matrix(&pre);
        self.cache = Some((x.clone(), pre));
        out
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        self.activation.apply_matrix(&self.pre_activation(x))
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (input, pre) = self.cache.as_ref().expect("backward called before forward").clone();
        let b = self.block;
        let dpre = grad_out.hadamard(&self.activation.derivative_matrix(&pre));
        self.grad_bias.add_assign(&dpre.sum_rows());

        let mut dx = Matrix::zeros(input.rows(), input.cols());
        for r in 0..input.rows() {
            for j in 0..self.out_blocks {
                let dy = &dpre.row(r)[j * b..(j + 1) * b];
                for i in 0..self.in_blocks {
                    let xi = &input.row(r)[i * b..(i + 1) * b];
                    // dL/dc = dy ⊛ rev(x)
                    let dc = circular_convolve(dy, &rev_gen(xi));
                    for (g, &v) in self.grads[i][j].as_mut_slice().iter_mut().zip(dc.iter()) {
                        *g += v;
                    }
                    // dL/dx = dy ⊛ rev(c)
                    let dxi = circular_convolve(dy, &rev_gen(self.generators[i][j].row(0)));
                    for (t, &v) in dxi.iter().enumerate() {
                        dx[(r, i * b + t)] += v;
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for (grow, vrow) in self.grads.iter_mut().zip(self.generators.iter_mut()) {
            for (g, v) in grow.iter_mut().zip(vrow.iter_mut()) {
                f(v, g);
            }
        }
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn info(&self) -> LayerInfo {
        let b = self.block as u64;
        let in_dim = self.block * self.in_blocks;
        let out_dim = self.block * self.out_blocks;
        let blocks = (self.in_blocks * self.out_blocks) as u64;
        LayerInfo {
            kind: "block-circulant",
            in_dim,
            out_dim,
            params: self.in_blocks * self.out_blocks * self.block + out_dim,
            // FFT cost per block: ~ 3 b log2(b) butterflies ≈ macs
            macs: blocks * 3 * b * (b.max(2).ilog2() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::ParamVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_dense_equivalent() {
        let mut rng = StdRng::seed_from_u64(290);
        let mut layer = BlockCirculant::new(8, 16, 4, Activation::Identity, &mut rng);
        let w = layer.to_dense_weight();
        let x = Matrix::from_fn(3, 8, |r, c| ((r * 8 + c) as f32 * 0.37).sin());
        let fast = layer.forward(&x, Mode::Eval);
        let dense = x.matmul(&w);
        assert!(fast.approx_eq(&dense, 1e-4), "FFT path must equal dense path");
    }

    #[test]
    fn parameter_count_is_compressed() {
        let mut rng = StdRng::seed_from_u64(291);
        let layer = BlockCirculant::new(64, 64, 16, Activation::Relu, &mut rng);
        let info = layer.info();
        // dense would be 64·64 + 64 = 4160; circulant is 4·4·16 + 64 = 320
        assert_eq!(info.params, 320);
    }

    #[test]
    fn gradient_check_params_and_inputs() {
        let mut rng = StdRng::seed_from_u64(292);
        let mut layer = BlockCirculant::new(4, 4, 4, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| ((r + 2 * c) as f32 * 0.5).cos() * 0.6);

        let base = layer.param_vector();
        layer.zero_grad();
        let _ = layer.forward(&x, Mode::Train);
        let dx = layer.backward(&Matrix::ones(2, 4));
        let analytic = layer.grad_vector();

        let eps = 1e-3f32;
        for k in 0..base.len() {
            let mut plus = base.clone();
            plus[k] += eps;
            layer.set_param_vector(&plus);
            let lp = layer.forward(&x, Mode::Eval).sum();
            let mut minus = base.clone();
            minus[k] -= eps;
            layer.set_param_vector(&minus);
            let lm = layer.forward(&x, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < 1e-2, "param {k}: fd={fd} analytic={}", analytic[k]);
        }
        layer.set_param_vector(&base);
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let lp = layer.forward(&xp, Mode::Eval).sum();
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lm = layer.forward(&xm, Mode::Eval).sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 1e-2,
                    "input ({r},{c}): fd={fd} analytic={}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn trains_on_simple_task() {
        use mdl_nn::{fit_classifier, Adam, Sequential, TrainConfig};
        let mut rng = StdRng::seed_from_u64(293);
        let data = mdl_data::synthetic::gaussian_blobs(200, 2, 0.4, &mut rng);
        // lift 2-d input into 8-d with a dense layer, then circulant
        let mut net = Sequential::new();
        net.push(mdl_nn::Dense::new(2, 8, Activation::Relu, &mut rng));
        net.push(BlockCirculant::new(8, 8, 8, Activation::Relu, &mut rng));
        net.push(mdl_nn::Dense::new(8, 2, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.02);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &data.x,
            &data.y,
            &TrainConfig { epochs: 15, ..Default::default() },
            &mut rng,
        );
        let acc = net.accuracy(&data.x, &data.y);
        assert!(acc > 0.9, "circulant net should learn blobs: {acc}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        let mut rng = StdRng::seed_from_u64(294);
        let _ = BlockCirculant::new(6, 6, 3, Activation::Relu, &mut rng);
    }
}
