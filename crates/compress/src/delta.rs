//! Delta checkpoints: ship model version *N+1* as "base version *N* plus
//! what changed", bit-exactly.
//!
//! The paper's §III deployment story updates on-device models without
//! re-shipping the whole network. This module encodes the new parameter
//! vector against a pinned base as a sparse, optionally code-booked diff:
//!
//! - **positions** are delta-gap varints over the changed indices;
//! - **values** are *exact bit patterns*, never float arithmetic — a
//!   reconstructed checkpoint is byte-identical to the original for
//!   arbitrary tensors (NaNs, `-0.0`, denormals included);
//! - when the changed values collapse onto few distinct patterns (the
//!   quantized-diff path: successive versions snapped onto a shared
//!   codebook via [`snap_to_codebook`]), values become small codes
//!   squeezed through the canonical [`HuffmanEncoded`] codec.
//!
//! The encoder scores every applicable layout — sparse raw, sparse
//! coded, dense coded, dense raw — and keeps the smallest, so a delta is
//! never materially larger than a full checkpoint even in the worst case
//! (every weight changed, all values distinct).
//!
//! # Examples
//!
//! ```
//! use mdl_compress::delta::{uniform_codebook, snap_to_codebook, DeltaCheckpoint};
//!
//! let base: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin()).collect();
//! let grid = uniform_codebook(&base, 64);
//! let v1 = snap_to_codebook(&base, &grid);
//! // a fine-tune nudges a fifth of the weights; snapping absorbs the rest
//! let v2: Vec<f32> = snap_to_codebook(
//!     &v1.iter().enumerate().map(|(i, &w)| if i % 5 == 0 { w + 0.04 } else { w }).collect::<Vec<_>>(),
//!     &grid,
//! );
//! let delta = DeltaCheckpoint::encode(&v1, &v2, 1, 2);
//! assert_eq!(delta.apply(&v1).unwrap(), v2);
//! let wire = delta.to_bytes();
//! assert!(wire.len() < 4 * v1.len(), "delta beats the full checkpoint");
//! assert_eq!(DeltaCheckpoint::from_bytes(&wire).unwrap(), delta);
//! ```

use crate::huffman::HuffmanEncoded;
use std::collections::BTreeMap;

/// Wire magic for a serialised delta checkpoint (`MDLD`).
pub const DELTA_MAGIC: [u8; 4] = *b"MDLD";
const WIRE_VERSION: u8 = 1;
/// Largest codebook either coded layout will build: codes are at most
/// two bytes wide.
const MAX_CODEBOOK: usize = 1 << 16;

/// FNV-1a over the little-endian bit patterns of a parameter vector —
/// the fingerprint that pins a delta to its base version.
pub fn param_hash(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in params {
        for b in p.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Why a delta could not be applied or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The supplied base parameters are not the version this delta was
    /// encoded against.
    BaseHashMismatch {
        /// Hash the delta was encoded against.
        expected: u64,
        /// Hash of the parameters actually supplied.
        found: u64,
    },
    /// The supplied base has the wrong parameter count.
    LengthMismatch {
        /// Parameter count the delta expects.
        expected: usize,
        /// Parameter count actually supplied.
        found: usize,
    },
    /// The byte frame is truncated or internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BaseHashMismatch { expected, found } => {
                write!(f, "base hash mismatch: delta wants {expected:#018x}, got {found:#018x}")
            }
            Self::LengthMismatch { expected, found } => {
                write!(f, "base length mismatch: delta wants {expected} params, got {found}")
            }
            Self::Malformed(what) => write!(f, "malformed delta frame: {what}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// How the changed values are stored. All layouts preserve exact bit
/// patterns; they differ only in size.
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    /// Raw bit patterns for each changed position.
    SparseRaw(Vec<u32>),
    /// Codebook of distinct bit patterns + Huffman-packed codes, one per
    /// changed position. `wide` = two-byte codes (codebook > 256).
    SparseCoded { codebook: Vec<u32>, codes: HuffmanEncoded, wide: bool },
    /// Codebook + one code per position (changed or not) — wins when
    /// nearly everything changed but the *new* version is quantized.
    DenseCoded { codebook: Vec<u32>, codes: HuffmanEncoded, wide: bool },
    /// Full new parameter vector; the floor that keeps a delta from ever
    /// degenerating past a plain checkpoint.
    DenseRaw(Vec<u32>),
}

/// A new model version encoded against a pinned base.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaCheckpoint {
    base_version: u64,
    new_version: u64,
    base_hash: u64,
    total: u32,
    /// Ascending changed positions; empty for the dense layouts.
    indices: Vec<u32>,
    payload: Payload,
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, DeltaError> {
    let mut v = 0u32;
    for shift in (0..35).step_by(7) {
        let byte =
            *bytes.get(*pos).ok_or(DeltaError::Malformed("varint runs past end of frame"))?;
        *pos += 1;
        v |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            if shift == 28 && byte > 0x0F {
                return Err(DeltaError::Malformed("varint overflows u32"));
            }
            return Ok(v);
        }
    }
    Err(DeltaError::Malformed("varint longer than five bytes"))
}

/// Gap-encodes ascending indices (first index, then successive gaps).
fn index_bytes(indices: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(indices.len());
    let mut prev = 0u32;
    for (i, &idx) in indices.iter().enumerate() {
        write_varint(&mut out, if i == 0 { idx } else { idx - prev });
        prev = idx;
    }
    out
}

/// Packs codebook codes into a byte stream (one or two bytes per code)
/// and squeezes it through the Huffman codec.
fn pack_codes(codes: &[u16], wide: bool) -> HuffmanEncoded {
    let mut stream = Vec::with_capacity(codes.len() * if wide { 2 } else { 1 });
    for &c in codes {
        stream.push((c & 0xFF) as u8);
        if wide {
            stream.push((c >> 8) as u8);
        }
    }
    HuffmanEncoded::encode(&stream)
}

fn unpack_codes(codes: &HuffmanEncoded, wide: bool, expected: usize) -> Option<Vec<u16>> {
    let stream = codes.try_decode()?;
    let width = if wide { 2 } else { 1 };
    if stream.len() != expected * width {
        return None;
    }
    Some(
        stream
            .chunks_exact(width)
            .map(|c| if wide { u16::from_le_bytes([c[0], c[1]]) } else { c[0] as u16 })
            .collect(),
    )
}

/// Assigns codes to bit patterns in first-occurrence order (deterministic
/// and independent of the platform's hash seeds).
fn build_codebook(values: impl Iterator<Item = u32>) -> Option<(Vec<u32>, Vec<u16>)> {
    let mut table: BTreeMap<u32, u16> = BTreeMap::new();
    let mut book = Vec::new();
    let mut codes = Vec::new();
    for bits in values {
        let next = book.len() as u16;
        let code = *table.entry(bits).or_insert_with(|| {
            book.push(bits);
            next
        });
        codes.push(code);
        if book.len() > MAX_CODEBOOK {
            return None;
        }
    }
    Some((book, codes))
}

impl DeltaCheckpoint {
    /// Encodes `new` against `base`, picking the smallest applicable
    /// layout. Identity holds for arbitrary float contents.
    ///
    /// # Panics
    ///
    /// Panics when the two versions disagree on parameter count — a
    /// delta only makes sense between same-architecture checkpoints —
    /// or when the vector exceeds `u32` positions.
    pub fn encode(base: &[f32], new: &[f32], base_version: u64, new_version: u64) -> Self {
        assert_eq!(base.len(), new.len(), "delta requires same-architecture checkpoints");
        assert!(base.len() <= u32::MAX as usize, "parameter vector exceeds u32 positions");
        let total = base.len() as u32;
        let base_hash = param_hash(base);

        let changed: Vec<(u32, u32)> = base
            .iter()
            .zip(new)
            .enumerate()
            .filter(|(_, (b, n))| b.to_bits() != n.to_bits())
            .map(|(i, (_, n))| (i as u32, n.to_bits()))
            .collect();
        let indices: Vec<u32> = changed.iter().map(|&(i, _)| i).collect();
        let idx_cost = index_bytes(&indices).len();

        // score every applicable layout; ties go to the earlier entry
        let mut best: Option<(usize, Payload, bool)> = None; // (bytes, payload, sparse)
        let mut consider = |bytes: usize, payload: Payload, sparse: bool| {
            if best.as_ref().is_none_or(|(b, _, _)| bytes < *b) {
                best = Some((bytes, payload, sparse));
            }
        };

        if let Some((book, codes)) = build_codebook(changed.iter().map(|&(_, v)| v)) {
            let wide = book.len() > 256;
            let packed = pack_codes(&codes, wide);
            let bytes = idx_cost + 4 + 4 * book.len() + packed.to_bytes().len();
            consider(bytes, Payload::SparseCoded { codebook: book, codes: packed, wide }, true);
        }
        if let Some((book, codes)) = build_codebook(new.iter().map(|v| v.to_bits())) {
            let wide = book.len() > 256;
            let packed = pack_codes(&codes, wide);
            let bytes = 4 + 4 * book.len() + packed.to_bytes().len();
            consider(bytes, Payload::DenseCoded { codebook: book, codes: packed, wide }, false);
        }
        consider(
            idx_cost + 4 * changed.len(),
            Payload::SparseRaw(changed.iter().map(|&(_, v)| v).collect()),
            true,
        );
        consider(
            4 * new.len(),
            Payload::DenseRaw(new.iter().map(|v| v.to_bits()).collect()),
            false,
        );

        let (_, payload, sparse) = best.expect("dense-raw layout always applies");
        Self {
            base_version,
            new_version,
            base_hash,
            total,
            indices: if sparse { indices } else { Vec::new() },
            payload,
        }
    }

    /// Reconstructs the new parameter vector from the pinned base.
    ///
    /// # Errors
    ///
    /// [`DeltaError::LengthMismatch`] / [`DeltaError::BaseHashMismatch`]
    /// when `base` is not the version this delta was encoded against;
    /// [`DeltaError::Malformed`] when a decoded frame is internally
    /// inconsistent.
    pub fn apply(&self, base: &[f32]) -> Result<Vec<f32>, DeltaError> {
        if base.len() != self.total as usize {
            return Err(DeltaError::LengthMismatch {
                expected: self.total as usize,
                found: base.len(),
            });
        }
        let found = param_hash(base);
        if found != self.base_hash {
            return Err(DeltaError::BaseHashMismatch { expected: self.base_hash, found });
        }

        let changed_bits: Vec<u32> = match &self.payload {
            Payload::SparseRaw(bits) => bits.clone(),
            Payload::SparseCoded { codebook, codes, wide } => {
                let codes = unpack_codes(codes, *wide, self.indices.len())
                    .ok_or(DeltaError::Malformed("sparse code stream inconsistent"))?;
                Self::look_up(codebook, &codes)?
            }
            Payload::DenseCoded { codebook, codes, wide } => {
                let codes = unpack_codes(codes, *wide, self.total as usize)
                    .ok_or(DeltaError::Malformed("dense code stream inconsistent"))?;
                return Ok(Self::look_up(codebook, &codes)?
                    .into_iter()
                    .map(f32::from_bits)
                    .collect());
            }
            Payload::DenseRaw(bits) => {
                return Ok(bits.iter().map(|&b| f32::from_bits(b)).collect());
            }
        };

        if changed_bits.len() != self.indices.len() {
            return Err(DeltaError::Malformed("value count disagrees with index count"));
        }
        let mut out: Vec<f32> = base.to_vec();
        for (&idx, &bits) in self.indices.iter().zip(&changed_bits) {
            *out.get_mut(idx as usize)
                .ok_or(DeltaError::Malformed("changed index out of range"))? = f32::from_bits(bits);
        }
        Ok(out)
    }

    fn look_up(codebook: &[u32], codes: &[u16]) -> Result<Vec<u32>, DeltaError> {
        codes
            .iter()
            .map(|&c| {
                codebook
                    .get(c as usize)
                    .copied()
                    .ok_or(DeltaError::Malformed("code exceeds codebook"))
            })
            .collect()
    }

    /// Version this delta must be applied on top of.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Version this delta produces.
    pub fn new_version(&self) -> u64 {
        self.new_version
    }

    /// Fingerprint of the pinned base parameters.
    pub fn base_hash(&self) -> u64 {
        self.base_hash
    }

    /// Parameter count of both versions.
    pub fn total(&self) -> usize {
        self.total as usize
    }

    /// Number of positions whose bit pattern changed.
    pub fn changed(&self) -> usize {
        match &self.payload {
            Payload::SparseRaw(_) | Payload::SparseCoded { .. } => self.indices.len(),
            // dense layouts dropped the index list; report the whole vector
            Payload::DenseCoded { .. } | Payload::DenseRaw(_) => self.total as usize,
        }
    }

    /// `true` when values went through a codebook (the quantized-diff
    /// path) rather than raw bit patterns.
    pub fn is_coded(&self) -> bool {
        matches!(&self.payload, Payload::SparseCoded { .. } | Payload::DenseCoded { .. })
    }

    /// Human-readable name of the chosen layout.
    pub fn mode_name(&self) -> &'static str {
        match &self.payload {
            Payload::SparseRaw(_) => "sparse-raw",
            Payload::SparseCoded { .. } => "sparse-coded",
            Payload::DenseCoded { .. } => "dense-coded",
            Payload::DenseRaw(_) => "dense-raw",
        }
    }

    /// Size of a full (non-delta) f32 checkpoint of this model.
    pub fn full_bytes(&self) -> u64 {
        4 * self.total as u64
    }

    /// Serialised size — what distribution actually ships per device.
    pub fn encoded_bytes(&self) -> u64 {
        self.to_bytes().len() as u64
    }

    /// Compression ratio of the delta against a full checkpoint.
    pub fn ratio_vs_full(&self) -> f64 {
        self.full_bytes() as f64 / self.encoded_bytes().max(1) as f64
    }

    /// Serialises to the `MDLD` wire frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 4 * self.indices.len());
        out.extend_from_slice(&DELTA_MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&self.base_version.to_le_bytes());
        out.extend_from_slice(&self.new_version.to_le_bytes());
        out.extend_from_slice(&self.base_hash.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        let (mode, wide): (u8, bool) = match &self.payload {
            Payload::SparseRaw(_) => (0, false),
            Payload::SparseCoded { wide, .. } => (1, *wide),
            Payload::DenseCoded { wide, .. } => (2, *wide),
            Payload::DenseRaw(_) => (3, false),
        };
        out.push(mode);
        out.push(wide as u8);
        out.extend_from_slice(&(self.indices.len() as u32).to_le_bytes());
        out.extend_from_slice(&index_bytes(&self.indices));
        match &self.payload {
            Payload::SparseRaw(bits) | Payload::DenseRaw(bits) => {
                for &b in bits {
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
            Payload::SparseCoded { codebook, codes, .. }
            | Payload::DenseCoded { codebook, codes, .. } => {
                out.extend_from_slice(&(codebook.len() as u32).to_le_bytes());
                for &b in codebook {
                    out.extend_from_slice(&b.to_le_bytes());
                }
                out.extend_from_slice(&codes.to_bytes());
            }
        }
        out
    }

    /// Parses an `MDLD` frame.
    ///
    /// # Errors
    ///
    /// [`DeltaError::Malformed`] on a bad magic, truncation, trailing
    /// garbage, or an inconsistent payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeltaError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DeltaError> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or(DeltaError::Malformed("frame shorter than its header claims"))?;
            *pos += n;
            Ok(s)
        };
        let mut pos = 0usize;
        if take(&mut pos, 4)? != DELTA_MAGIC {
            return Err(DeltaError::Malformed("bad magic — not a delta checkpoint"));
        }
        if take(&mut pos, 1)?[0] != WIRE_VERSION {
            return Err(DeltaError::Malformed("unsupported wire version"));
        }
        let u64_at = |pos: &mut usize| -> Result<u64, DeltaError> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().expect("8-byte slice")))
        };
        let base_version = u64_at(&mut pos)?;
        let new_version = u64_at(&mut pos)?;
        let base_hash = u64_at(&mut pos)?;
        let u32_at = |pos: &mut usize| -> Result<u32, DeltaError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4-byte slice")))
        };
        let total = u32_at(&mut pos)?;
        let mode = take(&mut pos, 1)?[0];
        let wide = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return Err(DeltaError::Malformed("wide flag out of range")),
        };
        let n_indices = u32_at(&mut pos)? as usize;
        if n_indices > total as usize {
            return Err(DeltaError::Malformed("more changed indices than parameters"));
        }
        let mut indices = Vec::with_capacity(n_indices);
        let mut prev = 0u32;
        for i in 0..n_indices {
            let gap = read_varint(bytes, &mut pos)?;
            let idx = if i == 0 {
                gap
            } else {
                prev.checked_add(gap).ok_or(DeltaError::Malformed("index gap overflows"))?
            };
            if idx >= total || (i > 0 && idx <= prev) {
                return Err(DeltaError::Malformed("indices not strictly ascending in range"));
            }
            indices.push(idx);
            prev = idx;
        }

        let raw_values = |pos: &mut usize, n: usize| -> Result<Vec<u32>, DeltaError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4-byte slice")));
            }
            Ok(out)
        };
        let coded = |pos: &mut usize| -> Result<(Vec<u32>, HuffmanEncoded), DeltaError> {
            let book_len = u32::from_le_bytes(take(pos, 4)?.try_into().expect("4-byte slice"));
            if book_len as usize > MAX_CODEBOOK {
                return Err(DeltaError::Malformed("codebook exceeds the two-byte code space"));
            }
            let mut codebook = Vec::with_capacity(book_len as usize);
            for _ in 0..book_len {
                codebook.push(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4-byte slice")));
            }
            let (codes, used) = HuffmanEncoded::from_bytes(&bytes[*pos..])
                .ok_or(DeltaError::Malformed("huffman block truncated or inconsistent"))?;
            *pos += used;
            Ok((codebook, codes))
        };

        let payload = match mode {
            0 => Payload::SparseRaw(raw_values(&mut pos, n_indices)?),
            1 => {
                let (codebook, codes) = coded(&mut pos)?;
                Payload::SparseCoded { codebook, codes, wide }
            }
            2 => {
                if n_indices != 0 {
                    return Err(DeltaError::Malformed("dense layout carries an index list"));
                }
                let (codebook, codes) = coded(&mut pos)?;
                Payload::DenseCoded { codebook, codes, wide }
            }
            3 => {
                if n_indices != 0 {
                    return Err(DeltaError::Malformed("dense layout carries an index list"));
                }
                Payload::DenseRaw(raw_values(&mut pos, total as usize)?)
            }
            _ => return Err(DeltaError::Malformed("unknown payload mode")),
        };
        if pos != bytes.len() {
            return Err(DeltaError::Malformed("trailing bytes after payload"));
        }
        Ok(Self { base_version, new_version, base_hash, total, indices, payload })
    }
}

/// A uniform quantization grid over the value range of `params` with
/// `levels` entries — the shared codebook that makes successive versions
/// delta-friendly.
pub fn uniform_codebook(params: &[f32], levels: usize) -> Vec<f32> {
    assert!(levels >= 2, "a grid needs at least two levels");
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &p in params {
        if p.is_finite() {
            lo = lo.min(p);
            hi = hi.max(p);
        }
    }
    if !lo.is_finite() || lo >= hi {
        return vec![if lo.is_finite() { lo } else { 0.0 }];
    }
    let step = (hi - lo) as f64 / (levels - 1) as f64;
    (0..levels).map(|i| (lo as f64 + step * i as f64) as f32).collect()
}

/// Snaps every parameter to its nearest codebook entry (ties to the
/// earlier entry), so small training nudges are absorbed and the delta
/// between two snapped versions touches few, heavily repeated values.
pub fn snap_to_codebook(params: &[f32], codebook: &[f32]) -> Vec<f32> {
    assert!(!codebook.is_empty(), "codebook must be non-empty");
    params
        .iter()
        .map(|&p| {
            if !p.is_finite() {
                return p;
            }
            let mut best = codebook[0];
            let mut best_d = (p - best).abs();
            for &c in &codebook[1..] {
                let d = (p - c).abs();
                if d < best_d {
                    best = c;
                    best_d = d;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn sparse_raw_round_trips_arbitrary_edits() {
        let base: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
        let mut new = base.clone();
        new[3] = f32::NAN;
        new[40] = -0.0;
        new[99] = 1e-42; // denormal
        let d = DeltaCheckpoint::encode(&base, &new, 7, 8);
        assert_eq!(d.changed(), 3);
        assert_eq!(bits(&d.apply(&base).unwrap()), bits(&new));
        assert_eq!((d.base_version(), d.new_version()), (7, 8));
    }

    #[test]
    fn quantized_diff_takes_the_coded_path_and_beats_full() {
        let base: Vec<f32> = (0..2000).map(|i| ((i * 37) % 64) as f32 * 0.01).collect();
        let mut new = base.clone();
        for i in (0..2000).step_by(7) {
            new[i] = ((i * 11) % 64) as f32 * 0.01; // values from the same 64-entry grid
        }
        let d = DeltaCheckpoint::encode(&base, &new, 1, 2);
        assert!(d.is_coded(), "few distinct changed values must pick a coded layout");
        assert!(d.ratio_vs_full() > 3.0, "ratio {}", d.ratio_vs_full());
        assert_eq!(bits(&d.apply(&base).unwrap()), bits(&new));
    }

    #[test]
    fn dense_layout_bounds_the_worst_case() {
        // every position changed, every value distinct → dense-raw floor
        let base: Vec<f32> = (0..500).map(|i| i as f32).collect();
        let new: Vec<f32> = (0..500).map(|i| i as f32 * 1.0001 + 0.5).collect();
        let d = DeltaCheckpoint::encode(&base, &new, 1, 2);
        assert_eq!(d.mode_name(), "dense-raw");
        assert!(d.encoded_bytes() <= d.full_bytes() + 64, "header-only overhead");
        assert_eq!(bits(&d.apply(&base).unwrap()), bits(&new));
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let base = vec![1.0f32, 2.0, 3.0];
        let new = vec![1.0f32, 9.0, 3.0];
        let d = DeltaCheckpoint::encode(&base, &new, 1, 2);
        assert!(matches!(d.apply(&[1.0, 2.5, 3.0]), Err(DeltaError::BaseHashMismatch { .. })));
        assert!(matches!(d.apply(&[1.0, 2.0]), Err(DeltaError::LengthMismatch { .. })));
    }

    #[test]
    fn wire_frame_round_trips_and_rejects_corruption() {
        let base: Vec<f32> = (0..300).map(|i| (i as f32).sin()).collect();
        let grid = uniform_codebook(&base, 32);
        let v1 = snap_to_codebook(&base, &grid);
        let v2: Vec<f32> = v1.iter().map(|&w| if w > 0.0 { w } else { grid[0] }).collect();
        let d = DeltaCheckpoint::encode(&v1, &v2, 4, 5);
        let wire = d.to_bytes();
        assert_eq!(DeltaCheckpoint::from_bytes(&wire).unwrap(), d);
        assert_eq!(wire.len() as u64, d.encoded_bytes());
        assert!(DeltaCheckpoint::from_bytes(&wire[..wire.len() - 1]).is_err());
        assert!(DeltaCheckpoint::from_bytes(b"MDLX").is_err());
        let mut trailing = wire.clone();
        trailing.push(0);
        assert!(DeltaCheckpoint::from_bytes(&trailing).is_err());
    }

    #[test]
    fn snapping_absorbs_small_nudges() {
        let params: Vec<f32> = (0..64).map(|i| i as f32 * 0.25 - 8.0).collect();
        let grid = uniform_codebook(&params, 16);
        let v1 = snap_to_codebook(&params, &grid);
        let nudged: Vec<f32> = v1.iter().map(|&w| w + 1e-4).collect();
        let v2 = snap_to_codebook(&nudged, &grid);
        assert_eq!(bits(&v1), bits(&v2), "sub-step nudges must snap back");
    }
}
