//! Knowledge distillation (§III-B, reference [37]): train a small student
//! to mimic a large teacher's softened predictions.

use mdl_nn::loss::{distillation, softmax_cross_entropy};
use mdl_nn::{Layer, Mode, Optimizer};
use mdl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a distillation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillConfig {
    /// Softmax temperature `T` for both teacher and student.
    pub temperature: f32,
    /// Weight of the soft (teacher) loss; `1 − alpha` weights the hard loss.
    pub alpha: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self { temperature: 3.0, alpha: 0.7, epochs: 20, batch_size: 32 }
    }
}

/// Per-epoch distillation record.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean combined loss.
    pub loss: f64,
}

/// Trains `student` to match `teacher` on inputs `x` with labels `labels`.
///
/// The combined objective is
/// `alpha · KD(student, teacher; T) + (1 − alpha) · CE(student, labels)`.
///
/// # Panics
///
/// Panics if shapes disagree or the training set is empty.
pub fn distill(
    teacher: &mut dyn Layer,
    student: &mut dyn Layer,
    opt: &mut dyn Optimizer,
    x: &Matrix,
    labels: &[usize],
    config: &DistillConfig,
    rng: &mut impl Rng,
) -> Vec<DistillStats> {
    assert_eq!(x.rows(), labels.len(), "one label per example required");
    assert!(!labels.is_empty(), "training set must be non-empty");
    // teacher logits are fixed; compute once
    let teacher_logits = teacher.forward(x, Mode::Eval);

    let n = labels.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let bx = x.select_rows(chunk);
            let bt = teacher_logits.select_rows(chunk);
            let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

            student.zero_grad();
            let logits = student.forward(&bx, Mode::Train);
            let (soft_loss, soft_grad) = distillation(&logits, &bt, config.temperature);
            let (hard_loss, hard_grad) = softmax_cross_entropy(&logits, &by);
            let grad = soft_grad.scale(config.alpha).add(&hard_grad.scale(1.0 - config.alpha));
            let _ = student.backward(&grad);
            opt.step(student);

            total += (config.alpha * soft_loss + (1.0 - config.alpha) * hard_loss) as f64;
            batches += 1;
        }
        history.push(DistillStats { epoch, loss: total / batches.max(1) as f64 });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::synthetic::two_spirals;
    use mdl_nn::{fit_classifier, Activation, Adam, Dense, ParamVector, Sequential, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(dims: &[usize], rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        for (i, w) in dims.windows(2).enumerate() {
            let act = if i + 2 == dims.len() { Activation::Identity } else { Activation::Relu };
            net.push(Dense::new(w[0], w[1], act, rng));
        }
        net
    }

    #[test]
    fn student_approaches_teacher_on_spirals() {
        let mut rng = StdRng::seed_from_u64(280);
        let data = two_spirals(400, 0.05, &mut rng);
        let (train, test) = data.split(0.75, &mut rng);

        // strong teacher
        let mut teacher = mlp(&[2, 48, 48, 2], &mut rng);
        let mut topt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut teacher,
            &mut topt,
            &train.x,
            &train.y,
            &TrainConfig { epochs: 80, batch_size: 32, ..Default::default() },
            &mut rng,
        );
        let teacher_acc = teacher.accuracy(&test.x, &test.y);
        assert!(teacher_acc > 0.9, "teacher too weak: {teacher_acc}");

        // small student distilled from the teacher
        let mut student = mlp(&[2, 24, 2], &mut rng);
        let mut sopt = Adam::new(0.01);
        let _ = distill(
            &mut teacher,
            &mut student,
            &mut sopt,
            &train.x,
            &train.y,
            &DistillConfig { epochs: 200, ..Default::default() },
            &mut rng,
        );
        let student_acc = student.accuracy(&test.x, &test.y);
        assert!(
            student_acc > teacher_acc - 0.15,
            "student {student_acc} should approach teacher {teacher_acc}"
        );
        // and the student really is smaller
        assert!(student.num_params() * 4 < teacher.num_params());
    }

    #[test]
    fn distillation_loss_decreases() {
        let mut rng = StdRng::seed_from_u64(281);
        let data = two_spirals(200, 0.05, &mut rng);
        let mut teacher = mlp(&[2, 24, 2], &mut rng);
        let mut topt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut teacher,
            &mut topt,
            &data.x,
            &data.y,
            &TrainConfig { epochs: 40, ..Default::default() },
            &mut rng,
        );
        let mut student = mlp(&[2, 6, 2], &mut rng);
        let mut sopt = Adam::new(0.01);
        let stats = distill(
            &mut teacher,
            &mut student,
            &mut sopt,
            &data.x,
            &data.y,
            &DistillConfig { epochs: 30, ..Default::default() },
            &mut rng,
        );
        assert!(stats.last().unwrap().loss < stats[0].loss, "{stats:?}");
    }

    #[test]
    fn pure_soft_distillation_works_without_labels_weight() {
        let mut rng = StdRng::seed_from_u64(282);
        let data = two_spirals(200, 0.05, &mut rng);
        let mut teacher = mlp(&[2, 24, 2], &mut rng);
        let mut topt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut teacher,
            &mut topt,
            &data.x,
            &data.y,
            &TrainConfig { epochs: 40, ..Default::default() },
            &mut rng,
        );
        let mut student = mlp(&[2, 8, 2], &mut rng);
        let mut sopt = Adam::new(0.01);
        let _ = distill(
            &mut teacher,
            &mut student,
            &mut sopt,
            &data.x,
            &data.y,
            &DistillConfig { alpha: 1.0, epochs: 60, ..Default::default() },
            &mut rng,
        );
        // student should agree with the teacher on most points
        let t_pred = teacher.predict(&data.x);
        let s_pred = student.predict(&data.x);
        let agree = t_pred.iter().zip(s_pred.iter()).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / t_pred.len() as f64 > 0.8,
            "agreement {}",
            agree as f64 / t_pred.len() as f64
        );
    }
}
