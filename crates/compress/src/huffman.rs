//! Canonical Huffman codec — the final stage of Deep Compression
//! (reference [28]), squeezing the skewed quantization-index stream.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A Huffman code table plus an encoded bitstream.
///
/// # Examples
///
/// ```
/// use mdl_compress::HuffmanEncoded;
///
/// let data = b"aaaaaaaabbbc".to_vec();
/// let encoded = HuffmanEncoded::encode(&data);
/// assert_eq!(encoded.decode(), data);
/// assert!(encoded.storage_bytes() < data.len() as u64 + 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HuffmanEncoded {
    /// Canonical code lengths per symbol (0 = symbol absent).
    code_lengths: Vec<u8>,
    /// The packed bitstream, MSB first within each byte.
    bits: Vec<u8>,
    /// Number of encoded symbols.
    len: usize,
}

#[derive(PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    /// tiebreaker for determinism
    order: usize,
    node: usize,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap: reverse on weight, then order
        other.weight.cmp(&self.weight).then(other.order.cmp(&self.order))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes Huffman code lengths from symbol frequencies.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let symbols: Vec<usize> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, _)| s).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match symbols.len() {
        0 => return lengths,
        1 => {
            lengths[symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // standard two-queue-equivalent: binary heap over tree nodes
    struct Tree {
        children: Vec<Option<(usize, usize)>>,
        symbol: Vec<Option<usize>>,
    }
    let mut tree = Tree { children: Vec::new(), symbol: Vec::new() };
    let mut heap = BinaryHeap::new();
    let mut order = 0usize;
    for &s in &symbols {
        tree.children.push(None);
        tree.symbol.push(Some(s));
        heap.push(HeapNode { weight: freqs[s], order, node: tree.symbol.len() - 1 });
        order += 1;
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("heap non-empty");
        let b = heap.pop().expect("heap non-empty");
        tree.children.push(Some((a.node, b.node)));
        tree.symbol.push(None);
        heap.push(HeapNode { weight: a.weight + b.weight, order, node: tree.symbol.len() - 1 });
        order += 1;
    }
    // DFS to collect depths
    let root = heap.pop().expect("root").node;
    let mut stack = vec![(root, 0u8)];
    while let Some((n, depth)) = stack.pop() {
        match tree.children[n] {
            Some((l, r)) => {
                stack.push((l, depth + 1));
                stack.push((r, depth + 1));
            }
            None => {
                let s = tree.symbol[n].expect("leaf symbol");
                lengths[s] = depth.max(1);
            }
        }
    }
    lengths
}

/// Assigns canonical codes (symbol-ordered within each length).
fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let max_len = lengths.iter().cloned().max().unwrap_or(0);
    let mut codes = vec![(0u32, 0u8); lengths.len()];
    let mut code = 0u32;
    for len in 1..=max_len {
        for (s, &l) in lengths.iter().enumerate() {
            if l == len {
                codes[s] = (code, len);
                code += 1;
            }
        }
        code <<= 1;
    }
    codes
}

impl HuffmanEncoded {
    /// Encodes a symbol stream (symbols must be `u8`).
    pub fn encode(symbols: &[u8]) -> Self {
        let mut freqs = vec![0u64; 256];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);

        let mut bits = Vec::new();
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &s in symbols {
            let (code, len) = codes[s as usize];
            acc = (acc << len) | code as u64;
            nbits += len as u32;
            while nbits >= 8 {
                nbits -= 8;
                bits.push(((acc >> nbits) & 0xFF) as u8);
            }
        }
        if nbits > 0 {
            bits.push(((acc << (8 - nbits)) & 0xFF) as u8);
        }

        Self { code_lengths: lengths, bits, len: symbols.len() }
    }

    /// Decodes the full symbol stream.
    ///
    /// # Panics
    ///
    /// Panics if the bitstream is internally inconsistent (possible only
    /// for frames built by hand or truncated in transit — see
    /// [`HuffmanEncoded::try_decode`] for the checked variant).
    pub fn decode(&self) -> Vec<u8> {
        self.try_decode().expect("huffman bitstream consistent with its code table")
    }

    /// Bounds-checked decode: `None` when the bitstream runs out before
    /// `len` symbols were produced or a code exceeds the table's depth.
    pub fn try_decode(&self) -> Option<Vec<u8>> {
        if self.len == 0 {
            return Some(Vec::new());
        }
        let codes = canonical_codes(&self.code_lengths);
        // build a simple (code,len) → symbol map
        let mut by_len: Vec<Vec<(u32, u8)>> = vec![Vec::new(); 33];
        for (s, &(code, len)) in codes.iter().enumerate() {
            if len > 0 {
                by_len[len as usize].push((code, s as u8));
            }
        }
        for v in &mut by_len {
            v.sort_unstable();
        }

        let mut out = Vec::with_capacity(self.len);
        let mut code = 0u32;
        let mut len = 0u8;
        let mut bit_pos = 0usize;
        while out.len() < self.len {
            let byte = *self.bits.get(bit_pos / 8)?;
            let bit = (byte >> (7 - (bit_pos % 8))) & 1;
            bit_pos += 1;
            code = (code << 1) | bit as u32;
            len += 1;
            if len > 32 {
                return None;
            }
            if let Ok(found) = by_len[len as usize].binary_search_by_key(&code, |e| e.0) {
                out.push(by_len[len as usize][found].1);
                code = 0;
                len = 0;
            }
        }
        Some(out)
    }

    /// Serialises the codec to a flat, self-delimiting frame (code-length
    /// table, symbol count, packed bitstream) so callers can embed a
    /// Huffman block inside their own wire formats — the delta-checkpoint
    /// encoding in [`crate::delta`] does exactly this.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.code_lengths.len() + 8 + self.bits.len());
        out.extend_from_slice(&(self.code_lengths.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.code_lengths);
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Parses a frame written by [`HuffmanEncoded::to_bytes`], returning
    /// the codec and the number of bytes consumed. `None` on truncation
    /// or an inconsistent bitstream.
    pub fn from_bytes(bytes: &[u8]) -> Option<(Self, usize)> {
        let table_len = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?) as usize;
        let mut pos = 2;
        let code_lengths = bytes.get(pos..pos + table_len)?.to_vec();
        pos += table_len;
        let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let bits_len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let bits = bytes.get(pos..pos + bits_len)?.to_vec();
        pos += bits_len;
        let decoded = Self { code_lengths, bits, len };
        decoded.try_decode()?;
        Some((decoded, pos))
    }

    /// Encoded size in bytes (bitstream + one length byte per symbol slot
    /// actually used, the canonical-table representation).
    pub fn storage_bytes(&self) -> u64 {
        let table = self.code_lengths.iter().filter(|&&l| l > 0).count().max(1);
        self.bits.len() as u64 + table as u64 + 2
    }

    /// Number of encoded symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no symbols were encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let data = b"abracadabra".to_vec();
        let enc = HuffmanEncoded::encode(&data);
        assert_eq!(enc.decode(), data);
    }

    #[test]
    fn round_trip_single_symbol() {
        let data = vec![7u8; 100];
        let enc = HuffmanEncoded::encode(&data);
        assert_eq!(enc.decode(), data);
        // 100 symbols at 1 bit = 13 bytes of stream
        assert!(enc.storage_bytes() < 20);
    }

    #[test]
    fn round_trip_empty() {
        let enc = HuffmanEncoded::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.decode(), Vec::<u8>::new());
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 90% zeros (like a pruned-and-quantized index stream)
        let mut data = vec![0u8; 900];
        data.extend((0..100).map(|i| (i % 15 + 1) as u8));
        let enc = HuffmanEncoded::encode(&data);
        assert_eq!(enc.decode(), data);
        assert!(
            enc.storage_bytes() < data.len() as u64 / 3,
            "skewed stream should compress ≥3×: {} vs {}",
            enc.storage_bytes(),
            data.len()
        );
    }

    #[test]
    fn uniform_distribution_compresses_little() {
        let data: Vec<u8> = (0..1024).map(|i| (i % 256) as u8).collect();
        let enc = HuffmanEncoded::encode(&data);
        assert_eq!(enc.decode(), data);
        assert!(enc.storage_bytes() >= data.len() as u64, "uniform bytes are incompressible");
    }

    #[test]
    fn prefix_property_holds() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let enc = HuffmanEncoded::encode(&data);
        let codes = canonical_codes(&enc.code_lengths);
        let used: Vec<(u32, u8)> = codes.iter().cloned().filter(|&(_, l)| l > 0).collect();
        for (i, &(ca, la)) in used.iter().enumerate() {
            for &(cb, lb) in used.iter().skip(i + 1) {
                let (short, slen, long, llen) =
                    if la <= lb { (ca, la, cb, lb) } else { (cb, lb, ca, la) };
                if slen == llen {
                    assert_ne!(short, long, "duplicate code");
                } else {
                    assert_ne!(
                        long >> (llen - slen),
                        short,
                        "code {short:0slen$b} is a prefix of {long:0llen$b}",
                        slen = slen as usize,
                        llen = llen as usize
                    );
                }
            }
        }
    }

    #[test]
    fn expected_length_beats_fixed_width_on_skew() {
        let mut data = Vec::new();
        for (sym, count) in [(0u8, 800), (1, 100), (2, 60), (3, 40)] {
            data.extend(std::iter::repeat_n(sym, count));
        }
        let enc = HuffmanEncoded::encode(&data);
        let fixed_bits = data.len() * 2; // 4 symbols = 2 bits fixed
        let huff_bits = enc.bits.len() * 8;
        assert!(huff_bits < fixed_bits, "{huff_bits} vs {fixed_bits}");
        assert_eq!(enc.decode(), data);
    }
}
