//! # mdl-compress
//!
//! Model compression and acceleration (§III-B of the paper), implementing
//! every family the survey covers:
//!
//! - **parameter pruning & sharing**: magnitude [`prune`]-ing with CSR
//!   [`sparse`] storage, k-means codebook / uniform [`quantize`]-ation, and
//!   the bit-exact [`huffman`] codec — composed into the Deep Compression
//!   [`pipeline`] (prune → quantize → Huffman, reference [28]);
//! - **structural matrices**: FFT-backed block-[`circulant`] layers
//!   (CirCNN, reference [14]);
//! - **low-rank factorization** of dense layers via SVD ([`lowrank`],
//!   reference [36]);
//! - **model distillation** with temperature-softened targets ([`distill`],
//!   reference [37]).
//!
//! # Examples
//!
//! ```
//! use mdl_compress::pipeline::{deep_compress, DeepCompressionConfig};
//! use mdl_nn::{Sequential, Dense, Activation};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(32, 16, Activation::Relu, &mut rng));
//! net.push(Dense::new(16, 4, Activation::Identity, &mut rng));
//! let compressed = deep_compress(&mut net, None,
//!     &DeepCompressionConfig { sparsity: 0.8, quant_bits: 4, finetune: None, prune_steps: 1 },
//!     &mut rng);
//! assert!(compressed.report.ratio() > 4.0);
//! ```

#![warn(missing_docs)]

pub mod circulant;
pub mod delta;
pub mod distill;
pub mod huffman;
pub mod lowrank;
pub mod pipeline;
pub mod prune;
pub mod quantize;
pub mod sparse;

pub use circulant::BlockCirculant;
pub use delta::{param_hash, snap_to_codebook, uniform_codebook, DeltaCheckpoint, DeltaError};
pub use distill::{distill, DistillConfig, DistillStats};
pub use huffman::HuffmanEncoded;
pub use lowrank::{factorize_dense, factorize_network, rank_for_energy, Factorized};
pub use pipeline::{deep_compress, CompressedModel, CompressionReport, DeepCompressionConfig};
pub use prune::{achieved_sparsity, apply_masks, prune_matrix, prune_network};
pub use quantize::QuantizedMatrix;
pub use sparse::CsrMatrix;

#[cfg(test)]
mod proptests {
    use crate::huffman::HuffmanEncoded;
    use crate::prune::prune_matrix;
    use crate::quantize::QuantizedMatrix;
    use crate::sparse::CsrMatrix;
    use mdl_tensor::Matrix;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn huffman_round_trips_any_stream(data in prop::collection::vec(any::<u8>(), 0..512)) {
            let enc = HuffmanEncoded::encode(&data);
            prop_assert_eq!(enc.decode(), data);
        }

        #[test]
        fn csr_round_trips(values in prop::collection::vec(-5f32..5.0, 12)) {
            // randomly zero some entries through rounding
            let m = Matrix::from_vec(3, 4, values.iter().map(|v| if v.abs() < 2.0 { 0.0 } else { *v }).collect());
            let csr = CsrMatrix::from_dense(&m);
            prop_assert_eq!(csr.to_dense(), m);
        }

        #[test]
        fn uniform_quantization_error_bounded(
            values in prop::collection::vec(-10f32..10.0, 16),
            bits in 2u32..=8,
        ) {
            let m = Matrix::from_vec(4, 4, values);
            let q = QuantizedMatrix::uniform(&m, bits);
            let lo = m.as_slice().iter().cloned().fold(f32::MAX, f32::min);
            let hi = m.as_slice().iter().cloned().fold(f32::MIN, f32::max);
            let step = (hi - lo) / ((1u32 << bits) - 1) as f32;
            prop_assert!(q.max_error(&m) <= step / 2.0 + 1e-5);
        }

        #[test]
        fn pruning_sparsity_within_one_element(
            values in prop::collection::vec(-3f32..3.0, 25),
            sparsity_pct in 0u32..95,
        ) {
            let sparsity = sparsity_pct as f64 / 100.0;
            let mut m = Matrix::from_vec(5, 5, values);
            let mask = prune_matrix(&mut m, sparsity);
            let zeros = mask.as_slice().iter().filter(|&&v| v == 0.0).count();
            let expected = (25.0 * sparsity).floor() as usize;
            prop_assert_eq!(zeros, expected);
        }
    }
}
