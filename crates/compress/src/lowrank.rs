//! Low-rank factorization of dense layers (§III-B, reference [36]):
//! replace `W: m × n` by `A · B` with `A: m × r`, `B: r × n`.

use mdl_nn::{Activation, Dense, Sequential};
use mdl_tensor::linalg::svd;
use mdl_tensor::Matrix;

/// Result of factorizing one dense layer.
#[derive(Debug)]
pub struct Factorized {
    /// First factor as a bias-free linear layer (`in × rank`).
    pub first: Dense,
    /// Second factor carrying the original bias and activation (`rank × out`).
    pub second: Dense,
    /// Rank used.
    pub rank: usize,
    /// Parameters before / after.
    pub params_before: usize,
    /// Parameters after factorization.
    pub params_after: usize,
}

/// Factorizes a dense layer at the given rank via truncated SVD.
///
/// The first factor absorbs `U·√Σ`, the second `√Σ·Vᵀ`, which balances the
/// factor magnitudes for subsequent fine-tuning.
///
/// # Panics
///
/// Panics if `rank` is zero or exceeds `min(in, out)`.
pub fn factorize_dense(layer: &Dense, rank: usize) -> Factorized {
    let w = layer.weight();
    let (m, n) = w.shape();
    assert!(rank >= 1 && rank <= m.min(n), "rank must be in 1..=min(in, out)");
    let d = svd(w).truncate(rank);

    let mut a = d.u.clone(); // m × r
    let mut b = d.v.transpose(); // r × n
    for j in 0..rank {
        let s = d.s[j].max(0.0).sqrt();
        for i in 0..m {
            a[(i, j)] *= s;
        }
        for c in 0..n {
            b[(j, c)] *= s;
        }
    }

    let first = Dense::from_parts(a, Matrix::zeros(1, rank), Activation::Identity);
    let second = Dense::from_parts(b, layer.bias().clone(), layer.activation());
    Factorized {
        first,
        second,
        rank,
        params_before: m * n + n,
        params_after: m * rank + rank * n + n,
    }
}

/// Smallest rank capturing at least `energy` of the squared spectrum.
pub fn rank_for_energy(layer: &Dense, energy: f64) -> usize {
    let d = svd(layer.weight());
    let r_max = d.s.len();
    for r in 1..=r_max {
        if d.energy_captured(r) >= energy {
            return r;
        }
    }
    r_max
}

/// Replaces every dense layer of `net` with its rank-`rank_of(layer)`
/// factorization, returning the rebuilt network.
pub fn factorize_network(
    net: &mut Sequential,
    mut rank_of: impl FnMut(&Dense) -> usize,
) -> Sequential {
    let mut out = Sequential::new();
    for layer in net.layers_mut() {
        match layer.as_any_mut().downcast_mut::<Dense>() {
            Some(dense) => {
                let f = factorize_dense(dense, rank_of(dense));
                out.push(f.first);
                out.push(f.second);
            }
            None => {
                // non-dense layers are structural; factorization only
                // targets dense weights, so this pass rejects mixed nets
                panic!("factorize_network only supports all-dense networks");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{Layer, Mode};
    use mdl_tensor::linalg::outer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_rank_factorization_is_exact() {
        let mut rng = StdRng::seed_from_u64(270);
        let mut layer = Dense::new(6, 4, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(3, 6, |r, c| ((r + c) as f32 * 0.3).sin());
        let y_full = layer.forward(&x, Mode::Eval);
        let f = factorize_dense(&layer, 4);
        let mut net = Sequential::new();
        net.push(f.first);
        net.push(f.second);
        let y_fact = net.forward(&x, Mode::Eval);
        assert!(y_fact.approx_eq(&y_full, 1e-3), "full-rank must match");
    }

    #[test]
    fn low_rank_matrix_factorizes_exactly_at_its_rank() {
        let u = [1.0, -0.5, 2.0, 0.3, -1.2];
        let v = [0.8, 1.5, -0.7];
        let w = outer(&u, &v); // rank 1
        let layer = Dense::from_parts(w, Matrix::zeros(1, 3), Activation::Identity);
        let f = factorize_dense(&layer, 1);
        assert_eq!(f.rank, 1);
        assert!(f.params_after < f.params_before);
        let mut net = Sequential::new();
        let x = Matrix::identity(5);
        net.push(f.first);
        net.push(f.second);
        let rec = net.forward(&x, Mode::Eval);
        assert!(rec.approx_eq(layer.weight(), 1e-3));
    }

    #[test]
    fn rank_for_energy_finds_intrinsic_rank() {
        let u = [1.0f32, 2.0, 3.0, 4.0];
        let v = [1.0f32, -1.0, 0.5];
        let w = outer(&u, &v);
        let layer = Dense::from_parts(w, Matrix::zeros(1, 3), Activation::Identity);
        assert_eq!(rank_for_energy(&layer, 0.999), 1);
    }

    #[test]
    fn parameter_count_shrinks_when_rank_is_small() {
        let mut rng = StdRng::seed_from_u64(271);
        let layer = Dense::new(64, 64, Activation::Relu, &mut rng);
        let f = factorize_dense(&layer, 8);
        // 64·64 = 4096 vs 64·8 + 8·64 = 1024
        assert!(f.params_after * 3 < f.params_before, "{} vs {}", f.params_after, f.params_before);
    }

    #[test]
    fn factorize_network_doubles_layer_count() {
        let mut rng = StdRng::seed_from_u64(272);
        let mut net = Sequential::new();
        net.push(Dense::new(10, 8, Activation::Relu, &mut rng));
        net.push(Dense::new(8, 4, Activation::Identity, &mut rng));
        let fact = factorize_network(&mut net, |_| 2);
        assert_eq!(fact.len(), 4);
    }
}
