//! The three-stage Deep Compression pipeline (Han et al., reference [28]):
//! **prune → quantize (weight sharing) → Huffman-code**, with optional
//! masked fine-tuning between stages.

use crate::huffman::HuffmanEncoded;
use crate::prune::{apply_masks, prune_network};
use crate::quantize::QuantizedMatrix;
use mdl_nn::{fit_classifier, Activation, Adam, Dense, QuantizedModel, Sequential, TrainConfig};
use mdl_tensor::quant::{quantize_value, symmetric_scale};
use mdl_tensor::{Int8Matrix, Matrix};
use rand::rngs::StdRng;

/// Configuration of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepCompressionConfig {
    /// Target weight sparsity per dense layer.
    pub sparsity: f64,
    /// Codebook bits for weight sharing.
    pub quant_bits: u32,
    /// Optional masked fine-tuning after each pruning step:
    /// `(epochs, learning_rate)`.
    pub finetune: Option<(usize, f32)>,
    /// Number of prune→retrain iterations ramping up to the target sparsity
    /// (Deep Compression prunes iteratively; `1` = one-shot).
    pub prune_steps: usize,
}

impl Default for DeepCompressionConfig {
    fn default() -> Self {
        Self { sparsity: 0.9, quant_bits: 4, finetune: Some((5, 0.01)), prune_steps: 3 }
    }
}

/// One compressed dense layer.
#[derive(Debug, Clone)]
pub struct CompressedDense {
    /// Quantized pruned weights.
    pub weights: QuantizedMatrix,
    /// Huffman-coded quantization indices.
    pub encoded: HuffmanEncoded,
    /// Bias kept in fp32 (negligible size).
    pub bias: Matrix,
    /// The layer's activation.
    pub activation: Activation,
}

/// A fully compressed model plus its size accounting.
#[derive(Debug)]
pub struct CompressedModel {
    /// Compressed layers, front to back.
    pub layers: Vec<CompressedDense>,
    /// Size breakdown.
    pub report: CompressionReport,
}

/// Stage-by-stage size accounting of one compression run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompressionReport {
    /// fp32 bytes of the original dense weights + biases.
    pub original_bytes: u64,
    /// Bytes if the pruned model were stored in CSR.
    pub pruned_csr_bytes: u64,
    /// Bytes after codebook quantization (packed indices + codebooks).
    pub quantized_bytes: u64,
    /// Final bytes after Huffman coding (stream + tables + codebooks + biases).
    pub final_bytes: u64,
    /// Achieved mean weight sparsity.
    pub sparsity: f64,
}

impl CompressionReport {
    /// End-to-end compression ratio `original / final`.
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.final_bytes.max(1) as f64
    }
}

/// Runs prune → (fine-tune) → quantize → Huffman on an all-dense network.
///
/// `train` supplies `(x, labels)` for masked fine-tuning; pass `finetune:
/// None` to skip retraining (one-shot compression).
///
/// # Panics
///
/// Panics if the network contains non-dense layers.
pub fn deep_compress(
    net: &mut Sequential,
    train: Option<(&Matrix, &[usize])>,
    config: &DeepCompressionConfig,
    rng: &mut StdRng,
) -> CompressedModel {
    // stage 0: measure the original
    let mut original_bytes = 0u64;
    for info in net.layer_infos() {
        assert_eq!(info.kind, "dense", "deep_compress expects an all-dense network");
        original_bytes += 4 * info.params as u64;
    }

    // stage 1: iterative prune + masked fine-tune, ramping sparsity
    let steps = config.prune_steps.max(1);
    for step in 1..=steps {
        let target = config.sparsity * step as f64 / steps as f64;
        let masks = prune_network(net, target);
        if let (Some((x, y)), Some((epochs, lr))) = (train, config.finetune) {
            let mut opt = Adam::new(lr);
            for _ in 0..epochs {
                let _ = fit_classifier(
                    net,
                    &mut opt,
                    x,
                    y,
                    &TrainConfig { epochs: 1, batch_size: 32, ..Default::default() },
                    rng,
                );
                apply_masks(net, &masks);
            }
        }
    }

    // stages 2 + 3 per layer
    let mut layers = Vec::new();
    let mut pruned_csr_bytes = 0u64;
    let mut quantized_bytes = 0u64;
    let mut final_bytes = 0u64;
    let mut zero_count = 0usize;
    let mut weight_count = 0usize;
    for layer in net.layers_mut() {
        let dense =
            layer.as_any_mut().downcast_mut::<Dense>().expect("all-dense network (checked above)");
        let w = dense.weight().clone();
        zero_count += w.as_slice().iter().filter(|&&v| v == 0.0).count();
        weight_count += w.len();

        pruned_csr_bytes += crate::sparse::CsrMatrix::from_dense(&w).storage_bytes();
        let q = QuantizedMatrix::kmeans(&w, config.quant_bits, rng);
        quantized_bytes += q.storage_bytes() + 4 * dense.bias().len() as u64;
        let encoded = HuffmanEncoded::encode(q.indices());
        final_bytes +=
            encoded.storage_bytes() + 4 * q.codebook().len() as u64 + 4 * dense.bias().len() as u64;

        layers.push(CompressedDense {
            weights: q,
            encoded,
            bias: dense.bias().clone(),
            activation: dense.activation(),
        });
    }

    CompressedModel {
        layers,
        report: CompressionReport {
            original_bytes,
            pruned_csr_bytes,
            quantized_bytes,
            final_bytes,
            sparsity: zero_count as f64 / weight_count.max(1) as f64,
        },
    }
}

impl CompressedModel {
    /// Reconstructs a runnable network from the compressed representation
    /// (verifying the Huffman stream decodes to the stored indices).
    pub fn decompress(&self) -> Sequential {
        let mut net = Sequential::new();
        for layer in &self.layers {
            debug_assert_eq!(
                layer.encoded.decode(),
                layer.weights.indices(),
                "Huffman stream corrupt"
            );
            let w = layer.weights.dequantize();
            net.push(Dense::from_parts(w, layer.bias.clone(), layer.activation));
        }
        net
    }

    /// Lowers the compressed artifact onto the int8 execution path
    /// directly: each layer's codebook levels requantize per output
    /// channel into an [`Int8Matrix`], so the serving side never
    /// materializes (or executes) an f32 weight matrix. This is the
    /// artifact → [`QuantizedModel`] bridge `mdl-serve` hot-swaps in.
    pub fn to_quantized(&self) -> QuantizedModel {
        let parts = self
            .layers
            .iter()
            .map(|layer| {
                debug_assert_eq!(
                    layer.encoded.decode(),
                    layer.weights.indices(),
                    "Huffman stream corrupt"
                );
                let (rows, cols) = layer.weights.shape();
                let codebook = layer.weights.codebook();
                let idx = layer.weights.indices();
                let mut scales = vec![1.0f32; cols];
                for (j, scale) in scales.iter_mut().enumerate() {
                    let mut max_abs = 0.0f32;
                    for i in 0..rows {
                        max_abs = max_abs.max(codebook[idx[i * cols + j] as usize].abs());
                    }
                    *scale = symmetric_scale(max_abs);
                }
                // channel-major bytes, straight from codebook levels
                let mut data = vec![0i8; rows * cols];
                for (j, &scale) in scales.iter().enumerate() {
                    for i in 0..rows {
                        data[j * rows + i] =
                            quantize_value(codebook[idx[i * cols + j] as usize], scale);
                    }
                }
                let w = Int8Matrix::from_channel_rows(cols, rows, data, scales);
                (w, layer.bias.as_slice().to_vec(), layer.activation)
            })
            .collect();
        QuantizedModel::from_dense_parts(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::synthetic::synthetic_digits;
    use mdl_nn::{Activation, Dense};
    use rand::SeedableRng;

    fn trained_digits_net(rng: &mut StdRng) -> (Sequential, mdl_data::Dataset, mdl_data::Dataset) {
        let data = synthetic_digits(600, 0.08, rng);
        let (train, test) = data.split(0.8, rng);
        let mut net = Sequential::new();
        net.push(Dense::new(64, 128, Activation::Relu, rng));
        net.push(Dense::new(128, 10, Activation::Identity, rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &train.x,
            &train.y,
            &TrainConfig { epochs: 25, ..Default::default() },
            rng,
        );
        (net, train, test)
    }

    #[test]
    fn pipeline_achieves_order_of_magnitude_compression() {
        let mut rng = StdRng::seed_from_u64(300);
        let (mut net, train, test) = trained_digits_net(&mut rng);
        let base_acc = net.accuracy(&test.x, &test.y);
        assert!(base_acc > 0.85, "base accuracy {base_acc}");

        let compressed = deep_compress(
            &mut net,
            Some((&train.x, &train.y)),
            &DeepCompressionConfig {
                sparsity: 0.8,
                quant_bits: 4,
                finetune: Some((4, 0.01)),
                prune_steps: 2,
            },
            &mut rng,
        );
        let ratio = compressed.report.ratio();
        assert!(ratio > 10.0, "compression ratio {ratio}");

        let restored = compressed.decompress();
        let acc = restored.accuracy(&test.x, &test.y);
        assert!(
            acc > base_acc - 0.1,
            "compressed accuracy {acc} vs base {base_acc} (ratio {ratio:.1}x)"
        );
    }

    #[test]
    fn stage_sizes_are_monotone() {
        let mut rng = StdRng::seed_from_u64(301);
        let (mut net, train, _) = trained_digits_net(&mut rng);
        let c = deep_compress(
            &mut net,
            Some((&train.x, &train.y)),
            &DeepCompressionConfig::default(),
            &mut rng,
        );
        let r = c.report;
        assert!(r.original_bytes > r.pruned_csr_bytes, "{r:?}");
        assert!(r.pruned_csr_bytes > r.quantized_bytes, "{r:?}");
        assert!(r.quantized_bytes >= r.final_bytes, "{r:?}");
        assert!((r.sparsity - 0.9).abs() < 0.02, "{r:?}");
    }

    #[test]
    fn one_shot_compression_without_finetune_works() {
        let mut rng = StdRng::seed_from_u64(302);
        let (mut net, _, test) = trained_digits_net(&mut rng);
        let c = deep_compress(
            &mut net,
            None,
            &DeepCompressionConfig { sparsity: 0.5, quant_bits: 5, finetune: None, prune_steps: 1 },
            &mut rng,
        );
        let restored = c.decompress();
        let acc = restored.accuracy(&test.x, &test.y);
        assert!(acc > 0.6, "mild one-shot compression keeps accuracy: {acc}");
    }

    #[test]
    fn quantized_bridge_tracks_the_decompressed_model() {
        let mut rng = StdRng::seed_from_u64(304);
        let (mut net, _, test) = trained_digits_net(&mut rng);
        let c = deep_compress(
            &mut net,
            None,
            &DeepCompressionConfig { sparsity: 0.5, quant_bits: 6, finetune: None, prune_steps: 1 },
            &mut rng,
        );
        let f32_path = c.decompress();
        let int8_path = c.to_quantized();
        let acc_f32 = f32_path.accuracy(&test.x, &test.y);
        let acc_int8 = int8_path.accuracy(&test.x, &test.y);
        assert!(
            (acc_f32 - acc_int8).abs() < 0.05,
            "int8 artifact path {acc_int8} should track dequantized path {acc_f32}"
        );
        assert!(
            int8_path.storage_bytes() < c.report.original_bytes as usize / 3,
            "int8 artifact must stay far below the f32 original"
        );
    }

    #[test]
    fn finetuning_recovers_accuracy_lost_to_aggressive_pruning() {
        let mut rng = StdRng::seed_from_u64(303);
        let (net, train, test) = trained_digits_net(&mut rng);

        // clone the trained network parameters into two copies
        use mdl_nn::ParamVector;
        let mut a = net;
        let params = a.param_vector();
        let rebuild = |params: &[f32], rng: &mut StdRng| {
            let mut n = Sequential::new();
            n.push(Dense::new(64, 128, Activation::Relu, rng));
            n.push(Dense::new(128, 10, Activation::Identity, rng));
            n.set_param_vector(params);
            n
        };
        let mut b = rebuild(&params, &mut rng);

        let cfg_no_ft =
            DeepCompressionConfig { sparsity: 0.9, quant_bits: 5, finetune: None, prune_steps: 1 };
        let cfg_ft = DeepCompressionConfig {
            sparsity: 0.9,
            quant_bits: 5,
            finetune: Some((5, 0.01)),
            prune_steps: 3,
        };
        let no_ft = deep_compress(&mut a, Some((&train.x, &train.y)), &cfg_no_ft, &mut rng);
        let ft = deep_compress(&mut b, Some((&train.x, &train.y)), &cfg_ft, &mut rng);
        let acc_no_ft = no_ft.decompress().accuracy(&test.x, &test.y);
        let acc_ft = ft.decompress().accuracy(&test.x, &test.y);
        assert!(
            acc_ft > acc_no_ft + 0.05,
            "fine-tuning should recover accuracy: {acc_ft} vs {acc_no_ft}"
        );
    }
}
