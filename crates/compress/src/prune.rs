//! Magnitude pruning (Han et al., paper references [13], [28]): "learning
//! only the important connections".

use mdl_nn::{Dense, Layer, Sequential};
use mdl_tensor::Matrix;

/// Zeroes the smallest-magnitude `sparsity` fraction of entries of a matrix.
///
/// Returns the binary keep-mask.
///
/// # Examples
///
/// ```
/// use mdl_compress::prune_matrix;
/// use mdl_tensor::Matrix;
///
/// let mut w = Matrix::from_rows(&[&[0.1, -3.0], &[2.0, 0.05]]);
/// let mask = prune_matrix(&mut w, 0.5);
/// assert_eq!(w[(0, 0)], 0.0); // small weights dropped
/// assert_eq!(w[(0, 1)], -3.0); // large ones survive
/// assert_eq!(mask.sum(), 2.0);
/// ```
///
/// # Panics
///
/// Panics unless `0 <= sparsity < 1`.
pub fn prune_matrix(weights: &mut Matrix, sparsity: f64) -> Matrix {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
    let n = weights.len();
    let drop = ((n as f64) * sparsity).floor() as usize;
    let mut mask = Matrix::ones(weights.rows(), weights.cols());
    if drop == 0 {
        return mask;
    }
    let mut magnitudes: Vec<(f32, usize)> =
        weights.as_slice().iter().enumerate().map(|(i, &v)| (v.abs(), i)).collect();
    magnitudes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    for &(_, i) in magnitudes.iter().take(drop) {
        weights.as_mut_slice()[i] = 0.0;
        mask.as_mut_slice()[i] = 0.0;
    }
    mask
}

/// The pruning threshold below which magnitudes were dropped, given the mask
/// actually applied — diagnostic only.
pub fn achieved_sparsity(weights: &Matrix) -> f64 {
    let zeros = weights.as_slice().iter().filter(|&&v| v == 0.0).count();
    zeros as f64 / weights.len().max(1) as f64
}

/// Prunes every [`Dense`] layer of a [`Sequential`] to the target sparsity,
/// returning per-layer keep-masks (biases are never pruned).
pub fn prune_network(net: &mut Sequential, sparsity: f64) -> Vec<Matrix> {
    let mut masks = Vec::new();
    for layer in net.layers_mut() {
        if let Some(dense) = layer_as_dense(layer.as_mut()) {
            masks.push(prune_matrix(dense.weight_mut(), sparsity));
        }
    }
    masks
}

/// Re-applies keep-masks after a fine-tuning step so pruned weights stay
/// zero (the retraining loop of Deep Compression).
///
/// # Panics
///
/// Panics if the number of masks does not match the number of dense layers.
pub fn apply_masks(net: &mut Sequential, masks: &[Matrix]) {
    let mut it = masks.iter();
    for layer in net.layers_mut() {
        if let Some(dense) = layer_as_dense(layer.as_mut()) {
            let mask = it.next().expect("one mask per dense layer");
            let masked = dense.weight().hadamard(mask);
            *dense.weight_mut() = masked;
        }
    }
    assert!(it.next().is_none(), "more masks than dense layers");
}

/// Downcast helper: `Layer` objects that are dense layers.
pub(crate) fn layer_as_dense(layer: &mut dyn Layer) -> Option<&mut Dense> {
    layer.as_any_mut().downcast_mut::<Dense>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{Activation, Mode, ParamVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prune_matrix_hits_target() {
        let mut w = Matrix::from_fn(10, 10, |r, c| ((r * 10 + c) as f32 - 50.0) / 10.0);
        let mask = prune_matrix(&mut w, 0.7);
        assert!((achieved_sparsity(&w) - 0.7).abs() < 0.02);
        assert_eq!(mask.sum() as usize, 30);
        // the surviving weights are the largest in magnitude
        let min_kept =
            w.as_slice().iter().filter(|&&v| v != 0.0).map(|v| v.abs()).fold(f32::MAX, f32::min);
        assert!(min_kept >= 2.0, "min kept magnitude {min_kept}");
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let mut w = Matrix::ones(3, 3);
        let mask = prune_matrix(&mut w, 0.0);
        assert_eq!(w.sum(), 9.0);
        assert_eq!(mask.sum(), 9.0);
    }

    #[test]
    fn prune_network_prunes_dense_layers_only() {
        let mut rng = StdRng::seed_from_u64(250);
        let mut net = Sequential::new();
        net.push(Dense::new(8, 8, Activation::Relu, &mut rng));
        net.push(mdl_nn::Dropout::new(8, 0.1, 1));
        net.push(Dense::new(8, 4, Activation::Identity, &mut rng));
        let masks = prune_network(&mut net, 0.5);
        assert_eq!(masks.len(), 2);
        let mut zeros = 0usize;
        let mut total = 0usize;
        net.visit_params(&mut |v, _| {
            if v.rows() > 1 {
                zeros += v.as_slice().iter().filter(|&&x| x == 0.0).count();
                total += v.len();
            }
        });
        assert!((zeros as f64 / total as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn masks_keep_pruned_weights_zero_after_update() {
        let mut rng = StdRng::seed_from_u64(251);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, Activation::Identity, &mut rng));
        let masks = prune_network(&mut net, 0.5);
        // simulate a fine-tune step that perturbs everything
        let params: Vec<f32> = net.param_vector().iter().map(|v| v + 0.1).collect();
        net.set_param_vector(&params);
        apply_masks(&mut net, &masks);
        let zeros = net
            .param_vector()
            .iter()
            .take(16) // the weight part
            .filter(|&&v| v == 0.0)
            .count();
        assert_eq!(zeros, 8, "masked weights must stay zero");
    }

    #[test]
    fn pruned_network_still_runs() {
        let mut rng = StdRng::seed_from_u64(252);
        let mut net = Sequential::new();
        net.push(Dense::new(6, 12, Activation::Relu, &mut rng));
        net.push(Dense::new(12, 3, Activation::Identity, &mut rng));
        let _ = prune_network(&mut net, 0.8);
        let y = net.forward(&Matrix::ones(2, 6), Mode::Eval);
        assert_eq!(y.shape(), (2, 3));
        assert!(y.all_finite());
    }
}
