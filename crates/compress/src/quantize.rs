//! Weight quantization: k-means codebook sharing (Deep Compression,
//! reference [28]) and uniform fixed-point quantization (references
//! [32]–[34]).

use mdl_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A matrix stored as per-entry codebook indices plus a shared codebook.
///
/// Zero entries (pruned weights) are kept exactly zero via a reserved
/// codebook slot so quantization composes with pruning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Codebook of shared weight values.
    codebook: Vec<f32>,
    /// Index into `codebook` for every entry, row-major.
    indices: Vec<u8>,
    /// Bits needed per index.
    bits: u32,
}

impl QuantizedMatrix {
    /// K-means clustering of the non-zero weights into `2^bits − 1` shared
    /// values (one codebook slot is reserved for exact zero).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn kmeans(dense: &Matrix, bits: u32, rng: &mut impl Rng) -> Self {
        assert!((1..=8).contains(&bits), "codebook bits must be in 1..=8");
        let k = (1usize << bits) - 1;
        let nonzero: Vec<f32> = dense.as_slice().iter().copied().filter(|&v| v != 0.0).collect();

        let centroids = if nonzero.is_empty() {
            Vec::new()
        } else {
            kmeans_1d(&nonzero, k.min(nonzero.len()), 25, rng)
        };

        // codebook slot 0 = exact zero
        let mut codebook = Vec::with_capacity(centroids.len() + 1);
        codebook.push(0.0);
        codebook.extend_from_slice(&centroids);

        let indices = dense
            .as_slice()
            .iter()
            .map(|&v| {
                if v == 0.0 {
                    0u8
                } else {
                    let mut best = (f32::MAX, 0usize);
                    for (i, &c) in centroids.iter().enumerate() {
                        let d = (v - c).abs();
                        if d < best.0 {
                            best = (d, i);
                        }
                    }
                    (best.1 + 1) as u8
                }
            })
            .collect();

        Self { rows: dense.rows(), cols: dense.cols(), codebook, indices, bits }
    }

    /// Uniform (linear) quantization of the value range into `2^bits` levels.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn uniform(dense: &Matrix, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        let levels = 1usize << bits;
        let lo = dense.as_slice().iter().cloned().fold(f32::MAX, f32::min);
        let hi = dense.as_slice().iter().cloned().fold(f32::MIN, f32::max);
        let (lo, hi) = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
        let step = if hi > lo { (hi - lo) / (levels - 1) as f32 } else { 0.0 };
        let codebook: Vec<f32> = (0..levels).map(|i| lo + step * i as f32).collect();
        let indices = dense
            .as_slice()
            .iter()
            .map(|&v| {
                if step == 0.0 {
                    0u8
                } else {
                    (((v - lo) / step).round() as usize).min(levels - 1) as u8
                }
            })
            .collect();
        Self { rows: dense.rows(), cols: dense.cols(), codebook, indices, bits }
    }

    /// Reconstructs the dense matrix from the codebook.
    pub fn dequantize(&self) -> Matrix {
        let data = self.indices.iter().map(|&i| self.codebook[i as usize]).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Bits per stored index.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `(rows, cols)` of the matrix the codebook quantized.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The raw index stream (input to the Huffman stage).
    pub fn indices(&self) -> &[u8] {
        &self.indices
    }

    /// The shared-value codebook.
    pub fn codebook(&self) -> &[f32] {
        &self.codebook
    }

    /// Storage in bytes at `bits` per index plus the fp32 codebook.
    pub fn storage_bytes(&self) -> u64 {
        let index_bits = self.indices.len() as u64 * self.bits as u64;
        index_bits.div_ceil(8) + 4 * self.codebook.len() as u64
    }

    /// Maximum absolute reconstruction error against the original.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_error(&self, original: &Matrix) -> f32 {
        let rec = self.dequantize();
        assert_eq!(rec.shape(), original.shape(), "shape mismatch");
        rec.sub(original).max_abs()
    }
}

/// Lloyd's algorithm in one dimension with k-means++ style seeding.
fn kmeans_1d(values: &[f32], k: usize, iters: usize, rng: &mut impl Rng) -> Vec<f32> {
    assert!(k >= 1 && k <= values.len());
    // seed with quantiles for stability, then jitter ties
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| {
            let pos = (i as f64 + 0.5) / k as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    // de-duplicate identical seeds
    for i in 1..centroids.len() {
        if centroids[i] <= centroids[i - 1] {
            centroids[i] = centroids[i - 1] + 1e-6 + rng.gen::<f32>() * 1e-6;
        }
    }

    let mut assignment = vec![0usize; values.len()];
    for _ in 0..iters {
        // assign
        for (a, &v) in assignment.iter_mut().zip(values.iter()) {
            let mut best = (f32::MAX, 0usize);
            for (i, &c) in centroids.iter().enumerate() {
                let d = (v - c).abs();
                if d < best.0 {
                    best = (d, i);
                }
            }
            *a = best.1;
        }
        // update
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (&a, &v) in assignment.iter().zip(values.iter()) {
            sums[a] += v as f64;
            counts[a] += 1;
        }
        for i in 0..k {
            if counts[i] > 0 {
                centroids[i] = (sums[i] / counts[i] as f64) as f32;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_tensor::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kmeans_preserves_zeros_exactly() {
        let mut rng = StdRng::seed_from_u64(260);
        let mut w = Init::Normal { std: 1.0 }.sample(10, 10, &mut rng);
        // prune half
        for i in 0..50 {
            w.as_mut_slice()[i * 2] = 0.0;
        }
        let q = QuantizedMatrix::kmeans(&w, 4, &mut rng);
        let rec = q.dequantize();
        for i in 0..100 {
            if w.as_slice()[i] == 0.0 {
                assert_eq!(rec.as_slice()[i], 0.0, "zero must stay exactly zero");
            }
        }
    }

    #[test]
    fn more_bits_reduce_error() {
        let mut rng = StdRng::seed_from_u64(261);
        let w = Init::Normal { std: 1.0 }.sample(20, 20, &mut rng);
        let e2 = QuantizedMatrix::kmeans(&w, 2, &mut rng).max_error(&w);
        let e6 = QuantizedMatrix::kmeans(&w, 6, &mut rng).max_error(&w);
        assert!(e6 < e2, "6-bit error {e6} should beat 2-bit error {e2}");
    }

    #[test]
    fn uniform_bounds_error_by_half_step() {
        let w = Matrix::from_fn(8, 8, |r, c| (r as f32 - c as f32) / 7.0);
        let bits = 5;
        let q = QuantizedMatrix::uniform(&w, bits);
        let lo = -1.0f32;
        let hi = 1.0f32;
        let step = (hi - lo) / ((1 << bits) - 1) as f32;
        assert!(q.max_error(&w) <= step / 2.0 + 1e-6);
    }

    #[test]
    fn uniform_handles_constant_matrix() {
        let w = Matrix::full(3, 3, 2.5);
        let q = QuantizedMatrix::uniform(&w, 3);
        assert!(q.dequantize().approx_eq(&w, 1e-6));
    }

    #[test]
    fn storage_shrinks_with_fewer_bits() {
        let mut rng = StdRng::seed_from_u64(262);
        let w = Init::Normal { std: 1.0 }.sample(32, 32, &mut rng);
        let q2 = QuantizedMatrix::kmeans(&w, 2, &mut rng);
        let q8 = QuantizedMatrix::kmeans(&w, 8, &mut rng);
        assert!(q2.storage_bytes() < q8.storage_bytes());
        assert!(q8.storage_bytes() < 4 * 32 * 32, "8-bit beats fp32");
    }

    #[test]
    fn kmeans_1d_recovers_separated_clusters() {
        let mut rng = StdRng::seed_from_u64(263);
        let mut values = Vec::new();
        for _ in 0..100 {
            values.push(-5.0 + rng.gen::<f32>() * 0.1);
            values.push(5.0 + rng.gen::<f32>() * 0.1);
        }
        let c = kmeans_1d(&values, 2, 20, &mut rng);
        let mut c = c;
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] + 5.0).abs() < 0.2, "{c:?}");
        assert!((c[1] - 5.0).abs() < 0.2, "{c:?}");
    }

    #[test]
    fn indices_fit_in_bits() {
        let mut rng = StdRng::seed_from_u64(264);
        let w = Init::Normal { std: 1.0 }.sample(16, 16, &mut rng);
        let q = QuantizedMatrix::kmeans(&w, 3, &mut rng);
        assert!(q.indices().iter().all(|&i| (i as usize) < (1 << 3)));
        assert!(q.codebook().len() <= 8);
    }
}
