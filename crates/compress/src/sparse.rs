//! Compressed sparse row storage for pruned weight matrices.

use mdl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A CSR (compressed sparse row) matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values`, length `rows + 1`.
    row_ptr: Vec<u32>,
    /// Column index of each stored value.
    col_idx: Vec<u32>,
    /// The non-zero values.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                out[(r, self.col_idx[k] as usize)] = self.values[k];
            }
        }
        out
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(rows, cols)` of the logical matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols).max(1) as f64
    }

    /// Storage footprint in bytes (4 B value + 4 B column + row pointers).
    pub fn storage_bytes(&self) -> u64 {
        (4 * self.values.len() + 4 * self.col_idx.len() + 4 * self.row_ptr.len()) as u64
    }

    /// Computes `x · selfᵀ`-style product used by dense layers: for input
    /// `x: n × rows` (weights are `in × out`, so `self` is interpreted as the
    /// weight matrix and this computes `x · W`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.rows`.
    pub fn matmul_into(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.rows, "spmv shape mismatch");
        let mut out = Matrix::zeros(x.rows(), self.cols);
        for n in 0..x.rows() {
            let x_row = x.row(n);
            let out_row = out.row_mut(n);
            for (r, &xv) in x_row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for k in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                    out_row[self.col_idx[k] as usize] += xv * self.values[k];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[0.0, 3.0, 0.0]])
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), d);
        assert!((csr.sparsity() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.5, 0.0]]);
        let expect = x.matmul(&d);
        assert!(csr.matmul_into(&x).approx_eq(&expect, 1e-6));
    }

    #[test]
    fn empty_matrix() {
        let d = Matrix::zeros(4, 5);
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.sparsity(), 1.0);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn storage_shrinks_for_sparse() {
        let mut d = Matrix::zeros(100, 100);
        d[(3, 7)] = 1.0;
        let csr = CsrMatrix::from_dense(&d);
        assert!(csr.storage_bytes() < 4 * 100 * 100 / 10);
    }
}
