//! Property tests for the lossless and bounded-loss compression
//! primitives: Huffman coding must be the identity after a round trip,
//! and uniform quantization must never move a weight by more than half a
//! quantization step.

use mdl_compress::{HuffmanEncoded, QuantizedMatrix};
use mdl_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    /// decode ∘ encode = id for arbitrary byte streams, including the
    /// empty and single-distinct-symbol edge cases the tree builder
    /// special-cases.
    #[test]
    fn huffman_roundtrip_is_identity(symbols in prop::collection::vec(any::<u8>(), 0..512)) {
        let encoded = HuffmanEncoded::encode(&symbols);
        prop_assert_eq!(encoded.decode(), symbols);
    }

    /// Uniform quantization reconstructs every entry within step/2, where
    /// step spans the value range over the codebook levels.
    #[test]
    fn uniform_quantization_error_is_bounded(
        raw in prop::collection::vec(-2000i32..2000, 1..128),
        bits in 1u32..9,
    ) {
        let vals: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.01).collect();
        let dense = Matrix::from_vec(1, vals.len(), vals.clone());
        let q = QuantizedMatrix::uniform(&dense, bits);
        let restored = q.dequantize();

        let lo = vals.iter().cloned().fold(f32::MAX, f32::min);
        let hi = vals.iter().cloned().fold(f32::MIN, f32::max);
        let levels = 1usize << bits;
        let step = if hi > lo { (hi - lo) / (levels - 1) as f32 } else { 0.0 };
        // half a step, padded by one ulp-scale term for the float math in
        // the index computation
        let bound = 0.5 * step + (hi - lo).abs() * 1e-6;

        for (&v, &r) in vals.iter().zip(restored.as_slice()) {
            prop_assert!(
                (v - r).abs() <= bound,
                "|{v} - {r}| = {} > {bound} at {bits} bits (step {step})",
                (v - r).abs()
            );
        }
        prop_assert_eq!(q.max_error(&dense) <= bound, true);
    }

    /// The dequantized matrix only contains codebook values, so a second
    /// quantize→dequantize pass is exactly the identity (idempotence).
    #[test]
    fn uniform_quantization_is_idempotent(
        raw in prop::collection::vec(-500i32..500, 1..64),
        bits in 1u32..9,
    ) {
        let vals: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.05).collect();
        let dense = Matrix::from_vec(1, vals.len(), vals);
        let once = QuantizedMatrix::uniform(&dense, bits).dequantize();
        let twice = QuantizedMatrix::uniform(&once, bits).dequantize();
        prop_assert_eq!(
            once.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            twice.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
