//! Property tests for the lossless and bounded-loss compression
//! primitives: Huffman coding must be the identity after a round trip,
//! and uniform quantization must never move a weight by more than half a
//! quantization step.

use mdl_compress::{HuffmanEncoded, QuantizedMatrix};
use mdl_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    /// decode ∘ encode = id for arbitrary byte streams, including the
    /// empty and single-distinct-symbol edge cases the tree builder
    /// special-cases.
    #[test]
    fn huffman_roundtrip_is_identity(symbols in prop::collection::vec(any::<u8>(), 0..512)) {
        let encoded = HuffmanEncoded::encode(&symbols);
        prop_assert_eq!(encoded.decode(), symbols);
    }

    /// Uniform quantization reconstructs every entry within step/2, where
    /// step spans the value range over the codebook levels.
    #[test]
    fn uniform_quantization_error_is_bounded(
        raw in prop::collection::vec(-2000i32..2000, 1..128),
        bits in 1u32..9,
    ) {
        let vals: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.01).collect();
        let dense = Matrix::from_vec(1, vals.len(), vals.clone());
        let q = QuantizedMatrix::uniform(&dense, bits);
        let restored = q.dequantize();

        let lo = vals.iter().cloned().fold(f32::MAX, f32::min);
        let hi = vals.iter().cloned().fold(f32::MIN, f32::max);
        let levels = 1usize << bits;
        let step = if hi > lo { (hi - lo) / (levels - 1) as f32 } else { 0.0 };
        // half a step, padded by one ulp-scale term for the float math in
        // the index computation
        let bound = 0.5 * step + (hi - lo).abs() * 1e-6;

        for (&v, &r) in vals.iter().zip(restored.as_slice()) {
            prop_assert!(
                (v - r).abs() <= bound,
                "|{v} - {r}| = {} > {bound} at {bits} bits (step {step})",
                (v - r).abs()
            );
        }
        prop_assert_eq!(q.max_error(&dense) <= bound, true);
    }

    /// The dequantized matrix only contains codebook values, so a second
    /// quantize→dequantize pass is exactly the identity (idempotence).
    #[test]
    fn uniform_quantization_is_idempotent(
        raw in prop::collection::vec(-500i32..500, 1..64),
        bits in 1u32..9,
    ) {
        let vals: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.05).collect();
        let dense = Matrix::from_vec(1, vals.len(), vals);
        let once = QuantizedMatrix::uniform(&dense, bits).dequantize();
        let twice = QuantizedMatrix::uniform(&once, bits).dequantize();
        prop_assert_eq!(
            once.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            twice.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

// -- delta checkpoints (mdl-fleet's wire format) ---------------------------

use mdl_compress::{param_hash, snap_to_codebook, uniform_codebook, DeltaCheckpoint};

/// Element strategy with adversarial bit patterns: mostly ordinary
/// values, with NaN, ±0.0, infinities and a denormal mixed in — all of
/// which the delta encoder must carry bit-exactly.
fn weird_f32() -> impl Strategy<Value = f32> {
    (-1006i32..1000).prop_map(|v| match v {
        -1006 => f32::NAN,
        -1005 => -0.0,
        -1004 => f32::INFINITY,
        -1003 => f32::NEG_INFINITY,
        -1002 => f32::MIN_POSITIVE / 2.0, // denormal
        -1001 => 0.0,
        v => v as f32 * 0.013,
    })
}

/// Overwrites `base[idx % len]` with each paired value, producing the
/// "new" version of the tensor; edits collide freely, so deltas range
/// from empty to fully dense.
fn perturb(base: &[f32], idxs: &[usize], vals: &[f32]) -> Vec<f32> {
    let mut new = base.to_vec();
    if !new.is_empty() {
        for (&i, &v) in idxs.iter().zip(vals) {
            let at = i % new.len();
            new[at] = v;
        }
    }
    new
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// apply ∘ encode = identity (bit-for-bit, NaN and -0.0 included)
    /// over arbitrary tensors and arbitrary sparse edits.
    #[test]
    fn delta_apply_encode_is_identity(
        base in prop::collection::vec(weird_f32(), 0..96),
        idxs in prop::collection::vec(0usize..1 << 16, 0..32),
        vals in prop::collection::vec(weird_f32(), 0..32),
    ) {
        let new = perturb(&base, &idxs, &vals);
        let delta = DeltaCheckpoint::encode(&base, &new, 1, 2);
        let restored = delta.apply(&base).expect("matching base");
        prop_assert_eq!(bits(&restored), bits(&new));
        prop_assert_eq!(delta.changed() == 0, param_hash(&base) == param_hash(&new));
    }

    /// The quantized-diff path: both versions snapped onto a shared
    /// codebook grid still round-trip exactly, and a snapped payload
    /// never costs meaningfully more than raw storage.
    #[test]
    fn delta_identity_holds_on_the_quantized_path(
        raw in prop::collection::vec(-500i32..500, 32..128),
        levels in 2usize..32,
        step in 1i32..40,
    ) {
        let vals: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.01).collect();
        let grid = uniform_codebook(&vals, levels);
        let base = snap_to_codebook(&vals, &grid);
        let nudged: Vec<f32> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 3 == 0 { v + step as f32 * 0.01 } else { v })
            .collect();
        let new = snap_to_codebook(&nudged, &grid);
        let delta = DeltaCheckpoint::encode(&base, &new, 7, 8);
        let restored = delta.apply(&base).expect("matching base");
        prop_assert_eq!(bits(&restored), bits(&new));
        prop_assert!(delta.encoded_bytes() <= delta.full_bytes() + 32);
    }

    /// Wire round-trip: from_bytes ∘ to_bytes reproduces the checkpoint
    /// exactly, and the restored checkpoint still applies.
    #[test]
    fn delta_wire_roundtrip_preserves_the_checkpoint(
        base in prop::collection::vec(weird_f32(), 1..64),
        idxs in prop::collection::vec(0usize..1 << 16, 1..16),
        vals in prop::collection::vec(weird_f32(), 1..16),
    ) {
        let new = perturb(&base, &idxs, &vals);
        let delta = DeltaCheckpoint::encode(&base, &new, 3, 4);
        let wire = delta.to_bytes();
        prop_assert_eq!(wire.len() as u64, delta.encoded_bytes());
        let back = DeltaCheckpoint::from_bytes(&wire).expect("self-produced frame");
        prop_assert_eq!(&back, &delta);
        let restored = back.apply(&base).expect("matching base");
        prop_assert_eq!(bits(&restored), bits(&new));
    }

    /// A delta refuses to apply to any tensor that is not bit-identical
    /// to its base.
    #[test]
    fn delta_rejects_foreign_bases(
        raw in prop::collection::vec(-100i32..100, 4..48),
        corrupt in 0usize..1 << 16,
    ) {
        let base: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.11).collect();
        let mut new = base.clone();
        new[0] += 1.0;
        let delta = DeltaCheckpoint::encode(&base, &new, 1, 2);
        let mut other = base.clone();
        let at = corrupt % other.len();
        other[at] += 0.5;
        prop_assert!(delta.apply(&other).is_err());
    }
}
