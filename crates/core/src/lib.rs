//! # mdl-core
//!
//! Umbrella crate of the `mobile-dl` workspace — a from-scratch Rust
//! reproduction of *Deep Learning Towards Mobile Applications* (Wang et
//! al., ICDCS 2018). It re-exports every subsystem and adds the
//! [`pipeline`] module, which chains them into the lifecycle the paper
//! narrates: privacy-preserving federated training on mobile data, model
//! compression, and efficient (optionally private) inference deployment.
//!
//! | Paper section | Crate |
//! |---|---|
//! | §II-A distributed selective SGD | [`federated`](mdl_federated) |
//! | §II-B federated averaging + scheduling | [`federated`](mdl_federated) |
//! | §II-C DP training, moments accountant | [`privacy`](mdl_privacy) |
//! | §III placement economics | [`mobile`](mdl_mobile) |
//! | §III-A private split inference (ARDEN) | [`split`](mdl_split) |
//! | §III-B compression & acceleration | [`compress`](mdl_compress) |
//! | §IV-A DeepMood | [`deepmood`](mdl_deepmood) |
//! | §IV-B DEEPSERVICE | [`deepservice`](mdl_deepservice) |
//! | §III serving tier (batching, hot swap, routing) | [`serve`](mdl_serve) |
//! | faulty-network transport fabric | [`net`](mdl_net) |
//! | population-scale event-driven simulation | [`sim`](mdl_sim) |
//! | substrates | [`tensor`](mdl_tensor), [`nn`](mdl_nn), [`data`](mdl_data), [`baselines`](mdl_baselines) |
//!
//! # Examples
//!
//! ```
//! use mdl_core::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let data = mdl_core::data::synthetic::gaussian_blobs(100, 2, 0.3, &mut rng);
//! let (train, test) = data.split(0.8, &mut rng);
//! let mut model = LogisticRegression::new();
//! let eval = fit_evaluate(&mut model, &train, &test, &mut rng);
//! assert!(eval.accuracy > 0.9);
//! ```

#![warn(missing_docs)]

pub mod pipeline;

pub use mdl_baselines as baselines;
pub use mdl_compress as compress;
pub use mdl_data as data;
pub use mdl_deepmood as deepmood;
pub use mdl_deepservice as deepservice;
pub use mdl_federated as federated;
pub use mdl_fleet as fleet;
pub use mdl_mobile as mobile;
pub use mdl_net as net;
pub use mdl_nn as nn;
pub use mdl_obs as obs;
pub use mdl_privacy as privacy;
pub use mdl_serve as serve;
pub use mdl_sim as sim;
pub use mdl_split as split;
pub use mdl_tensor as tensor;

pub use pipeline::{
    run_pipeline, PipelineConfig, PipelineReport, PopulationRehearsal, PopulationSummary,
    RolloutRehearsal, RolloutSummary, ServingSummary, TransportSummary,
};

/// One-stop imports for examples and experiments.
pub mod prelude {
    pub use crate::pipeline::{
        run_pipeline, PipelineConfig, PipelineReport, PopulationRehearsal, PopulationSummary,
        RolloutRehearsal, RolloutSummary, ServingSummary, TransportSummary,
    };
    pub use mdl_baselines::{
        evaluate, fit_evaluate, Classifier, DecisionTree, Evaluation, GradientBoost, LinearSvm,
        LogisticRegression, MajorityClass, RandomForest,
    };
    pub use mdl_compress::{
        deep_compress, distill, factorize_dense, BlockCirculant, CompressedModel,
        DeepCompressionConfig, DistillConfig, HuffmanEncoded, QuantizedMatrix,
    };
    pub use mdl_data::biaffect::{BiAffectConfig, BiAffectDataset};
    pub use mdl_data::keystroke::{KeystrokeConfig, KeystrokeDataset};
    pub use mdl_data::{partition_dataset, ConfusionMatrix, Dataset, Partition};
    pub use mdl_deepmood::{DeepMood, DeepMoodConfig, FusionKind};
    pub use mdl_deepservice::{pairwise_identification, table_one, train_deepservice};
    pub use mdl_federated::{
        run_federated, run_federated_over, run_population_fedavg, run_selective_sgd,
        run_selective_sgd_over, AvailabilityModel, FedConfig, MlpSpec, PopulationTask,
        SelectiveConfig,
    };
    pub use mdl_fleet::{
        ab_compare, canary_stages, distribute, run_rollout, snapshot_diff, AbReport, ChunkConfig,
        DistributionReport, GatePolicy, RolloutConfig, RolloutReport,
    };
    pub use mdl_mobile::{Battery, DeviceProfile, NetworkProfile, Placement, Scenario};
    pub use mdl_net::{
        Fabric, FabricConfig, FaultPlan, LinkConfig, LinkState, NetError, RetryPolicy,
        TransportMetrics,
    };
    pub use mdl_nn::{
        fit_classifier, Activation, Adam, Dense, Gru, Layer, Mode, ParamVector, Plan, PlanModel,
        PlanOptions, QuantizedModel, Sequential, Sgd, TrainConfig,
    };
    pub use mdl_obs::{Buckets, Clock, ClockKind, MetricsRegistry, Obs, ObsSnapshot};
    pub use mdl_privacy::{
        compute_epsilon, run_dp_fedavg, train_dp_sgd, DpFedConfig, DpSgdConfig, GaussianMechanism,
        MomentsAccountant,
    };
    pub use mdl_serve::{
        request_stream, run_load, BatchPolicy, ClientProfile, DeviceClass, FleetConfig,
        FleetEngine, InferenceServer, LoadGenConfig, LoadMode, ModelVariant, NetworkClass, Route,
        ServeConfig, SloClass,
    };
    pub use mdl_sim::{
        run_population, sample_cohort, ClientTrainer, CohortSpec, Population, PopulationReport,
        PopulationSpec, SimConfig, SimError, Topology,
    };
    pub use mdl_split::{compare_deployments, Arden, ArdenConfig};
    pub use mdl_tensor::{Init, Int8Matrix, Matrix};
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}
