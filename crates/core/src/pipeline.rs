//! The end-to-end mobile deep-learning lifecycle the paper describes:
//! **train privately from distributed mobile data → compress → deploy
//! efficiently (and privately) for inference**.
//!
//! [`run_pipeline`] wires the workspace's systems together: DP-FedAvg
//! from `mdl-privacy` for training, Deep Compression from `mdl-compress`
//! for the on-device artifact, ARDEN from `mdl-split` for private cloud
//! serving, the `mdl-mobile` cost model to choose a placement, and
//! finally `mdl-serve` to smoke-test the trained artifact behind the
//! concurrent serving runtime.

use mdl_compress::pipeline::{deep_compress, DeepCompressionConfig};
use mdl_data::Dataset;
use mdl_federated::MlpSpec;
use mdl_federated::{run_population_fedavg, PopulationTask};
use mdl_mobile::{DeviceProfile, NetworkProfile};
use mdl_net::{Fabric, FabricConfig, FaultPlan, LinkConfig, TransportMetrics};
use mdl_nn::{save_model, Sequential};
use mdl_obs::{Obs, ObsSnapshot};
use mdl_privacy::{run_dp_fedavg, DpFedConfig};
use mdl_serve::{
    run_load, ClientProfile, DeviceClass, InferenceServer, LoadGenConfig, LoadMode, NetworkClass,
    ServeConfig, SloClass,
};
use mdl_sim::{Population, PopulationSpec, SimConfig};
use mdl_split::{compare_deployments, Arden, ArdenConfig, DeploymentRow};
use rand::rngs::StdRng;
use std::time::Duration;

/// Configuration of a full train→compress→deploy run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Model architecture (input width … classes).
    pub spec: MlpSpec,
    /// Federated + privacy settings.
    pub federated: DpFedConfig,
    /// Compression settings for the on-device artifact.
    pub compression: DeepCompressionConfig,
    /// Split-inference settings for the private cloud path.
    pub arden: ArdenConfig,
    /// Device the model ships to.
    pub device: DeviceProfile,
    /// Network the device sits on.
    pub network: NetworkProfile,
    /// Faults the `mdl-net` transport probe injects when rehearsing model
    /// distribution over [`PipelineConfig::network`]
    /// ([`FaultPlan::none`] probes the clean link).
    pub faults: FaultPlan,
    /// Observability session the run records into: one `pipeline.run` span
    /// with a child per stage, plus the `net.*` and `serve.*` instruments
    /// of the transport rehearsal and serving smoke test. `None` disables
    /// tracing entirely (and never changes any result).
    pub obs: Option<Obs>,
    /// Optional population-scale rehearsal: replay the federated cadence
    /// over an `mdl-sim` event-driven fleet (availability gating, cohort
    /// sampling, faulty links) before shipping the rollout schedule.
    /// `None` skips the stage entirely — all other results are unchanged.
    pub population: Option<PopulationRehearsal>,
    /// Optional rollout rehearsal: ship the compressed artifact as a
    /// delta checkpoint through `mdl-fleet`'s staged canary → pilot →
    /// fleet ladder (keyed-hash cohorts, resumable chunked transfer over
    /// the configured network/faults, health gates, A/B diff against the
    /// trained base). `None` skips the stage — all other results are
    /// unchanged.
    pub rollout: Option<RolloutRehearsal>,
}

/// Configuration of the optional population rehearsal stage.
#[derive(Debug, Clone)]
pub struct PopulationRehearsal {
    /// Synthetic clients to simulate.
    pub clients: u64,
    /// Event-engine settings (rounds, cohort, faults, topology, seed).
    pub sim: SimConfig,
    /// Seed behind the synthetic population mix and client datasets.
    pub seed: u64,
}

impl PopulationRehearsal {
    /// A small deterministic rehearsal: `clients` devices from the standard
    /// mobile mix, three cohort-sampled rounds under the default fault-free
    /// engine settings.
    pub fn quick(clients: u64, seed: u64) -> Self {
        Self { clients, sim: SimConfig { rounds: 3, seed, ..SimConfig::default() }, seed }
    }
}

/// Configuration of the optional rollout rehearsal stage.
#[derive(Debug, Clone)]
pub struct RolloutRehearsal {
    /// Devices in the rehearsal fleet.
    pub fleet: u64,
    /// Seed behind cohort sampling and the per-stage fabrics.
    pub seed: u64,
}

impl RolloutRehearsal {
    /// A small deterministic rehearsal fleet.
    pub fn quick(fleet: u64, seed: u64) -> Self {
        Self { fleet, seed }
    }
}

/// Everything a deployment decision needs, produced by one pipeline run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Test accuracy of the federally trained global model.
    pub trained_accuracy: f64,
    /// User-level privacy spent during training, `(ε, δ)`.
    pub training_epsilon: f64,
    /// End-to-end compression ratio of the on-device artifact.
    pub compression_ratio: f64,
    /// Test accuracy after decompressing the compressed artifact.
    pub compressed_accuracy: f64,
    /// Test accuracy of the ARDEN private split path (with noisy training).
    pub arden_accuracy: f64,
    /// Per-inference ε of the ARDEN upload.
    pub arden_epsilon: f64,
    /// Cost comparison across on-device / cloud / split placements.
    pub deployments: Vec<DeploymentRow>,
    /// What the faulty-transport rehearsal of model distribution observed.
    pub transport: TransportSummary,
    /// Smoke-test results of the trained artifact behind the serving tier.
    pub serving: ServingSummary,
    /// What the population rehearsal observed (`Some` iff
    /// [`PipelineConfig::population`] was set).
    pub population: Option<PopulationSummary>,
    /// What the rollout rehearsal observed (`Some` iff
    /// [`PipelineConfig::rollout`] was set).
    pub rollout: Option<RolloutSummary>,
    /// Frozen observability export (`Some` iff [`PipelineConfig::obs`] was
    /// set): stage spans plus every counter/gauge/histogram the run touched.
    pub obs: Option<ObsSnapshot>,
    /// The trained (uncompressed) global model.
    pub model: Sequential,
}

/// What happened when the trained model was saved, loaded back into the
/// `mdl-serve` runtime and driven with a short closed-loop load.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Requests issued by the load generator.
    pub requests: usize,
    /// Requests that received a response.
    pub completed: usize,
    /// Model version the server reported (1: freshly loaded artifact).
    pub model_version: u64,
    /// Mean worker-pool batch size (0 when every request ran on-device).
    pub mean_batch_size: f64,
    /// Client-observed 99th-percentile latency.
    pub p99: Duration,
}

/// What the population rehearsal observed: fleet-scale federated rounds
/// replayed over the `mdl-sim` event engine.
#[derive(Debug, Clone)]
pub struct PopulationSummary {
    /// Simulated clients.
    pub clients: u64,
    /// Rounds the engine completed.
    pub rounds: usize,
    /// Rounds whose cohort met quorum.
    pub quorum_rounds: usize,
    /// Whether the run finished (false: consecutive quorum misses exceeded
    /// the engine's budget — the configured faults starve the cadence).
    pub completed: bool,
    /// Final test accuracy of the rehearsal model (NaN when aborted).
    pub accuracy: f64,
    /// Virtual seconds of fleet time the rounds consumed.
    pub sim_clock_s: f64,
    /// Upload bytes across the fleet.
    pub bytes_up: u64,
    /// Download bytes across the fleet.
    pub bytes_down: u64,
}

/// What the rollout rehearsal observed: the compressed artifact staged
/// through the fleet as a delta checkpoint against the trained base.
#[derive(Debug, Clone)]
pub struct RolloutSummary {
    /// Devices in the rehearsal fleet.
    pub fleet: u64,
    /// Stages that actually ran (a failed gate stops the ladder).
    pub stages_run: usize,
    /// Every stage passed; the candidate kept serving.
    pub completed: bool,
    /// A health gate failed and serving reverted to the pinned base.
    pub rolled_back: bool,
    /// Registry version serving resolved to afterwards.
    pub serving_version: u64,
    /// Rollbacks performed (0 or 1).
    pub reverts: u64,
    /// Serialised delta-checkpoint bytes shipped per device.
    pub delta_bytes: u64,
    /// Full-checkpoint bytes the delta replaced.
    pub full_bytes: u64,
    /// Layout the delta encoder picked.
    pub delta_mode: String,
    /// A/B prediction mismatch rate between base and candidate.
    pub ab_mismatch: f64,
}

/// What the transport rehearsal observed when pushing the trained
/// artifact to a small device cohort over the configured (possibly
/// faulty) network.
#[derive(Debug, Clone)]
pub struct TransportSummary {
    /// Aggregate link counters across the rehearsal.
    pub metrics: TransportMetrics,
    /// Devices in the probe cohort.
    pub probe_clients: usize,
    /// Distribution rounds attempted.
    pub probe_rounds: usize,
    /// Rounds in which a majority of the cohort got the artifact and
    /// acknowledged it.
    pub delivered_rounds: usize,
}

/// Rehearses model distribution over the configured network: a small
/// cohort downloads the artifact and uploads an acknowledgement for a few
/// rounds, with the configured [`FaultPlan`] injected. Deterministic for a
/// fixed configuration (the fabric owns its own seeded RNG).
fn probe_transport(
    artifact_bytes: u64,
    network: &NetworkProfile,
    faults: &FaultPlan,
    obs: Option<&Obs>,
) -> TransportSummary {
    const PROBE_CLIENTS: usize = 8;
    const PROBE_ROUNDS: usize = 3;
    let fabric_config = FabricConfig {
        faults: faults.clone(),
        quorum_fraction: 0.5,
        ..FabricConfig::faulty(LinkConfig::clean(network.clone()))
    };
    let mut fabric = Fabric::new(PROBE_CLIENTS, fabric_config, 0xFA6);
    if let Some(obs) = obs {
        fabric.attach_obs(obs.clone());
    }
    let ack_bytes = 64;
    let mut delivered_rounds = 0;
    for _ in 0..PROBE_ROUNDS {
        fabric.begin_round();
        let mut acked = 0;
        for c in 0..PROBE_CLIENTS {
            if fabric.send_down(c, artifact_bytes).is_ok() && fabric.send_up(c, ack_bytes).is_ok() {
                acked += 1;
            }
        }
        if acked >= fabric.quorum_min(PROBE_CLIENTS) {
            delivered_rounds += 1;
        }
        fabric.end_round();
    }
    TransportSummary {
        metrics: fabric.metrics(),
        probe_clients: PROBE_CLIENTS,
        probe_rounds: PROBE_ROUNDS,
        delivered_rounds,
    }
}

/// Replays the federated cadence at fleet scale: a synthetic mobile-mix
/// population trains the standard blob task through the `mdl-sim` event
/// engine, exercising availability gating, cohort sampling and per-client
/// links under the rehearsal's fault plan. The model is deliberately tiny
/// — the stage rehearses the *schedule* (quorum health, virtual wall
/// clock, fleet bytes), not the production architecture.
fn rehearse_population(r: &PopulationRehearsal, obs: Option<&Obs>) -> PopulationSummary {
    let task = PopulationTask::blobs(r.seed);
    let mut pop = Population::new(PopulationSpec::mobile_mix(r.clients, r.seed));
    match run_population_fedavg(&r.sim, &mut pop, &task, obs) {
        Ok((report, accuracy)) => PopulationSummary {
            clients: r.clients,
            rounds: report.rounds.len(),
            quorum_rounds: report.rounds.iter().filter(|x| x.quorum_met).count(),
            completed: true,
            accuracy,
            sim_clock_s: report.sim_clock_s,
            bytes_up: report.transport.bytes_up,
            bytes_down: report.transport.bytes_down,
        },
        Err(_) => PopulationSummary {
            clients: r.clients,
            rounds: 0,
            quorum_rounds: 0,
            completed: false,
            accuracy: f64::NAN,
            sim_clock_s: 0.0,
            bytes_up: 0,
            bytes_down: 0,
        },
    }
}

/// Rehearses a staged fleet rollout of the compressed artifact: the
/// trained model is the pinned base, the compressed restoration is the
/// candidate, and the delta between them ships canary → pilot → fleet
/// over the configured network and fault plan. Gates are deliberately
/// tolerant — compression legitimately shifts some predictions — so the
/// rehearsal answers "does the machinery hold up", not "is this
/// candidate good"; a genuinely broken candidate still rolls back.
fn rehearse_rollout(
    r: &RolloutRehearsal,
    base: &mut Sequential,
    candidate: &mut Sequential,
    test: &Dataset,
    network: &NetworkProfile,
    faults: &FaultPlan,
    obs: Option<&Obs>,
) -> RolloutSummary {
    let mut cfg = mdl_fleet::RolloutConfig::staged(r.fleet, r.seed);
    cfg.fabric = FabricConfig {
        faults: faults.clone(),
        ..FabricConfig::faulty(LinkConfig::clean(network.clone()))
    };
    cfg.chunk.retry_budget = 32;
    cfg.gate = mdl_fleet::GatePolicy {
        max_error_rate: 0.25,
        max_accuracy_drop: 0.15,
        max_ab_mismatch: 0.50,
        ..Default::default()
    };
    let report = mdl_fleet::run_rollout(base, candidate, &test.x, &test.y, &cfg, obs);
    RolloutSummary {
        fleet: r.fleet,
        stages_run: report.stages.len(),
        completed: report.completed,
        rolled_back: report.rolled_back,
        serving_version: report.serving_version,
        reverts: report.reverts,
        delta_bytes: report.delta_bytes,
        full_bytes: report.full_bytes,
        delta_mode: report.delta_mode,
        ab_mismatch: report.ab.mismatch_rate,
    }
}

/// Saves `model` to the wire format, boots a server from the bytes and
/// drives a short deterministic closed-loop load from mixed profiles.
fn smoke_serve(model: &mut Sequential, test: &Dataset, obs: Option<&Obs>) -> ServingSummary {
    let bytes = save_model(model).expect("MLP layers all serialize");
    let server = InferenceServer::from_artifact(
        &bytes,
        None,
        ServeConfig { workers: 2, obs: obs.cloned(), ..Default::default() },
    )
    .expect("artifact was just encoded");
    let client = server.client();
    let requests = 64;
    let report = run_load(
        &client,
        &test.x,
        &LoadGenConfig {
            seed: 0x5e7e,
            requests,
            mode: LoadMode::Closed { concurrency: 4 },
            profiles: vec![
                ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi },
                ClientProfile { device: DeviceClass::Midrange, network: NetworkClass::Lte },
            ],
            classes: vec![SloClass::Interactive, SloClass::Standard, SloClass::BestEffort],
        },
    );
    let summary = ServingSummary {
        requests,
        completed: report.completed,
        model_version: server.version(),
        mean_batch_size: report.mean_batch_size,
        p99: report.percentile(99.0),
    };
    drop(client);
    server.shutdown();
    summary
}

/// Runs the whole lifecycle on pre-partitioned client data.
///
/// # Panics
///
/// Panics if `clients` is empty (see [`run_dp_fedavg`]) or the
/// architecture is too shallow to split (see [`Arden::from_pretrained`]).
pub fn run_pipeline(
    config: &PipelineConfig,
    clients: &[Dataset],
    test: &Dataset,
    rng: &mut StdRng,
) -> PipelineReport {
    let run_span = config.obs.as_ref().map(|o| o.root_span("pipeline.run"));
    let stage = |name| run_span.as_ref().map(|s| s.child(name));

    // 1. private federated training (§II)
    let span = stage("pipeline.train");
    let fed = run_dp_fedavg(&config.spec, clients, test, &config.federated, rng);
    let mut model = config.spec.build_with(&fed.final_params);
    let trained_accuracy = model.accuracy(&test.x, &test.y);
    drop(span);

    // 2. compression for on-device deployment (§III-B); fine-tune on the
    // union of client data (in a real deployment this is a public proxy set)
    let span = stage("pipeline.compress");
    let mut pool_x = clients[0].x.clone();
    let mut pool_y = clients[0].y.clone();
    for c in &clients[1..] {
        pool_x = pool_x.vstack(&c.x);
        pool_y.extend_from_slice(&c.y);
    }
    let mut to_compress = config.spec.build_with(&fed.final_params);
    let compressed =
        deep_compress(&mut to_compress, Some((&pool_x, &pool_y)), &config.compression, rng);
    let restored = compressed.decompress();
    let compressed_accuracy = restored.accuracy(&test.x, &test.y);
    drop(span);

    // 3. private split serving (§III-A)
    let span = stage("pipeline.split");
    let split_model = config.spec.build_with(&fed.final_params);
    let mut arden = Arden::from_pretrained(split_model, config.arden.clone());
    let _ = arden.noisy_train(&pool_x, &pool_y, 15, 0.005, rng);
    let arden_accuracy = arden.accuracy(&test.x, &test.y, rng);
    let arden_epsilon = arden.privacy_epsilon(1e-5);
    drop(span);

    // 4. placement economics (§III, Figs. 2–3)
    let span = stage("pipeline.placement");
    let deployments = compare_deployments(
        &model,
        &arden,
        &config.device,
        &DeviceProfile::cloud_server(),
        &config.network,
        4 * test.dim() as u64,
    );
    drop(span);

    // 5. transport rehearsal: push the compressed artifact to a small
    // device cohort over the configured network with the configured fault
    // plan, so the report carries retry/timeout/byte counts alongside the
    // placement economics
    let span = stage("pipeline.transport");
    let transport = probe_transport(
        compressed.report.final_bytes,
        &config.network,
        &config.faults,
        config.obs.as_ref(),
    );
    drop(span);

    // 6. serving smoke test (the model update loop's last mile): the
    // trained model goes through the wire format into the concurrent
    // serving runtime and answers a short burst of requests
    let span = stage("pipeline.serve");
    let serving = smoke_serve(&mut model, test, config.obs.as_ref());
    drop(span);

    // 7. (optional) population rehearsal: replay the round cadence over an
    // event-driven fleet before committing to a rollout schedule
    let population = config.population.as_ref().map(|r| {
        let span = stage("pipeline.population");
        let summary = rehearse_population(r, config.obs.as_ref());
        drop(span);
        summary
    });

    // 8. (optional) rollout rehearsal: stage the compressed artifact
    // through the fleet as a delta checkpoint with health gates
    let rollout = config.rollout.as_ref().map(|r| {
        let span = stage("pipeline.rollout");
        let mut rollout_base = config.spec.build_with(&fed.final_params);
        let mut rollout_candidate = compressed.decompress();
        let summary = rehearse_rollout(
            r,
            &mut rollout_base,
            &mut rollout_candidate,
            test,
            &config.network,
            &config.faults,
            config.obs.as_ref(),
        );
        drop(span);
        summary
    });

    let obs = config.obs.as_ref().map(|o| {
        let g = o.registry();
        g.gauge("pipeline.trained_accuracy").set(trained_accuracy);
        g.gauge("pipeline.compressed_accuracy").set(compressed_accuracy);
        g.gauge("pipeline.compression_ratio").set(compressed.report.ratio());
        if let Some(s) = run_span {
            s.exit();
        }
        o.snapshot()
    });

    PipelineReport {
        trained_accuracy,
        training_epsilon: fed.epsilon,
        compression_ratio: compressed.report.ratio(),
        compressed_accuracy,
        arden_accuracy,
        arden_epsilon,
        deployments,
        transport,
        serving,
        population,
        rollout,
        obs,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::partition::{partition_dataset, Partition};
    use mdl_data::synthetic::synthetic_digits;
    use rand::SeedableRng;

    #[test]
    fn full_lifecycle_produces_consistent_report() {
        let mut rng = StdRng::seed_from_u64(400);
        let data = synthetic_digits(1200, 0.08, &mut rng);
        let (train, test) = data.split(0.8, &mut rng);
        let clients = partition_dataset(&train, 20, Partition::Iid, &mut rng);

        let config = PipelineConfig {
            spec: MlpSpec::new(vec![64, 64, 32, 10], 17),
            federated: DpFedConfig {
                rounds: 25,
                noise_multiplier: 0.3,
                clip_norm: 2.0,
                learning_rate: 0.15,
                local_epochs: 3,
                sample_prob: 0.8,
                ..Default::default()
            },
            compression: DeepCompressionConfig {
                sparsity: 0.7,
                quant_bits: 5,
                finetune: Some((3, 0.005)),
                prune_steps: 2,
            },
            arden: ArdenConfig {
                split_at: 1,
                nullification_rate: 0.1,
                noise_sigma: 0.3,
                clip_norm: 5.0,
            },
            device: DeviceProfile::midrange_phone(),
            network: NetworkProfile::wifi(),
            faults: FaultPlan::lossy_cohort(),
            obs: Some(Obs::wall()),
            population: Some(PopulationRehearsal::quick(300, 11)),
            rollout: Some(RolloutRehearsal::quick(48, 13)),
        };
        let report = run_pipeline(&config, &clients, &test, &mut rng);

        assert!(report.trained_accuracy > 0.6, "trained {}", report.trained_accuracy);
        assert!(report.training_epsilon.is_finite() && report.training_epsilon > 0.0);
        assert!(report.compression_ratio > 5.0, "ratio {}", report.compression_ratio);
        assert!(
            report.compressed_accuracy > report.trained_accuracy - 0.25,
            "compressed {} vs trained {}",
            report.compressed_accuracy,
            report.trained_accuracy
        );
        assert!(report.arden_accuracy > 0.4, "arden {}", report.arden_accuracy);
        assert!(report.arden_epsilon.is_finite());
        assert_eq!(report.deployments.len(), 3);
        assert_eq!(report.transport.probe_rounds, 3);
        assert!(report.transport.delivered_rounds > 0, "wifi cohort should reach quorum");
        assert!(report.transport.metrics.attempts > 0);
        assert!(
            report.transport.metrics.bytes_down > 0,
            "the artifact must reach at least one device"
        );
        assert_eq!(report.serving.completed, report.serving.requests);
        assert_eq!(report.serving.model_version, 1);
        assert!(report.serving.p99 > Duration::ZERO);

        let popn = report.population.as_ref().expect("rehearsal was configured");
        assert!(popn.completed);
        assert_eq!(popn.rounds, 3);
        assert!(popn.quorum_rounds > 0, "fault-free rehearsal should meet quorum");
        assert!(popn.bytes_up > 0 && popn.sim_clock_s > 0.0);

        let roll = report.rollout.as_ref().expect("rollout rehearsal was configured");
        assert_eq!(roll.fleet, 48);
        assert!(roll.stages_run >= 1);
        assert!(
            roll.completed != roll.rolled_back,
            "the ladder either finishes or rolls back, never both"
        );
        assert!(roll.delta_bytes > 0 && roll.full_bytes > 0);

        // one bookkeeping path: the obs export carries the same story
        let obs = report.obs.as_ref().expect("obs was configured");
        let outline = obs.span_outline();
        assert!(outline.contains(&(0, "pipeline.run".to_string())));
        for child in [
            "pipeline.train",
            "pipeline.compress",
            "pipeline.split",
            "pipeline.placement",
            "pipeline.transport",
            "pipeline.serve",
            "pipeline.population",
            "pipeline.rollout",
        ] {
            assert!(
                outline.contains(&(1, child.to_string())),
                "missing stage span {child} in {outline:?}"
            );
        }
        assert_eq!(obs.counter("net.rounds"), Some(3));
        assert_eq!(
            obs.counter("net.bytes_down"),
            Some(report.transport.metrics.bytes_down),
            "registry and TransportMetrics must agree on byte accounting"
        );
        assert_eq!(obs.counter("serve.completed"), Some(report.serving.completed as u64));
        assert!(obs.gauge("pipeline.trained_accuracy").is_some());
    }
}
