//! Synthetic BiAffect study: mood-modulated typing dynamics (§IV-A).
//!
//! The real BiAffect dataset (40 participants, 8 weeks, a custom Android
//! keyboard logging keypress metadata and accelerometer values) is private
//! clinical data. This module substitutes a generative model that preserves
//! the structure DeepMood exploits: every participant has an idiosyncratic
//! typing signature, and a latent mood state (euthymic vs. depressed)
//! modulates that signature — psychomotor retardation slows typing, increases
//! rhythm variability and error rate, and damps gross motor activity.

use crate::dataset::Dataset;
use crate::typing::{featurize_session, TypingProfile, TypingSession, FEATURE_DIM};
use mdl_tensor::init::gaussian;
use mdl_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mood classes predicted by DeepMood in this reproduction.
pub const MOOD_CLASSES: usize = 2;

/// Configuration of the synthetic BiAffect cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiAffectConfig {
    /// Number of study participants (the study enrolled 40).
    pub participants: usize,
    /// Sessions generated per participant.
    pub sessions_per_participant: usize,
    /// Strength of the mood effect on typing dynamics (1.0 = calibrated
    /// default; 0.0 makes the task impossible).
    pub mood_effect: f32,
    /// Probability that the mood state persists between consecutive
    /// sessions (mood episodes last days, sessions minutes).
    pub episode_persistence: f64,
}

impl Default for BiAffectConfig {
    fn default() -> Self {
        Self {
            participants: 40,
            sessions_per_participant: 60,
            mood_effect: 1.0,
            episode_persistence: 0.9,
        }
    }
}

/// One labelled phone-usage session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoodSession {
    /// Participant index in `0..participants`.
    pub participant: usize,
    /// Mood label: `0` = euthymic, `1` = depressed.
    pub label: usize,
    /// The session's multi-view metadata.
    pub session: TypingSession,
}

/// The generated cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiAffectDataset {
    /// All sessions across all participants, participant-major order.
    pub sessions: Vec<MoodSession>,
    /// The configuration used to generate the data.
    pub config: BiAffectConfig,
}

/// Draws a per-participant baseline typing profile.
pub(crate) fn personal_profile(rng: &mut impl Rng) -> TypingProfile {
    let base = TypingProfile::default();
    TypingProfile {
        mean_duration: base.mean_duration * (gaussian(rng) * 0.20).exp(),
        mean_iki: base.mean_iki * (gaussian(rng) * 0.25).exp(),
        rhythm_std: base.rhythm_std * (gaussian(rng) * 0.20).exp(),
        keys_per_session: base.keys_per_session * (gaussian(rng) * 0.40).exp(),
        special_rates: {
            let mut r = base.special_rates;
            for v in &mut r {
                *v *= (gaussian(rng) * 0.30).exp();
            }
            r
        },
        key_travel: [
            base.key_travel[0] * (gaussian(rng) * 0.15).exp(),
            base.key_travel[1] * (gaussian(rng) * 0.15).exp(),
        ],
        accel_base: [gaussian(rng) * 0.3, 0.2 + gaussian(rng) * 0.3, 9.6 + gaussian(rng) * 0.2],
        accel_std: base.accel_std * (gaussian(rng) * 0.30).exp(),
        accel_freq: base.accel_freq * (gaussian(rng) * 0.25).exp(),
        accel_axis_gains: [
            (base.accel_axis_gains[0] * (gaussian(rng) * 0.45).exp()).clamp(0.05, 2.5),
            (base.accel_axis_gains[1] * (gaussian(rng) * 0.45).exp()).clamp(0.05, 2.5),
            (base.accel_axis_gains[2] * (gaussian(rng) * 0.45).exp()).clamp(0.05, 2.5),
        ],
        burst_persistence: (base.burst_persistence + gaussian(rng) * 0.18).clamp(0.45, 0.98),
        burst_ratio: (base.burst_ratio * (gaussian(rng) * 0.55).exp()).clamp(1.0, 10.0),
    }
}

/// How strongly each depressive symptom manifests for one participant.
///
/// Depression expresses heterogeneously: one person slows down, another
/// makes more corrections, a third mostly loses motor energy. The
/// heterogeneity is what defeats global feature thresholds while sequence
/// models can still pick up the within-session dynamics.
#[derive(Debug, Clone)]
struct MoodResponse {
    slowing: f32,
    errors: f32,
    motor: f32,
    pausing: f32,
}

fn mood_response(rng: &mut impl Rng) -> MoodResponse {
    MoodResponse {
        slowing: (gaussian(rng) * 0.5).exp(),
        errors: (gaussian(rng) * 0.5).exp(),
        motor: (gaussian(rng) * 0.5).exp(),
        pausing: (gaussian(rng) * 0.5).exp(),
    }
}

/// Applies the depression effect to a baseline profile.
fn depressed_variant(profile: &TypingProfile, effect: f32, resp: &MoodResponse) -> TypingProfile {
    let e = effect;
    let mut special = profile.special_rates;
    special[0] *= 1.0 + 0.25 * e * resp.errors; // more auto-corrects
    special[1] *= 1.0 + 0.45 * e * resp.errors; // more backspaces
    TypingProfile {
        mean_duration: profile.mean_duration * (1.0 + 0.08 * e * resp.slowing),
        mean_iki: profile.mean_iki * (1.0 + 0.15 * e * resp.slowing),
        rhythm_std: profile.rhythm_std * (1.0 + 0.30 * e * resp.slowing),
        keys_per_session: profile.keys_per_session * (1.0 - 0.12 * e).max(0.2),
        special_rates: special,
        key_travel: profile.key_travel,
        accel_base: profile.accel_base,
        accel_std: profile.accel_std * (1.0 - 0.20 * e * resp.motor).max(0.1),
        accel_freq: profile.accel_freq * (1.0 - 0.12 * e * resp.motor).max(0.2),
        accel_axis_gains: profile.accel_axis_gains,
        // psychomotor retardation shows up as *pause structure*: longer,
        // stickier pauses between typing bursts — a temporal marker that
        // per-session means barely register
        burst_persistence: (profile.burst_persistence + 0.10 * e * resp.pausing).min(0.98),
        burst_ratio: (profile.burst_ratio * (1.0 + 0.60 * e * resp.pausing)).min(12.0),
    }
}

impl BiAffectDataset {
    /// Generates the full cohort from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `participants` or `sessions_per_participant` is zero.
    pub fn generate(config: &BiAffectConfig, rng: &mut impl Rng) -> Self {
        assert!(config.participants > 0, "need at least one participant");
        assert!(config.sessions_per_participant > 0, "need at least one session");
        let mut sessions =
            Vec::with_capacity(config.participants * config.sessions_per_participant);
        for participant in 0..config.participants {
            let baseline = personal_profile(rng);
            let resp = mood_response(rng);
            let depressed = depressed_variant(&baseline, config.mood_effect, &resp);
            // two-state Markov chain over the session sequence
            let mut state = usize::from(rng.gen::<f64>() < 0.5);
            for _ in 0..config.sessions_per_participant {
                if rng.gen::<f64>() > config.episode_persistence {
                    state = 1 - state;
                }
                let profile = if state == 1 { &depressed } else { &baseline };
                // small session-to-session jitter on top of the state profile
                let jittered = TypingProfile {
                    mean_iki: profile.mean_iki * (gaussian(rng) * 0.05).exp(),
                    ..profile.clone()
                };
                sessions.push(MoodSession {
                    participant,
                    label: state,
                    session: jittered.generate_session(rng),
                });
            }
        }
        Self { sessions, config: config.clone() }
    }

    /// Total number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions were generated.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions belonging to one participant.
    pub fn sessions_of(&self, participant: usize) -> Vec<&MoodSession> {
        self.sessions.iter().filter(|s| s.participant == participant).collect()
    }

    /// Flattens every session into summary features for shallow baselines.
    pub fn to_feature_dataset(&self) -> Dataset {
        let n = self.sessions.len();
        let mut x = Matrix::zeros(n, FEATURE_DIM);
        let mut y = Vec::with_capacity(n);
        for (r, s) in self.sessions.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&featurize_session(&s.session));
            y.push(s.label);
        }
        Dataset::new(x, y, MOOD_CLASSES)
    }

    /// Random per-participant split: each participant contributes
    /// `train_fraction` of their sessions to train and the rest to test.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(
        &self,
        train_fraction: f64,
        rng: &mut impl Rng,
    ) -> (Vec<MoodSession>, Vec<MoodSession>) {
        use rand::seq::SliceRandom;
        assert!(train_fraction > 0.0 && train_fraction < 1.0, "train_fraction must be in (0, 1)");
        let mut train = Vec::new();
        let mut test = Vec::new();
        for p in 0..self.config.participants {
            let mut mine: Vec<&MoodSession> = self.sessions_of(p);
            mine.shuffle(rng);
            let cut = ((mine.len() as f64) * train_fraction).round() as usize;
            for (i, s) in mine.into_iter().enumerate() {
                if i < cut {
                    train.push(s.clone());
                } else {
                    test.push(s.clone());
                }
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> BiAffectConfig {
        BiAffectConfig { participants: 4, sessions_per_participant: 20, ..Default::default() }
    }

    #[test]
    fn generates_expected_counts() {
        let mut rng = StdRng::seed_from_u64(90);
        let d = BiAffectDataset::generate(&small(), &mut rng);
        assert_eq!(d.len(), 80);
        assert_eq!(d.sessions_of(0).len(), 20);
        assert_eq!(d.sessions_of(3).len(), 20);
    }

    #[test]
    fn both_mood_states_occur() {
        let mut rng = StdRng::seed_from_u64(91);
        let d = BiAffectDataset::generate(
            &BiAffectConfig { participants: 8, sessions_per_participant: 40, ..Default::default() },
            &mut rng,
        );
        let depressed = d.sessions.iter().filter(|s| s.label == 1).count();
        let frac = depressed as f64 / d.len() as f64;
        assert!((0.2..=0.8).contains(&frac), "depressed fraction {frac}");
    }

    #[test]
    fn mood_episodes_are_persistent() {
        let mut rng = StdRng::seed_from_u64(92);
        let d = BiAffectDataset::generate(&small(), &mut rng);
        // consecutive sessions of a participant should mostly share a label
        let mut same = 0usize;
        let mut total = 0usize;
        for p in 0..4 {
            let s = d.sessions_of(p);
            for w in s.windows(2) {
                total += 1;
                if w[0].label == w[1].label {
                    same += 1;
                }
            }
        }
        assert!(same as f64 / total as f64 > 0.7, "labels flip too often");
    }

    #[test]
    fn depression_slows_typing_on_average() {
        let mut rng = StdRng::seed_from_u64(93);
        let d = BiAffectDataset::generate(
            &BiAffectConfig {
                participants: 12,
                sessions_per_participant: 30,
                ..Default::default()
            },
            &mut rng,
        );
        let mean_iki = |label: usize| {
            let (mut tot, mut n) = (0.0f64, 0usize);
            for s in d.sessions.iter().filter(|s| s.label == label) {
                tot += s.session.alphanumeric.col(1).iter().sum::<f32>() as f64;
                n += s.session.alphanumeric.rows();
            }
            tot / n as f64
        };
        assert!(
            mean_iki(1) > mean_iki(0) * 1.1,
            "depressed IKI {} should exceed euthymic {}",
            mean_iki(1),
            mean_iki(0)
        );
    }

    #[test]
    fn feature_dataset_shape() {
        let mut rng = StdRng::seed_from_u64(94);
        let d = BiAffectDataset::generate(&small(), &mut rng);
        let f = d.to_feature_dataset();
        assert_eq!(f.len(), 80);
        assert_eq!(f.dim(), FEATURE_DIM);
        assert_eq!(f.classes, MOOD_CLASSES);
    }

    #[test]
    fn split_is_per_participant() {
        let mut rng = StdRng::seed_from_u64(95);
        let d = BiAffectDataset::generate(&small(), &mut rng);
        let (train, test) = d.split(0.75, &mut rng);
        assert_eq!(train.len(), 60);
        assert_eq!(test.len(), 20);
        for p in 0..4 {
            assert_eq!(train.iter().filter(|s| s.participant == p).count(), 15);
        }
    }

    #[test]
    fn zero_effect_removes_signal() {
        let mut rng = StdRng::seed_from_u64(96);
        let cfg = BiAffectConfig {
            mood_effect: 0.0,
            participants: 6,
            sessions_per_participant: 20,
            ..Default::default()
        };
        let d = BiAffectDataset::generate(&cfg, &mut rng);
        // with zero effect the depressed and euthymic IKI distributions match
        let mean_iki = |label: usize| {
            let (mut tot, mut n) = (0.0f64, 0usize);
            for s in d.sessions.iter().filter(|s| s.label == label) {
                tot += s.session.alphanumeric.col(1).iter().sum::<f32>() as f64;
                n += s.session.alphanumeric.rows();
            }
            tot / n.max(1) as f64
        };
        let ratio = mean_iki(1) / mean_iki(0).max(1e-9);
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
