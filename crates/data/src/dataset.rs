//! Labelled tabular datasets with splitting utilities.

use mdl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A tabular classification dataset: one example per row of `x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, `n × d`.
    pub x: Matrix,
    /// Integer class labels, length `n`.
    pub y: Vec<usize>,
    /// Number of classes (labels are `0..classes`).
    pub classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating labels against `classes`.
    ///
    /// # Panics
    ///
    /// Panics if row/label counts differ or a label is out of range.
    pub fn new(x: Matrix, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "one label per row required");
        assert!(y.iter().all(|&l| l < classes), "label out of range for {classes} classes");
        Self { x, y, classes }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Returns a new dataset containing the given example indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            classes: self.classes,
        }
    }

    /// Random train/test split with `train_fraction` of examples in train.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(train_fraction > 0.0 && train_fraction < 1.0, "train_fraction must be in (0, 1)");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        (self.subset(&order[..cut]), self.subset(&order[cut..]))
    }

    /// Stratified split preserving per-class proportions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split_stratified(&self, train_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(train_fraction > 0.0 && train_fraction < 1.0, "train_fraction must be in (0, 1)");
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for c in 0..self.classes {
            let mut idx: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == c).collect();
            idx.shuffle(rng);
            let cut = ((idx.len() as f64) * train_fraction).round() as usize;
            train_idx.extend_from_slice(&idx[..cut]);
            test_idx.extend_from_slice(&idx[cut..]);
        }
        train_idx.shuffle(rng);
        test_idx.shuffle(rng);
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &y in &self.y {
            counts[y] += 1;
        }
        counts
    }

    /// Standardises features to zero mean / unit variance **using this
    /// dataset's statistics**, returning the `(means, stds)` used.
    pub fn standardize(&mut self) -> (Vec<f32>, Vec<f32>) {
        let d = self.dim();
        let n = self.len().max(1) as f32;
        let mut means = vec![0.0f32; d];
        let mut stds = vec![0.0f32; d];
        for r in 0..self.len() {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self.x[(r, c)];
            }
        }
        for m in &mut means {
            *m /= n;
        }
        for r in 0..self.len() {
            for (c, s) in stds.iter_mut().enumerate() {
                let dlt = self.x[(r, c)] - means[c];
                *s += dlt * dlt;
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt().max(1e-8);
        }
        self.apply_standardization(&means, &stds);
        (means, stds)
    }

    /// Applies externally computed standardisation statistics (e.g. the
    /// training set's) to this dataset.
    ///
    /// # Panics
    ///
    /// Panics if the statistic lengths do not match the feature width.
    pub fn apply_standardization(&mut self, means: &[f32], stds: &[f32]) {
        assert_eq!(means.len(), self.dim(), "means width mismatch");
        assert_eq!(stds.len(), self.dim(), "stds width mismatch");
        for r in 0..self.x.rows() {
            for c in 0..self.x.cols() {
                self.x[(r, c)] = (self.x[(r, c)] - means[c]) / stds[c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let x = Matrix::from_fn(10, 3, |r, c| (r * 3 + c) as f32);
        let y = (0..10).map(|i| i % 2).collect();
        Dataset::new(x, y, 2)
    }

    #[test]
    fn subset_selects() {
        let d = toy();
        let s = d.subset(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0, 1]);
        assert_eq!(s.x.row(1), d.x.row(9));
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(60);
        let (tr, te) = d.split(0.7, &mut rng);
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(tr.len(), 7);
    }

    #[test]
    fn stratified_split_keeps_proportions() {
        let x = Matrix::zeros(100, 2);
        let y: Vec<usize> = (0..100).map(|i| usize::from(i >= 80)).collect();
        let d = Dataset::new(x, y, 2);
        let mut rng = StdRng::seed_from_u64(61);
        let (tr, te) = d.split_stratified(0.5, &mut rng);
        assert_eq!(tr.class_counts(), vec![40, 10]);
        assert_eq!(te.class_counts(), vec![40, 10]);
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let mut d = toy();
        let (means, stds) = d.standardize();
        assert_eq!(means.len(), 3);
        for c in 0..3 {
            let col = d.x.col(c);
            let m: f32 = col.iter().sum::<f32>() / col.len() as f32;
            let v: f32 = col.iter().map(|x| (x - m).powi(2)).sum::<f32>() / col.len() as f32;
            assert!(m.abs() < 1e-5, "mean {m}");
            assert!((v - 1.0).abs() < 1e-4, "var {v}");
        }
        assert!(stds.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn apply_external_standardization() {
        let mut train = toy();
        let mut test = toy();
        let (m, s) = train.standardize();
        test.apply_standardization(&m, &s);
        assert!(train.x.approx_eq(&test.x, 1e-6));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn new_rejects_bad_labels() {
        let _ = Dataset::new(Matrix::zeros(1, 1), vec![5], 2);
    }

    #[test]
    fn class_counts_sum_to_len() {
        let d = toy();
        assert_eq!(d.class_counts().iter().sum::<usize>(), d.len());
    }
}
