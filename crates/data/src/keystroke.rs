//! Synthetic keystroke-biometrics cohort for user identification (§IV-B).
//!
//! DEEPSERVICE identifies *who* is typing from the same multi-view metadata
//! DeepMood uses. The generator draws one persistent [`TypingProfile`] per
//! user with controlled between-user separation, then samples sessions with
//! natural within-user variation. Increasing the user count increases
//! between-user pattern overlap, reproducing the Table I degradation from
//! 10 to 26 users.

use crate::biaffect::personal_profile;
use crate::dataset::Dataset;
use crate::typing::{featurize_session, TypingProfile, TypingSession, FEATURE_DIM};
use mdl_tensor::init::gaussian;
use mdl_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic keystroke cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeConfig {
    /// Number of users to enrol (Table I evaluates 10 and 26).
    pub users: usize,
    /// Sessions per user.
    pub sessions_per_user: usize,
    /// Scales how far apart user signatures are (1.0 = calibrated default).
    pub user_separation: f32,
}

impl Default for KeystrokeConfig {
    fn default() -> Self {
        Self { users: 10, sessions_per_user: 80, user_separation: 1.0 }
    }
}

/// One session labelled with its author.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSession {
    /// User index in `0..users`.
    pub user: usize,
    /// The session's multi-view metadata.
    pub session: TypingSession,
}

/// The generated cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeDataset {
    /// All sessions, user-major order.
    pub sessions: Vec<UserSession>,
    /// The configuration used to generate the data.
    pub config: KeystrokeConfig,
}

/// Number of usage contexts a user types in (seated / walking / reclined).
pub const CONTEXTS: usize = 3;

/// Derives the profile a user exhibits in one usage context.
///
/// Context effects have a population-level direction (walking shakes the
/// accelerometer and slows typing for everyone) but a **user-specific
/// magnitude** — the per-user context response is part of the biometric
/// signature, and it makes the class-conditional feature distributions
/// multi-modal (each user is a mixture over contexts).
fn context_profile(base: &TypingProfile, context: usize, response: f32) -> TypingProfile {
    let r = response;
    match context {
        // seated: the neutral baseline
        0 => base.clone(),
        // walking: strong periodic accelerometer energy, slower typing
        1 => TypingProfile {
            mean_iki: base.mean_iki * (1.0 + 0.30 * r),
            keys_per_session: base.keys_per_session * (1.0 - 0.25 * r).max(0.3),
            accel_std: base.accel_std * (1.5 + 1.5 * r),
            accel_freq: base.accel_freq * (1.3 + 0.5 * r),
            ..base.clone()
        },
        // reclined: rotated grip, damped motion, slightly faster typing
        _ => TypingProfile {
            mean_iki: base.mean_iki * (1.0 - 0.12 * r).max(0.3),
            accel_base: [
                base.accel_base[1] + 0.3 * r,
                base.accel_base[2] * (0.5 + 0.2 * r),
                base.accel_base[0] + 6.0,
            ],
            accel_std: base.accel_std * (0.8 - 0.3 * r).max(0.2),
            ..base.clone()
        },
    }
}

/// Interpolates a profile toward the population default, shrinking
/// between-user separation when `separation < 1`.
fn blend_toward_default(profile: TypingProfile, separation: f32) -> TypingProfile {
    let base = TypingProfile::default();
    let s = separation;
    // first-moment parameters are shrunk harder: simple per-session means
    // are exactly what traditional feature pipelines read, and real users
    // overlap heavily there — identity lives more in rhythm, error habits
    // and temporal burst structure
    let s_mean = 0.35 * s;
    let lerp = |a: f32, b: f32| b + (a - b) * s;
    let lerp_mean = |a: f32, b: f32| b + (a - b) * s_mean;
    TypingProfile {
        mean_duration: lerp_mean(profile.mean_duration, base.mean_duration),
        mean_iki: lerp_mean(profile.mean_iki, base.mean_iki),
        rhythm_std: lerp(profile.rhythm_std, base.rhythm_std),
        keys_per_session: lerp_mean(profile.keys_per_session, base.keys_per_session),
        special_rates: std::array::from_fn(|i| {
            lerp(profile.special_rates[i], base.special_rates[i])
        }),
        key_travel: [
            lerp(profile.key_travel[0], base.key_travel[0]),
            lerp(profile.key_travel[1], base.key_travel[1]),
        ],
        accel_base: [
            lerp(profile.accel_base[0], base.accel_base[0]),
            lerp(profile.accel_base[1], base.accel_base[1]),
            lerp(profile.accel_base[2], base.accel_base[2]),
        ],
        accel_std: lerp(profile.accel_std, base.accel_std),
        accel_freq: lerp(profile.accel_freq, base.accel_freq),
        accel_axis_gains: [
            lerp(profile.accel_axis_gains[0], base.accel_axis_gains[0]),
            lerp(profile.accel_axis_gains[1], base.accel_axis_gains[1]),
            lerp(profile.accel_axis_gains[2], base.accel_axis_gains[2]),
        ],
        burst_persistence: lerp(profile.burst_persistence, base.burst_persistence),
        burst_ratio: lerp(profile.burst_ratio, base.burst_ratio),
    }
}

impl KeystrokeDataset {
    /// Generates the cohort.
    ///
    /// # Panics
    ///
    /// Panics if `users` or `sessions_per_user` is zero.
    pub fn generate(config: &KeystrokeConfig, rng: &mut impl Rng) -> Self {
        assert!(config.users > 0, "need at least one user");
        assert!(config.sessions_per_user > 0, "need at least one session per user");
        let mut sessions = Vec::with_capacity(config.users * config.sessions_per_user);
        for user in 0..config.users {
            let base = blend_toward_default(personal_profile(rng), config.user_separation);
            // user-specific context responses: how strongly walking /
            // reclining reshapes this user's dynamics
            let responses: [f32; CONTEXTS] = [
                1.0,
                (1.0 + gaussian(rng) * 0.5 * config.user_separation).clamp(0.2, 2.5),
                (1.0 + gaussian(rng) * 0.5 * config.user_separation).clamp(0.2, 2.5),
            ];
            let contexts: Vec<TypingProfile> =
                (0..CONTEXTS).map(|c| context_profile(&base, c, responses[c])).collect();
            for _ in 0..config.sessions_per_user {
                let profile = &contexts[rng.gen_range(0..CONTEXTS)];
                // per-session drift: mood, fatigue, posture and grip all move
                // the observable signature substantially between sessions, so
                // session-level summary statistics overlap across users
                let mut special = profile.special_rates;
                for v in &mut special {
                    *v *= (gaussian(rng) * 0.35).exp();
                }
                let drift = TypingProfile {
                    mean_iki: profile.mean_iki * (gaussian(rng) * 0.10).exp(),
                    mean_duration: profile.mean_duration * (gaussian(rng) * 0.08).exp(),
                    rhythm_std: profile.rhythm_std * (gaussian(rng) * 0.12).exp(),
                    keys_per_session: profile.keys_per_session * (gaussian(rng) * 0.30).exp(),
                    special_rates: special,
                    accel_std: profile.accel_std * (gaussian(rng) * 0.15).exp(),
                    accel_base: [
                        profile.accel_base[0] + gaussian(rng) * 0.1,
                        profile.accel_base[1] + gaussian(rng) * 0.1,
                        profile.accel_base[2] + gaussian(rng) * 0.05,
                    ],
                    ..profile.clone()
                };
                sessions.push(UserSession { user, session: drift.generate_session(rng) });
            }
        }
        Self { sessions, config: config.clone() }
    }

    /// Total session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions were generated.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Flattens sessions into summary features labelled by user.
    pub fn to_feature_dataset(&self) -> Dataset {
        let n = self.sessions.len();
        let mut x = Matrix::zeros(n, FEATURE_DIM);
        let mut y = Vec::with_capacity(n);
        for (r, s) in self.sessions.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&featurize_session(&s.session));
            y.push(s.user);
        }
        Dataset::new(x, y, self.config.users)
    }

    /// Restricts the cohort to a pair of users, relabelled `{0, 1}` — the
    /// binary identification scenario (husband/wife sharing a phone).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either user does not exist.
    pub fn pair(&self, a: usize, b: usize) -> KeystrokeDataset {
        assert!(a != b, "pair requires two distinct users");
        assert!(a < self.config.users && b < self.config.users, "user out of range");
        let sessions: Vec<UserSession> = self
            .sessions
            .iter()
            .filter(|s| s.user == a || s.user == b)
            .map(|s| UserSession { user: usize::from(s.user == b), session: s.session.clone() })
            .collect();
        KeystrokeDataset { sessions, config: KeystrokeConfig { users: 2, ..self.config.clone() } }
    }

    /// Random per-user split of the sessions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(
        &self,
        train_fraction: f64,
        rng: &mut impl Rng,
    ) -> (Vec<UserSession>, Vec<UserSession>) {
        use rand::seq::SliceRandom;
        assert!(train_fraction > 0.0 && train_fraction < 1.0, "train_fraction must be in (0, 1)");
        let mut train = Vec::new();
        let mut test = Vec::new();
        for u in 0..self.config.users {
            let mut mine: Vec<&UserSession> =
                self.sessions.iter().filter(|s| s.user == u).collect();
            mine.shuffle(rng);
            let cut = ((mine.len() as f64) * train_fraction).round() as usize;
            for (i, s) in mine.into_iter().enumerate() {
                if i < cut {
                    train.push(s.clone());
                } else {
                    test.push(s.clone());
                }
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> KeystrokeConfig {
        KeystrokeConfig { users: 5, sessions_per_user: 20, ..Default::default() }
    }

    #[test]
    fn generates_expected_counts() {
        let mut rng = StdRng::seed_from_u64(100);
        let d = KeystrokeDataset::generate(&small(), &mut rng);
        assert_eq!(d.len(), 100);
        let f = d.to_feature_dataset();
        assert_eq!(f.classes, 5);
        assert_eq!(f.class_counts(), vec![20; 5]);
    }

    #[test]
    fn users_are_distinguishable_by_nearest_centroid() {
        let mut rng = StdRng::seed_from_u64(101);
        let d = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 5, sessions_per_user: 40, ..Default::default() },
            &mut rng,
        );
        let mut f = d.to_feature_dataset();
        f.standardize();
        let counts = f.class_counts();
        let dim = f.dim();
        let mut centroids = vec![vec![0.0f32; dim]; 5];
        for i in 0..f.len() {
            for (j, c) in centroids[f.y[i]].iter_mut().enumerate() {
                *c += f.x[(i, j)] / counts[f.y[i]] as f32;
            }
        }
        let mut correct = 0;
        for i in 0..f.len() {
            let mut best = (f32::MAX, 0usize);
            for (c, centroid) in centroids.iter().enumerate() {
                let dist: f32 = (0..dim).map(|j| (f.x[(i, j)] - centroid[j]).powi(2)).sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == f.y[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / f.len() as f64;
        assert!(acc > 0.5, "users should be broadly separable: {acc}");
    }

    #[test]
    fn pair_relabels_binary() {
        let mut rng = StdRng::seed_from_u64(102);
        let d = KeystrokeDataset::generate(&small(), &mut rng);
        let p = d.pair(1, 3);
        assert_eq!(p.len(), 40);
        assert_eq!(p.config.users, 2);
        assert!(p.sessions.iter().all(|s| s.user < 2));
        assert_eq!(p.sessions.iter().filter(|s| s.user == 1).count(), 20);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_rejects_same_user() {
        let mut rng = StdRng::seed_from_u64(103);
        let d = KeystrokeDataset::generate(&small(), &mut rng);
        let _ = d.pair(2, 2);
    }

    #[test]
    fn split_is_per_user() {
        let mut rng = StdRng::seed_from_u64(104);
        let d = KeystrokeDataset::generate(&small(), &mut rng);
        let (train, test) = d.split(0.8, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        for u in 0..5 {
            assert_eq!(train.iter().filter(|s| s.user == u).count(), 16);
        }
    }

    #[test]
    fn lower_separation_shrinks_profile_spread() {
        let mut rng = StdRng::seed_from_u64(105);
        let tight = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 8, sessions_per_user: 10, user_separation: 0.1 },
            &mut rng,
        );
        let wide = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 8, sessions_per_user: 10, user_separation: 1.0 },
            &mut rng,
        );
        let iki_spread = |d: &KeystrokeDataset| {
            let per_user: Vec<f32> = (0..8)
                .map(|u| {
                    let mine: Vec<&UserSession> =
                        d.sessions.iter().filter(|s| s.user == u).collect();
                    let (mut tot, mut n) = (0.0f32, 0usize);
                    for s in &mine {
                        tot += s.session.alphanumeric.col(1).iter().sum::<f32>();
                        n += s.session.alphanumeric.rows();
                    }
                    tot / n as f32
                })
                .collect();
            mdl_tensor::stats::std_dev(&per_user)
        };
        assert!(iki_spread(&tight) < iki_spread(&wide), "separation should widen spread");
    }
}
