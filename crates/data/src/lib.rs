//! # mdl-data
//!
//! Data substrate for the `mobile-dl` workspace: labelled [`Dataset`]s,
//! classification [`metrics`], synthetic benchmark tasks, federated
//! [`partition`]ers and — most importantly — generative simulators for the
//! two private mobile datasets the paper evaluates on:
//!
//! - [`biaffect`]: mood-modulated typing dynamics standing in for the
//!   BiAffect clinical study (DeepMood, §IV-A);
//! - [`keystroke`]: per-user typing-signature cohorts standing in for the
//!   DEEPSERVICE volunteer data (§IV-B, Table I).
//!
//! Both simulators share the session model in [`typing`]: alphanumeric
//! keypress metadata, one-hot special keys and a 60 ms accelerometer stream,
//! exactly the three views the paper's models fuse.
//!
//! # Examples
//!
//! ```
//! use mdl_data::biaffect::{BiAffectConfig, BiAffectDataset};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = BiAffectConfig { participants: 3, sessions_per_participant: 5, ..Default::default() };
//! let cohort = BiAffectDataset::generate(&cfg, &mut rng);
//! assert_eq!(cohort.len(), 15);
//! ```

#![warn(missing_docs)]

pub mod biaffect;
pub mod dataset;
pub mod keystroke;
pub mod metrics;
pub mod partition;
pub mod synthetic;
pub mod typing;

pub use dataset::Dataset;
pub use metrics::ConfusionMatrix;
pub use partition::{partition_dataset, Partition};

#[cfg(test)]
mod proptests {
    use crate::dataset::Dataset;
    use crate::metrics::ConfusionMatrix;
    use crate::partition::{partition_dataset, Partition};
    use crate::synthetic::gaussian_blobs;
    use mdl_tensor::Matrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn split_conserves_examples(n in 10usize..100, frac in 0.2f64..0.8, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = Dataset::new(Matrix::zeros(n, 2), (0..n).map(|i| i % 3).collect(), 3);
            let (tr, te) = d.split(frac, &mut rng);
            prop_assert_eq!(tr.len() + te.len(), n);
            prop_assert!(!tr.is_empty());
        }

        #[test]
        fn confusion_matrix_total_matches(n in 1usize..200, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let truth: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let pred: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let cm = ConfusionMatrix::from_predictions(&truth, &pred, 4);
            prop_assert_eq!(cm.total(), n);
            prop_assert!(cm.accuracy() >= 0.0 && cm.accuracy() <= 1.0);
            prop_assert!(cm.macro_f1() >= 0.0 && cm.macro_f1() <= 1.0);
        }

        #[test]
        fn partitions_conserve_and_fill(clients in 2usize..12, seed in 0u64..30) {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = gaussian_blobs(120, 4, 0.3, &mut rng);
            for p in [Partition::Iid, Partition::LabelShards, Partition::Dirichlet(0.5)] {
                let parts = partition_dataset(&d, clients, p, &mut rng);
                prop_assert_eq!(parts.len(), clients);
                prop_assert_eq!(parts.iter().map(|q| q.len()).sum::<usize>(), d.len());
                prop_assert!(parts.iter().all(|q| !q.is_empty()));
            }
        }
    }
}
