//! Classification metrics: accuracy, confusion matrix, precision/recall/F1.

/// A `classes × classes` confusion matrix (`rows = truth`, `cols = prediction`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix from label/prediction pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or contain out-of-range values.
    pub fn from_predictions(truth: &[usize], pred: &[usize], classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len(), "one prediction per label required");
        let mut counts = vec![0usize; classes * classes];
        for (&t, &p) in truth.iter().zip(pred.iter()) {
            assert!(t < classes && p < classes, "label or prediction out of range");
            counts[t * classes + p] += 1;
        }
        Self { classes, counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count at `(truth, prediction)`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.classes + pred]
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy; `0.0` for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of class `c` (`0.0` when the class was never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: usize = (0..self.classes).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / predicted as f64
        }
    }

    /// Recall of class `c` (`0.0` when the class never occurs).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: usize = (0..self.classes).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / actual as f64
        }
    }

    /// F1 score of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 scores.
    pub fn macro_f1(&self) -> f64 {
        (0..self.classes).map(|c| self.f1(c)).sum::<f64>() / self.classes.max(1) as f64
    }

    /// Support-weighted mean of per-class F1 scores.
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.classes)
            .map(|c| {
                let support: usize = (0..self.classes).map(|p| self.count(c, p)).sum();
                self.f1(c) * support as f64
            })
            .sum::<f64>()
            / total as f64
    }
}

/// Fraction of matching positions in two label sequences.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "one prediction per label required");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(pred.iter()).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Macro-averaged F1 over `classes` classes.
pub fn macro_f1(truth: &[usize], pred: &[usize], classes: usize) -> f64 {
    ConfusionMatrix::from_predictions(truth, pred, classes).macro_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [0, 1, 2, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&y, &y, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
    }

    #[test]
    fn known_confusion() {
        // truth: [0,0,1,1], pred: [0,1,1,1]
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.accuracy(), 0.75);
        assert_eq!(cm.precision(0), 1.0);
        assert_eq!(cm.recall(0), 0.5);
        assert!((cm.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1), 1.0);
        assert!((cm.f1(1) - 0.8).abs() < 1e-12);
        assert!((cm.macro_f1() - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_scores_zero() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn weighted_f1_reflects_support() {
        // class 0 has 9 examples all correct, class 1 has 1 example wrong
        let truth = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 2);
        assert!(cm.weighted_f1() > cm.macro_f1());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[7], 2);
    }
}
