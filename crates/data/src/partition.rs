//! Federated data partitioners (§II): how a central dataset is distributed
//! across simulated mobile clients.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// How to distribute examples across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Uniformly random — every client sees the global distribution.
    Iid,
    /// Pathological non-IID from the FedAvg paper: sort by label, cut into
    /// `2 × clients` shards, deal two shards per client (most clients see
    /// only a couple of classes).
    LabelShards,
    /// Dirichlet(α) label distribution per client; small α is highly skewed.
    Dirichlet(
        /// Concentration parameter; `0.1` is highly non-IID, `100` ≈ IID.
        f64,
    ),
}

/// Splits `data` into `clients` local datasets according to `partition`.
///
/// Every example is assigned to exactly one client and no client is empty
/// (a round-robin fix-up donates examples to empty clients if needed).
///
/// # Panics
///
/// Panics if `clients == 0` or `clients > data.len()`.
pub fn partition_dataset(
    data: &Dataset,
    clients: usize,
    partition: Partition,
    rng: &mut impl Rng,
) -> Vec<Dataset> {
    assert!(clients > 0, "need at least one client");
    assert!(clients <= data.len(), "more clients than examples");
    let assignments: Vec<Vec<usize>> = match partition {
        Partition::Iid => {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(rng);
            chunk_indices(&order, clients)
        }
        Partition::LabelShards => {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.sort_by_key(|&i| data.y[i]);
            let shards = chunk_indices(&order, 2 * clients);
            let mut shard_order: Vec<usize> = (0..shards.len()).collect();
            shard_order.shuffle(rng);
            (0..clients)
                .map(|c| {
                    let mut mine = shards[shard_order[2 * c]].clone();
                    mine.extend_from_slice(&shards[shard_order[2 * c + 1]]);
                    mine
                })
                .collect()
        }
        Partition::Dirichlet(alpha) => {
            assert!(alpha > 0.0, "Dirichlet concentration must be positive");
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); clients];
            for class in 0..data.classes {
                let mut members: Vec<usize> =
                    (0..data.len()).filter(|&i| data.y[i] == class).collect();
                members.shuffle(rng);
                let weights = dirichlet(alpha, clients, rng);
                // convert weights to cumulative counts
                let mut start = 0usize;
                let mut acc = 0.0f64;
                for (c, &w) in weights.iter().enumerate() {
                    acc += w;
                    let end = if c + 1 == clients {
                        members.len()
                    } else {
                        ((members.len() as f64) * acc).round() as usize
                    };
                    buckets[c].extend_from_slice(&members[start..end.min(members.len())]);
                    start = end.min(members.len());
                }
            }
            buckets
        }
    };

    let mut assignments = assignments;
    rebalance_empty(&mut assignments);
    assignments.iter().map(|idx| data.subset(idx)).collect()
}

/// Splits an index list into `k` nearly equal contiguous chunks.
fn chunk_indices(order: &[usize], k: usize) -> Vec<Vec<usize>> {
    let n = order.len();
    (0..k)
        .map(|c| {
            let start = c * n / k;
            let end = (c + 1) * n / k;
            order[start..end].to_vec()
        })
        .collect()
}

/// Ensures no chunk is empty by donating from the largest chunk.
fn rebalance_empty(chunks: &mut [Vec<usize>]) {
    loop {
        let Some(empty) = chunks.iter().position(|c| c.is_empty()) else {
            return;
        };
        let largest =
            (0..chunks.len()).max_by_key(|&i| chunks[i].len()).expect("at least one chunk");
        if chunks[largest].len() <= 1 {
            return; // cannot donate without emptying the donor
        }
        let moved = chunks[largest].pop().expect("largest chunk non-empty");
        chunks[empty].push(moved);
    }
}

/// Samples from a symmetric Dirichlet(α) via normalised Gamma draws
/// (Marsaglia–Tsang for shape ≥ 1, boost trick below 1).
fn dirichlet(alpha: f64, k: usize, rng: &mut impl Rng) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

fn gamma_sample(shape: f64, rng: &mut impl Rng) -> f64 {
    if shape < 1.0 {
        // Johnk/boost: Gamma(a) = Gamma(a+1) * U^{1/a}
        let u: f64 = rng.gen::<f64>().max(1e-12);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    // Marsaglia–Tsang squeeze
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = mdl_tensor::init::gaussian(rng) as f64;
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Average label-distribution distance from the global distribution —
/// a scalar measure of how non-IID a partition is (0 = perfectly IID).
pub fn non_iid_score(parts: &[Dataset], classes: usize) -> f64 {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let mut global = vec![0.0f64; classes];
    for p in parts {
        for &y in &p.y {
            global[y] += 1.0;
        }
    }
    for g in &mut global {
        *g /= total as f64;
    }
    let mut score = 0.0f64;
    for p in parts {
        let mut local = vec![0.0f64; classes];
        for &y in &p.y {
            local[y] += 1.0 / p.len() as f64;
        }
        let l1: f64 = local.iter().zip(global.iter()).map(|(a, b)| (a - b).abs()).sum();
        score += l1 * p.len() as f64 / total as f64;
    }
    score / 2.0 // total-variation style normalisation to [0, 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_digits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn digits(rng: &mut StdRng) -> Dataset {
        synthetic_digits(500, 0.1, rng)
    }

    #[test]
    fn iid_partition_covers_everything() {
        let mut rng = StdRng::seed_from_u64(110);
        let d = digits(&mut rng);
        let parts = partition_dataset(&d, 10, Partition::Iid, &mut rng);
        assert_eq!(parts.len(), 10);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), d.len());
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn label_shards_are_more_skewed_than_iid() {
        let mut rng = StdRng::seed_from_u64(111);
        let d = digits(&mut rng);
        let iid = partition_dataset(&d, 10, Partition::Iid, &mut rng);
        let shards = partition_dataset(&d, 10, Partition::LabelShards, &mut rng);
        let s_iid = non_iid_score(&iid, 10);
        let s_shards = non_iid_score(&shards, 10);
        assert!(s_shards > s_iid + 0.2, "shards score {s_shards} should exceed IID score {s_iid}");
    }

    #[test]
    fn dirichlet_alpha_controls_skew() {
        let mut rng = StdRng::seed_from_u64(112);
        let d = digits(&mut rng);
        let skewed = partition_dataset(&d, 10, Partition::Dirichlet(0.1), &mut rng);
        let mild = partition_dataset(&d, 10, Partition::Dirichlet(100.0), &mut rng);
        assert!(non_iid_score(&skewed, 10) > non_iid_score(&mild, 10));
        assert_eq!(skewed.iter().map(|p| p.len()).sum::<usize>(), d.len());
        assert!(skewed.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn dirichlet_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(113);
        for &alpha in &[0.1, 1.0, 10.0] {
            let w = dirichlet(alpha, 8, &mut rng);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_approximates_shape() {
        let mut rng = StdRng::seed_from_u64(114);
        for &shape in &[0.5f64, 2.0, 7.5] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma_sample(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() / shape < 0.15, "shape {shape}: sample mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "more clients than examples")]
    fn too_many_clients_panics() {
        let mut rng = StdRng::seed_from_u64(115);
        let d = synthetic_digits(5, 0.1, &mut rng);
        let _ = partition_dataset(&d, 10, Partition::Iid, &mut rng);
    }
}
