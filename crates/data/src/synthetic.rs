//! Synthetic benchmark tasks used by the training-side experiments.
//!
//! The federated and compression experiments need a classification workload
//! that (a) a small MLP can learn well, (b) is cheap to generate in any
//! volume, and (c) can be partitioned non-IID by label. Synthetic 8×8 digit
//! glyphs play the role MNIST plays in the original papers.

use crate::dataset::Dataset;
use mdl_tensor::init::gaussian;
use mdl_tensor::Matrix;
use rand::Rng;

/// Isotropic Gaussian blobs: class `c` is centred on a circle of radius 3.
pub fn gaussian_blobs(n: usize, classes: usize, noise: f32, rng: &mut impl Rng) -> Dataset {
    assert!(classes >= 2, "need at least two classes");
    let mut x = Matrix::zeros(n, 2);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        let angle = 2.0 * std::f32::consts::PI * c as f32 / classes as f32;
        x[(i, 0)] = 3.0 * angle.cos() + gaussian(rng) * noise;
        x[(i, 1)] = 3.0 * angle.sin() + gaussian(rng) * noise;
        y.push(c);
    }
    Dataset::new(x, y, classes)
}

/// Two interleaved spirals — a classic nonlinear benchmark.
pub fn two_spirals(n: usize, noise: f32, rng: &mut impl Rng) -> Dataset {
    let mut x = Matrix::zeros(n, 2);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let t = 0.5 + 3.0 * (i / 2) as f32 / (n / 2).max(1) as f32 * std::f32::consts::PI;
        let sign = if label == 0 { 1.0 } else { -1.0 };
        x[(i, 0)] = sign * t * t.cos() + gaussian(rng) * noise;
        x[(i, 1)] = sign * t * t.sin() + gaussian(rng) * noise;
        y.push(label);
    }
    Dataset::new(x, y, 2)
}

/// 8×8 binary glyph stencils for the ten digits (row-major, `#` = on).
const GLYPHS: [[&str; 8]; 10] = [
    [
        ".####...", "#....#..", "#...##..", "#..#.#..", "#.#..#..", "##...#..", "#....#..",
        ".####...",
    ],
    [
        "...#....", "..##....", ".#.#....", "...#....", "...#....", "...#....", "...#....",
        ".#####..",
    ],
    [
        ".####...", "#....#..", ".....#..", "....#...", "...#....", "..#.....", ".#......",
        "######..",
    ],
    [
        ".####...", "#....#..", ".....#..", "..###...", ".....#..", ".....#..", "#....#..",
        ".####...",
    ],
    [
        "....##..", "...#.#..", "..#..#..", ".#...#..", "######..", ".....#..", ".....#..",
        ".....#..",
    ],
    [
        "######..", "#.......", "#.......", "#####...", ".....#..", ".....#..", "#....#..",
        ".####...",
    ],
    [
        ".####...", "#....#..", "#.......", "#####...", "#....#..", "#....#..", "#....#..",
        ".####...",
    ],
    [
        "######..", ".....#..", "....#...", "...#....", "..#.....", "..#.....", "..#.....",
        "..#.....",
    ],
    [
        ".####...", "#....#..", "#....#..", ".####...", "#....#..", "#....#..", "#....#..",
        ".####...",
    ],
    [
        ".####...", "#....#..", "#....#..", ".#####..", ".....#..", ".....#..", "#....#..",
        ".####...",
    ],
];

/// Synthetic handwritten-digit-like task: noisy, jittered 8×8 glyphs
/// (64 features in `[0, 1]`, 10 classes).
///
/// Each example shifts its glyph by up to one pixel in each direction, then
/// adds pixel dropout and Gaussian noise, giving enough within-class variance
/// that shallow models do not saturate instantly.
pub fn synthetic_digits(n: usize, noise: f32, rng: &mut impl Rng) -> Dataset {
    let mut x = Matrix::zeros(n, 64);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let digit = rng.gen_range(0..10usize);
        let dx = rng.gen_range(-1i32..=1);
        let dy = rng.gen_range(-1i32..=1);
        for r in 0..8i32 {
            for c in 0..8i32 {
                let sr = r - dy;
                let sc = c - dx;
                let on = if (0..8).contains(&sr) && (0..8).contains(&sc) {
                    GLYPHS[digit][sr as usize].as_bytes()[sc as usize] == b'#'
                } else {
                    false
                };
                let mut v = if on { 1.0 } else { 0.0 };
                if on && rng.gen::<f32>() < 0.08 {
                    v = 0.0; // pixel dropout
                }
                v += gaussian(rng) * noise;
                x[(i, (r * 8 + c) as usize)] = v.clamp(-0.5, 1.5);
            }
        }
        y.push(digit);
    }
    Dataset::new(x, y, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blobs_have_balanced_classes() {
        let mut rng = StdRng::seed_from_u64(70);
        let d = gaussian_blobs(300, 3, 0.2, &mut rng);
        let counts = d.class_counts();
        assert_eq!(counts, vec![100, 100, 100]);
        assert_eq!(d.dim(), 2);
    }

    #[test]
    fn blobs_are_roughly_separated() {
        let mut rng = StdRng::seed_from_u64(71);
        let d = gaussian_blobs(200, 2, 0.1, &mut rng);
        // class centres should be far apart relative to noise
        let mean_c = |cls: usize, dim: usize| {
            let (mut s, mut k) = (0.0f32, 0);
            for i in 0..d.len() {
                if d.y[i] == cls {
                    s += d.x[(i, dim)];
                    k += 1;
                }
            }
            s / k as f32
        };
        let dist =
            ((mean_c(0, 0) - mean_c(1, 0)).powi(2) + (mean_c(0, 1) - mean_c(1, 1)).powi(2)).sqrt();
        assert!(dist > 4.0, "class centres too close: {dist}");
    }

    #[test]
    fn spirals_have_two_classes() {
        let mut rng = StdRng::seed_from_u64(72);
        let d = two_spirals(100, 0.05, &mut rng);
        assert_eq!(d.classes, 2);
        assert_eq!(d.class_counts(), vec![50, 50]);
    }

    #[test]
    fn digits_cover_all_classes_and_range() {
        let mut rng = StdRng::seed_from_u64(73);
        let d = synthetic_digits(500, 0.1, &mut rng);
        assert_eq!(d.dim(), 64);
        assert_eq!(d.classes, 10);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c > 20), "unbalanced: {counts:?}");
        assert!(d.x.as_slice().iter().all(|v| (-0.5..=1.5).contains(v)));
    }

    #[test]
    fn digits_same_class_correlate_more_than_cross_class() {
        let mut rng = StdRng::seed_from_u64(74);
        let d = synthetic_digits(400, 0.05, &mut rng);
        // nearest-centroid self-consistency: per-class mean should classify
        // most examples correctly, showing class structure exists
        let mut centroids = vec![vec![0.0f32; 64]; 10];
        let counts = d.class_counts();
        for i in 0..d.len() {
            for (j, c) in centroids[d.y[i]].iter_mut().enumerate() {
                *c += d.x[(i, j)] / counts[d.y[i]] as f32;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let mut best = (f32::MAX, 0usize);
            for (c, centroid) in centroids.iter().enumerate() {
                let dist: f32 = (0..64).map(|j| (d.x[(i, j)] - centroid[j]).powi(2)).sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == d.y[i] {
                correct += 1;
            }
        }
        // jittered glyphs are deliberately hard for a plain centroid match;
        // anything far above the 10 % chance level shows class structure
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.4, "nearest-centroid accuracy too low: {acc}");
    }

    #[test]
    fn glyph_stencils_are_8x8() {
        for (digit, glyph) in GLYPHS.iter().enumerate() {
            for row in glyph {
                assert_eq!(row.len(), 8, "digit {digit} row has wrong width");
            }
        }
    }
}
