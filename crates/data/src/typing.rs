//! Shared typing-dynamics session model.
//!
//! Both applications in the paper (§IV) consume the same BiAffect-style
//! metadata: per-keypress timing of alphanumeric keys, one-hot special-key
//! events, and a dense 3-axis accelerometer stream sampled every 60 ms. A
//! [`TypingProfile`] captures the generative parameters of one
//! (participant, state) pair; [`TypingProfile::generate_session`] draws one
//! phone-usage session from it.

use mdl_tensor::init::gaussian;
use mdl_tensor::stats::pearson;
use mdl_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of special-key categories (paper §IV-A): auto-correct, backspace,
/// space, suggestion, switching-keyboard, other.
pub const SPECIAL_KEYS: usize = 6;

/// Channels of the alphanumeric view: key-hold duration, time since last
/// key, and the distance from the previous key along the two screen axes.
pub const ALPHANUMERIC_CHANNELS: usize = 4;

/// Channels of the accelerometer view (x, y, z).
pub const ACCEL_CHANNELS: usize = 3;

/// Generative parameters for one person's typing behaviour in one state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypingProfile {
    /// Mean key-hold duration in seconds.
    pub mean_duration: f32,
    /// Mean inter-key interval in seconds.
    pub mean_iki: f32,
    /// Multiplicative rhythm variability (log-normal sigma of the IKI).
    pub rhythm_std: f32,
    /// Mean keypresses per session.
    pub keys_per_session: f32,
    /// Per-keypress probability of each special key
    /// `[auto-correct, backspace, space, suggestion, switch, other]`.
    pub special_rates: [f32; SPECIAL_KEYS],
    /// Mean travel distance between keys (screen units), per axis.
    pub key_travel: [f32; 2],
    /// Baseline accelerometer offset per axis (device orientation habit).
    pub accel_base: [f32; ACCEL_CHANNELS],
    /// Accelerometer movement energy (tremor/activity level).
    pub accel_std: f32,
    /// Dominant hand-motion frequency in Hz (shows up as oscillation).
    pub accel_freq: f32,
    /// Per-axis share of the oscillation energy (grip/posture signature);
    /// this is what differentiates the axis correlations in Fig. 6.
    pub accel_axis_gains: [f32; ACCEL_CHANNELS],
    /// Probability of staying in the current burst/pause typing state from
    /// one keypress to the next. Burst structure is *temporal*: summary
    /// statistics barely see it, sequence models do.
    pub burst_persistence: f32,
    /// Speed ratio between burst and pause states (IKI multiplier).
    pub burst_ratio: f32,
}

impl Default for TypingProfile {
    fn default() -> Self {
        Self {
            mean_duration: 0.09,
            mean_iki: 0.28,
            rhythm_std: 0.35,
            keys_per_session: 40.0,
            special_rates: [0.04, 0.08, 0.16, 0.03, 0.02, 0.02],
            key_travel: [2.1, 1.3],
            accel_base: [0.0, 0.2, 9.6],
            accel_std: 0.45,
            accel_freq: 1.8,
            accel_axis_gains: [1.0, 0.7, 0.4],
            burst_persistence: 0.85,
            burst_ratio: 2.5,
        }
    }
}

/// One phone-usage session of multi-view typing metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypingSession {
    /// `T_a × 4` alphanumeric keypress features.
    pub alphanumeric: Matrix,
    /// `T_s × 6` one-hot special-key events.
    pub special: Matrix,
    /// `T_acc × 3` accelerometer samples (60 ms cadence, truncated).
    pub accelerometer: Matrix,
    /// Session duration in seconds.
    pub duration_secs: f32,
}

impl TypingSession {
    /// The three views in the order DeepMood consumes them.
    pub fn views(&self) -> [&Matrix; 3] {
        [&self.alphanumeric, &self.special, &self.accelerometer]
    }

    /// Total number of keypresses (alphanumeric + special).
    pub fn keypress_count(&self) -> usize {
        self.alphanumeric.rows() + self.special.rows()
    }
}

/// Cap on accelerometer timesteps kept per session, so BPTT stays tractable.
pub const MAX_ACCEL_STEPS: usize = 64;

impl TypingProfile {
    /// Draws one session from the profile.
    ///
    /// Sequence lengths vary with the profile's `keys_per_session`; at least
    /// four alphanumeric keys and one special key are always produced so
    /// every view is non-empty.
    pub fn generate_session(&self, rng: &mut impl Rng) -> TypingSession {
        let n_keys = (self.keys_per_session * (0.6 + 0.8 * rng.gen::<f32>())).round() as usize;
        let n_keys = n_keys.max(6);

        let special_total: f32 = self.special_rates.iter().sum();
        let mut alpha_rows: Vec<[f32; ALPHANUMERIC_CHANNELS]> = Vec::new();
        let mut special_rows: Vec<usize> = Vec::new();
        let mut clock = 0.0f32;
        // two-state burst/pause Markov chain over keypresses
        let mut bursting = rng.gen::<f32>() < 0.5;
        for _ in 0..n_keys {
            if rng.gen::<f32>() > self.burst_persistence {
                bursting = !bursting;
            }
            let pace = if bursting {
                1.0 / self.burst_ratio.max(1.0).sqrt()
            } else {
                self.burst_ratio.max(1.0).sqrt()
            };
            // inter-key interval: log-normal around mean_iki, burst-modulated
            let iki = self.mean_iki * pace * (gaussian(rng) * self.rhythm_std).exp();
            clock += iki.clamp(0.02, 4.9);
            if rng.gen::<f32>() < special_total {
                // pick a special key proportional to its rate
                let mut pick = rng.gen::<f32>() * special_total;
                let mut idx = SPECIAL_KEYS - 1;
                for (i, &r) in self.special_rates.iter().enumerate() {
                    if pick < r {
                        idx = i;
                        break;
                    }
                    pick -= r;
                }
                special_rows.push(idx);
            } else {
                let duration = (self.mean_duration * (gaussian(rng) * 0.25).exp()).clamp(0.02, 0.6);
                let dx = gaussian(rng) * self.key_travel[0];
                let dy = gaussian(rng) * self.key_travel[1];
                alpha_rows.push([duration, iki.min(4.9), dx, dy]);
            }
        }
        // guarantee non-empty views
        if alpha_rows.len() < 4 {
            for _ in alpha_rows.len()..4 {
                alpha_rows.push([self.mean_duration, self.mean_iki, 0.0, 0.0]);
            }
        }
        if special_rows.is_empty() {
            special_rows.push(2); // a lone space
        }

        let alphanumeric =
            Matrix::from_fn(alpha_rows.len(), ALPHANUMERIC_CHANNELS, |r, c| alpha_rows[r][c]);
        let mut special = Matrix::zeros(special_rows.len(), SPECIAL_KEYS);
        for (r, &k) in special_rows.iter().enumerate() {
            special[(r, k)] = 1.0;
        }

        // accelerometer: 60 ms cadence over the session, truncated
        let duration_secs = clock.max(1.0);
        let steps = ((duration_secs / 0.06) as usize).clamp(8, MAX_ACCEL_STEPS);
        let phase = rng.gen::<f32>() * std::f32::consts::TAU;
        let mut accelerometer = Matrix::zeros(steps, ACCEL_CHANNELS);
        for t in 0..steps {
            let time = t as f32 * 0.06;
            let osc = (self.accel_freq * std::f32::consts::TAU * time + phase).sin();
            for a in 0..ACCEL_CHANNELS {
                accelerometer[(t, a)] = self.accel_base[a]
                    + self.accel_std * self.accel_axis_gains[a] * osc
                    + gaussian(rng) * self.accel_std * 0.3;
            }
        }

        TypingSession { alphanumeric, special, accelerometer, duration_secs }
    }
}

/// Number of summary features produced by [`featurize_session`].
pub const FEATURE_DIM: usize =
    5 * ALPHANUMERIC_CHANNELS + 1 + SPECIAL_KEYS + 1 + 2 * ACCEL_CHANNELS + 3 + 1;

/// Flattens a session into fixed summary statistics for shallow baselines
/// (the LR/SVM/tree models of Table I operate on these).
///
/// Layout: per alphanumeric channel `mean, std, median, q25, q75`; key count;
/// normalised special-key histogram plus special count; accelerometer mean
/// and std per axis; the three pairwise axis correlations; session duration.
pub fn featurize_session(session: &TypingSession) -> Vec<f32> {
    use mdl_tensor::stats::{mean, median, quantile, std_dev};
    let mut out = Vec::with_capacity(FEATURE_DIM);
    for c in 0..ALPHANUMERIC_CHANNELS {
        let col = session.alphanumeric.col(c);
        out.push(mean(&col));
        out.push(std_dev(&col));
        out.push(median(&col));
        out.push(quantile(&col, 0.25));
        out.push(quantile(&col, 0.75));
    }
    out.push(session.alphanumeric.rows() as f32);

    let n_special = session.special.rows().max(1) as f32;
    for k in 0..SPECIAL_KEYS {
        out.push(session.special.col(k).iter().sum::<f32>() / n_special);
    }
    out.push(session.special.rows() as f32);

    let cols: Vec<Vec<f32>> = (0..ACCEL_CHANNELS).map(|a| session.accelerometer.col(a)).collect();
    for col in &cols {
        out.push(mean(col));
        out.push(std_dev(col));
    }
    out.push(pearson(&cols[0], &cols[1]));
    out.push(pearson(&cols[0], &cols[2]));
    out.push(pearson(&cols[1], &cols[2]));
    out.push(session.duration_secs);

    debug_assert_eq!(out.len(), FEATURE_DIM);
    out
}

/// Width of [`featurize_session_basic`].
pub const BASIC_FEATURE_DIM: usize =
    ALPHANUMERIC_CHANNELS + 1 + SPECIAL_KEYS + 1 + ACCEL_CHANNELS + 1;

/// A deliberately simple "traditional" feature set: per-channel means and
/// event counts only — the kind of representation classical pipelines fed
/// to LR/SVM/tree models before deep sequence models (used by the Table I
/// baselines; [`featurize_session`] is the richer statistical summary).
pub fn featurize_session_basic(session: &TypingSession) -> Vec<f32> {
    use mdl_tensor::stats::mean;
    let mut out = Vec::with_capacity(BASIC_FEATURE_DIM);
    for c in 0..ALPHANUMERIC_CHANNELS {
        out.push(mean(&session.alphanumeric.col(c)));
    }
    out.push(session.alphanumeric.rows() as f32);
    let n_special = session.special.rows().max(1) as f32;
    for k in 0..SPECIAL_KEYS {
        out.push(session.special.col(k).iter().sum::<f32>() / n_special);
    }
    out.push(session.special.rows() as f32);
    for a in 0..ACCEL_CHANNELS {
        out.push(mean(&session.accelerometer.col(a)));
    }
    out.push(session.duration_secs);
    debug_assert_eq!(out.len(), BASIC_FEATURE_DIM);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_features_have_fixed_width() {
        let mut rng = StdRng::seed_from_u64(86);
        let s = TypingProfile::default().generate_session(&mut rng);
        assert_eq!(featurize_session_basic(&s).len(), BASIC_FEATURE_DIM);
    }

    #[test]
    fn session_views_non_empty_and_shaped() {
        let mut rng = StdRng::seed_from_u64(80);
        let s = TypingProfile::default().generate_session(&mut rng);
        assert!(s.alphanumeric.rows() >= 4);
        assert_eq!(s.alphanumeric.cols(), ALPHANUMERIC_CHANNELS);
        assert!(s.special.rows() >= 1);
        assert_eq!(s.special.cols(), SPECIAL_KEYS);
        assert!(s.accelerometer.rows() >= 8);
        assert_eq!(s.accelerometer.cols(), ACCEL_CHANNELS);
        assert!(s.duration_secs > 0.0);
    }

    #[test]
    fn special_rows_are_one_hot() {
        let mut rng = StdRng::seed_from_u64(81);
        let s = TypingProfile::default().generate_session(&mut rng);
        for r in 0..s.special.rows() {
            let row = s.special.row(r);
            assert_eq!(row.iter().filter(|&&v| v == 1.0).count(), 1);
            assert_eq!(row.iter().sum::<f32>(), 1.0);
        }
    }

    #[test]
    fn slower_profile_has_longer_intervals() {
        let mut rng = StdRng::seed_from_u64(82);
        let fast = TypingProfile { mean_iki: 0.15, ..Default::default() };
        let slow = TypingProfile { mean_iki: 0.45, ..Default::default() };
        let avg_iki = |p: &TypingProfile, rng: &mut StdRng| {
            let mut total = 0.0f32;
            let mut n = 0usize;
            for _ in 0..20 {
                let s = p.generate_session(rng);
                total += s.alphanumeric.col(1).iter().sum::<f32>();
                n += s.alphanumeric.rows();
            }
            total / n as f32
        };
        let f = avg_iki(&fast, &mut rng);
        let s = avg_iki(&slow, &mut rng);
        assert!(s > f * 1.5, "slow={s} fast={f}");
    }

    #[test]
    fn featurize_has_fixed_width() {
        let mut rng = StdRng::seed_from_u64(83);
        for _ in 0..5 {
            let s = TypingProfile::default().generate_session(&mut rng);
            let f = featurize_session(&s);
            assert_eq!(f.len(), FEATURE_DIM);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn backspace_rate_shows_in_features() {
        let mut rng = StdRng::seed_from_u64(84);
        let heavy = TypingProfile {
            special_rates: [0.02, 0.30, 0.10, 0.02, 0.01, 0.01],
            ..Default::default()
        };
        let light = TypingProfile {
            special_rates: [0.02, 0.02, 0.10, 0.02, 0.01, 0.01],
            ..Default::default()
        };
        let backspace_share = |p: &TypingProfile, rng: &mut StdRng| {
            let mut acc = 0.0f32;
            for _ in 0..30 {
                let s = p.generate_session(rng);
                let f = featurize_session(&s);
                // backspace share is the second entry of the special histogram
                acc += f[5 * ALPHANUMERIC_CHANNELS + 1 + 1];
            }
            acc / 30.0
        };
        assert!(backspace_share(&heavy, &mut rng) > backspace_share(&light, &mut rng) * 2.0);
    }

    #[test]
    fn accel_steps_capped() {
        let mut rng = StdRng::seed_from_u64(85);
        let chatty = TypingProfile { keys_per_session: 500.0, ..Default::default() };
        let s = chatty.generate_session(&mut rng);
        assert!(s.accelerometer.rows() <= MAX_ACCEL_STEPS);
    }
}
