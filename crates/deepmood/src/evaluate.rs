//! Experiment harness for DeepMood over the synthetic BiAffect cohort:
//! session-level mood prediction and the per-participant analysis of the
//! paper's Fig. 5.

use crate::model::{DeepMood, DeepMoodConfig};
use crate::normalize::ViewNormalizer;
use mdl_data::biaffect::{BiAffectDataset, MoodSession, MOOD_CLASSES};
use mdl_data::metrics::ConfusionMatrix;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;

/// The three views' input widths in the BiAffect session model.
pub fn biaffect_view_dims() -> Vec<usize> {
    use mdl_data::typing::{ACCEL_CHANNELS, ALPHANUMERIC_CHANNELS, SPECIAL_KEYS};
    vec![ALPHANUMERIC_CHANNELS, SPECIAL_KEYS, ACCEL_CHANNELS]
}

/// Converts owned mood sessions into the model's `(views, label)` form.
pub fn as_training_pairs(sessions: &[MoodSession]) -> Vec<(Vec<&Matrix>, usize)> {
    sessions.iter().map(|s| (s.session.views().to_vec(), s.label)).collect()
}

/// Standardised `(views, label)` pairs for one data split.
pub type LabeledViews = Vec<(Vec<Matrix>, usize)>;

/// Fits a channel normalizer on training sessions and materialises
/// standardised `(views, label)` pairs for both splits.
pub fn normalized_pairs(
    train: &[MoodSession],
    test: &[MoodSession],
) -> (ViewNormalizer, LabeledViews, LabeledViews) {
    let train_views: Vec<Vec<&Matrix>> = train.iter().map(|s| s.session.views().to_vec()).collect();
    let norm = ViewNormalizer::fit(&train_views);
    let apply = |sessions: &[MoodSession]| {
        sessions.iter().map(|s| (norm.apply(&s.session.views()), s.label)).collect::<Vec<_>>()
    };
    let train_pairs = apply(train);
    let test_pairs = apply(test);
    (norm, train_pairs, test_pairs)
}

/// Borrows owned `(views, label)` pairs as the reference form the model
/// consumes.
pub fn borrow_pairs(pairs: &[(Vec<Matrix>, usize)]) -> Vec<(Vec<&Matrix>, usize)> {
    pairs.iter().map(|(v, y)| (v.iter().collect(), *y)).collect()
}

/// Result of one train/test evaluation.
#[derive(Debug)]
pub struct MoodEvaluation {
    /// Test-set accuracy.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// The fitted model (reusable for per-participant analysis).
    pub model: DeepMood,
}

impl MoodEvaluation {
    fn from_model(mut model: DeepMood, test: &[(Vec<&Matrix>, usize)]) -> MoodEvaluation {
        let pred = model.predictions(test);
        let truth: Vec<usize> = test.iter().map(|(_, y)| *y).collect();
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, MOOD_CLASSES);
        MoodEvaluation { accuracy: cm.accuracy(), macro_f1: cm.macro_f1(), model }
    }
}

/// Trains DeepMood on `train` sessions and evaluates on `test`.
pub fn train_and_evaluate(
    train: &[MoodSession],
    test: &[MoodSession],
    config: &DeepMoodConfig,
    rng: &mut StdRng,
) -> MoodEvaluation {
    let (_, train_owned, test_owned) = normalized_pairs(train, test);
    let train_pairs = borrow_pairs(&train_owned);
    let test_pairs = borrow_pairs(&test_owned);
    let mut model = DeepMood::new(&biaffect_view_dims(), config.clone(), rng);
    let _ = model.train(&train_pairs, rng);
    MoodEvaluation::from_model(model, &test_pairs)
}

/// One dot of Fig. 5: a participant's training-session count and the
/// model's accuracy on that participant's test sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticipantPoint {
    /// Participant index.
    pub participant: usize,
    /// Sessions this participant contributed to training.
    pub training_sessions: usize,
    /// Accuracy on this participant's held-out sessions.
    pub accuracy: f64,
}

/// Reproduces Fig. 5: per-participant accuracy against training volume.
///
/// Trains one shared model on everyone's training sessions, then scores
/// each participant's test sessions separately.
pub fn per_participant_analysis(
    cohort: &BiAffectDataset,
    train: &[MoodSession],
    test: &[MoodSession],
    config: &DeepMoodConfig,
    rng: &mut StdRng,
) -> Vec<ParticipantPoint> {
    let (norm, train_owned, _) = normalized_pairs(train, &[]);
    let train_pairs = borrow_pairs(&train_owned);
    let mut model = DeepMood::new(&biaffect_view_dims(), config.clone(), rng);
    let _ = model.train(&train_pairs, rng);

    (0..cohort.config.participants)
        .map(|p| {
            let mine: Vec<(Vec<Matrix>, usize)> = test
                .iter()
                .filter(|s| s.participant == p)
                .map(|s| (norm.apply(&s.session.views()), s.label))
                .collect();
            let pairs = borrow_pairs(&mine);
            let accuracy = model.accuracy(&pairs);
            ParticipantPoint {
                participant: p,
                training_sessions: train.iter().filter(|s| s.participant == p).count(),
                accuracy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FusionKind;
    use mdl_data::biaffect::BiAffectConfig;
    use rand::SeedableRng;

    fn small_cohort(rng: &mut StdRng) -> BiAffectDataset {
        BiAffectDataset::generate(
            &BiAffectConfig {
                participants: 8,
                sessions_per_participant: 40,
                mood_effect: 1.5,
                ..Default::default()
            },
            rng,
        )
    }

    #[test]
    fn deepmood_beats_chance_on_synthetic_biaffect() {
        let mut rng = StdRng::seed_from_u64(350);
        let cohort = small_cohort(&mut rng);
        let (train, test) = cohort.split(0.75, &mut rng);
        let eval = train_and_evaluate(
            &train,
            &test,
            &DeepMoodConfig {
                epochs: 10,
                hidden_dim: 8,
                fusion: FusionKind::FullyConnected { hidden: 16 },
                ..Default::default()
            },
            &mut rng,
        );
        assert!(eval.accuracy > 0.7, "accuracy {}", eval.accuracy);
        assert!(eval.macro_f1 > 0.6, "macro F1 {}", eval.macro_f1);
    }

    #[test]
    fn per_participant_points_cover_cohort() {
        let mut rng = StdRng::seed_from_u64(351);
        let cohort = small_cohort(&mut rng);
        let (train, test) = cohort.split(0.75, &mut rng);
        let points = per_participant_analysis(
            &cohort,
            &train,
            &test,
            &DeepMoodConfig { epochs: 4, hidden_dim: 5, ..Default::default() },
            &mut rng,
        );
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.training_sessions > 0);
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }
}
