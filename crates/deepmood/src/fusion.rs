//! Late-fusion output layers (paper Eqs. 2–4).
//!
//! All three heads consume the **concatenated** per-view GRU states
//! `h = [h⁽¹⁾; …; h⁽ᵐ⁾] ∈ R^d` and emit class scores; they differ in how
//! they model interactions between the views:
//!
//! - [`FullyConnectedFusion`] (Eq. 2): nonlinearity via a hidden ReLU layer;
//! - [`FactorizationMachineFusion`] (Eq. 3): explicit second-order feature
//!   interactions, `ŷ_a = Σ_f (U_a h)_f² + w_aᵀ[h; 1]`;
//! - [`MultiViewMachineFusion`] (Eq. 4): full up-to-`m`-th-order interactions
//!   across views, `ŷ_a = Σ_f Π_p (U_a⁽ᵖ⁾ [h⁽ᵖ⁾; 1])_f`.

use mdl_nn::{Activation, Dense, Layer, LayerInfo, Mode, Sequential};
use mdl_tensor::{Init, Matrix};
use rand::Rng;

/// Eq. 2: `q = relu(W⁽¹⁾ [h; 1])`, `ŷ = W⁽²⁾ q` — a standard MLP head.
#[derive(Debug)]
pub struct FullyConnectedFusion {
    net: Sequential,
    in_dim: usize,
    classes: usize,
}

impl FullyConnectedFusion {
    /// Creates the head with `hidden` units (the paper's `k'`).
    pub fn new(in_dim: usize, hidden: usize, classes: usize, rng: &mut impl Rng) -> Self {
        let mut net = Sequential::new();
        net.push(Dense::new(in_dim, hidden, Activation::Relu, rng));
        net.push(Dense::new(hidden, classes, Activation::Identity, rng));
        Self { net, in_dim, classes }
    }
}

impl Layer for FullyConnectedFusion {
    fn forward(&mut self, h: &Matrix, mode: Mode) -> Matrix {
        self.net.forward(h, mode)
    }

    fn forward_eval(&self, h: &Matrix) -> Matrix {
        self.net.forward_eval(h)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.net.visit_params(f);
    }

    fn info(&self) -> LayerInfo {
        LayerInfo {
            kind: "fusion-fc",
            in_dim: self.in_dim,
            out_dim: self.classes,
            params: self.net.info().params,
            macs: self.net.info().macs,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Eq. 3: per class `a`, `ŷ_a = Σ_f (U_a h)_f² + w_aᵀ [h; 1]`.
pub struct FactorizationMachineFusion {
    /// One `k × d` factor matrix per class.
    u: Vec<Matrix>,
    /// One `1 × (d+1)` linear weight per class.
    w: Vec<Matrix>,
    g_u: Vec<Matrix>,
    g_w: Vec<Matrix>,
    factors: usize,
    cache: Option<FmCache>,
}

struct FmCache {
    input: Matrix,
    /// `q[class]` is `n × k`.
    q: Vec<Matrix>,
}

impl std::fmt::Debug for FactorizationMachineFusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactorizationMachineFusion")
            .field("classes", &self.u.len())
            .field("factors", &self.factors)
            .finish()
    }
}

impl FactorizationMachineFusion {
    /// Creates the head with `factors` latent factors (the paper's `k`).
    pub fn new(in_dim: usize, factors: usize, classes: usize, rng: &mut impl Rng) -> Self {
        let init = Init::Normal { std: 0.1 };
        Self {
            u: (0..classes).map(|_| init.sample(factors, in_dim, rng)).collect(),
            w: (0..classes).map(|_| Matrix::zeros(1, in_dim + 1)).collect(),
            g_u: (0..classes).map(|_| Matrix::zeros(factors, in_dim)).collect(),
            g_w: (0..classes).map(|_| Matrix::zeros(1, in_dim + 1)).collect(),
            factors,
            cache: None,
        }
    }

    fn in_dim(&self) -> usize {
        self.u[0].cols()
    }

    /// Class scores plus the per-class latent projections `q = h · Uᵀ`.
    fn score(&self, h: &Matrix) -> (Matrix, Vec<Matrix>) {
        let d = self.in_dim();
        assert_eq!(h.cols(), d, "FM fusion input width mismatch");
        let classes = self.u.len();
        let mut out = Matrix::zeros(h.rows(), classes);
        let mut q_all = Vec::with_capacity(classes);
        for (a, (u, w)) in self.u.iter().zip(self.w.iter()).enumerate() {
            // q = h · Uᵀ  (n × k)
            let q = h.matmul_nt(u);
            for r in 0..h.rows() {
                let quad: f32 = q.row(r).iter().map(|v| v * v).sum();
                let lin: f32 =
                    h.row(r).iter().zip(w.row(0)[..d].iter()).map(|(&x, &wi)| x * wi).sum::<f32>()
                        + w[(0, d)];
                out[(r, a)] = quad + lin;
            }
            q_all.push(q);
        }
        (out, q_all)
    }
}

impl Layer for FactorizationMachineFusion {
    fn forward(&mut self, h: &Matrix, _mode: Mode) -> Matrix {
        let (out, q_all) = self.score(h);
        self.cache = Some(FmCache { input: h.clone(), q: q_all });
        out
    }

    fn forward_eval(&self, h: &Matrix) -> Matrix {
        self.score(h).0
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let h = &cache.input;
        let d = self.in_dim();
        let n = h.rows();
        assert_eq!(grad_out.shape(), (n, self.u.len()), "FM grad shape mismatch");

        let mut dh = Matrix::zeros(n, d);
        for a in 0..self.u.len() {
            let q = &cache.q[a];
            for r in 0..n {
                let g = grad_out[(r, a)];
                if g == 0.0 {
                    continue;
                }
                // quadratic term: dŷ/dh = 2 qᵀ U, dŷ/dU = 2 q hᵀ
                for f in 0..self.factors {
                    let qv = 2.0 * g * q[(r, f)];
                    for c in 0..d {
                        dh[(r, c)] += qv * self.u[a][(f, c)];
                        self.g_u[a][(f, c)] += qv * h[(r, c)];
                    }
                }
                // linear term
                for c in 0..d {
                    dh[(r, c)] += g * self.w[a][(0, c)];
                    self.g_w[a][(0, c)] += g * h[(r, c)];
                }
                self.g_w[a][(0, d)] += g;
            }
        }
        dh
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for (u, g) in self.u.iter_mut().zip(self.g_u.iter_mut()) {
            f(u, g);
        }
        for (w, g) in self.w.iter_mut().zip(self.g_w.iter_mut()) {
            f(w, g);
        }
    }

    fn info(&self) -> LayerInfo {
        let d = self.in_dim();
        let c = self.u.len();
        LayerInfo {
            kind: "fusion-fm",
            in_dim: d,
            out_dim: c,
            params: c * (self.factors * d + d + 1),
            macs: (c * self.factors * d) as u64,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Eq. 4: per class `a`, `ŷ_a = Σ_f Π_p (U_a⁽ᵖ⁾ [h⁽ᵖ⁾; 1])_f` over the `m`
/// views. Operates on the concatenation, splitting it by `view_dims`.
pub struct MultiViewMachineFusion {
    view_dims: Vec<usize>,
    /// `u[class][view]` is `k × (d_p + 1)`.
    u: Vec<Vec<Matrix>>,
    g_u: Vec<Vec<Matrix>>,
    factors: usize,
    cache: Option<MvmCache>,
}

struct MvmCache {
    input: Matrix,
    /// `q[class][view]` is `n × k`.
    q: Vec<Vec<Matrix>>,
}

impl std::fmt::Debug for MultiViewMachineFusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiViewMachineFusion")
            .field("views", &self.view_dims)
            .field("classes", &self.u.len())
            .field("factors", &self.factors)
            .finish()
    }
}

impl MultiViewMachineFusion {
    /// Creates the head over views of the given widths.
    pub fn new(view_dims: &[usize], factors: usize, classes: usize, rng: &mut impl Rng) -> Self {
        assert!(!view_dims.is_empty(), "need at least one view");
        let init = Init::Normal { std: 0.3 };
        let u: Vec<Vec<Matrix>> = (0..classes)
            .map(|_| view_dims.iter().map(|&d| init.sample(factors, d + 1, rng)).collect())
            .collect();
        let g_u = (0..classes)
            .map(|_| view_dims.iter().map(|&d| Matrix::zeros(factors, d + 1)).collect())
            .collect();
        Self { view_dims: view_dims.to_vec(), u, g_u, factors, cache: None }
    }

    fn total_dim(&self) -> usize {
        self.view_dims.iter().sum()
    }

    /// Offsets of each view inside the concatenated input.
    fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.view_dims.len());
        let mut acc = 0;
        for &d in &self.view_dims {
            out.push(acc);
            acc += d;
        }
        out
    }

    /// Class scores plus the per-class, per-view factor projections.
    fn score(&self, h: &Matrix) -> (Matrix, Vec<Vec<Matrix>>) {
        assert_eq!(h.cols(), self.total_dim(), "MVM fusion input width mismatch");
        let n = h.rows();
        let classes = self.u.len();
        let offsets = self.offsets();
        let mut out = Matrix::zeros(n, classes);
        let mut q_all: Vec<Vec<Matrix>> = Vec::with_capacity(classes);
        for a in 0..classes {
            let mut q_views = Vec::with_capacity(self.view_dims.len());
            for (p, &dp) in self.view_dims.iter().enumerate() {
                let mut q = Matrix::zeros(n, self.factors);
                for r in 0..n {
                    let hp = &h.row(r)[offsets[p]..offsets[p] + dp];
                    for f in 0..self.factors {
                        let mut acc = self.u[a][p][(f, dp)]; // bias column
                        for (c, &x) in hp.iter().enumerate() {
                            acc += self.u[a][p][(f, c)] * x;
                        }
                        q[(r, f)] = acc;
                    }
                }
                q_views.push(q);
            }
            for r in 0..n {
                let mut total = 0.0f32;
                for f in 0..self.factors {
                    let mut prod = 1.0f32;
                    for q in &q_views {
                        prod *= q[(r, f)];
                    }
                    total += prod;
                }
                out[(r, a)] = total;
            }
            q_all.push(q_views);
        }
        (out, q_all)
    }
}

impl Layer for MultiViewMachineFusion {
    fn forward(&mut self, h: &Matrix, _mode: Mode) -> Matrix {
        let (out, q_all) = self.score(h);
        self.cache = Some(MvmCache { input: h.clone(), q: q_all });
        out
    }

    fn forward_eval(&self, h: &Matrix) -> Matrix {
        self.score(h).0
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let h = &cache.input;
        let n = h.rows();
        let m = self.view_dims.len();
        let offsets = self.offsets();
        assert_eq!(grad_out.shape(), (n, self.u.len()), "MVM grad shape mismatch");

        let mut dh = Matrix::zeros(n, self.total_dim());
        for a in 0..self.u.len() {
            let q_views = &cache.q[a];
            for r in 0..n {
                let g = grad_out[(r, a)];
                if g == 0.0 {
                    continue;
                }
                for f in 0..self.factors {
                    // product of the other views' factors, per view
                    for p in 0..m {
                        let mut others = 1.0f32;
                        for (pp, q) in q_views.iter().enumerate() {
                            if pp != p {
                                others *= q[(r, f)];
                            }
                        }
                        let dq = g * others;
                        let dp = self.view_dims[p];
                        let hp = &h.row(r)[offsets[p]..offsets[p] + dp];
                        for (c, &x) in hp.iter().enumerate() {
                            self.g_u[a][p][(f, c)] += dq * x;
                            dh[(r, offsets[p] + c)] += dq * self.u[a][p][(f, c)];
                        }
                        self.g_u[a][p][(f, dp)] += dq; // bias column
                    }
                }
            }
        }
        dh
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for (urow, grow) in self.u.iter_mut().zip(self.g_u.iter_mut()) {
            for (u, g) in urow.iter_mut().zip(grow.iter_mut()) {
                f(u, g);
            }
        }
    }

    fn info(&self) -> LayerInfo {
        let c = self.u.len();
        let params: usize =
            c * self.view_dims.iter().map(|&d| self.factors * (d + 1)).sum::<usize>();
        LayerInfo {
            kind: "fusion-mvm",
            in_dim: self.total_dim(),
            out_dim: c,
            params,
            macs: params as u64,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::ParamVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grad_check_layer(layer: &mut dyn Layer, x: &Matrix, tol: f32) {
        let base = layer.param_vector();
        layer.zero_grad();
        let out = layer.forward(x, Mode::Train);
        let gout = Matrix::ones(out.rows(), out.cols());
        let dx = layer.backward(&gout);
        let analytic = layer.grad_vector();

        let eps = 1e-3f32;
        let n = base.len();
        let picks: Vec<usize> = (0..16.min(n)).map(|i| i * n / 16.min(n)).collect();
        for k in picks {
            let mut plus = base.clone();
            plus[k] += eps;
            layer.set_param_vector(&plus);
            let lp = layer.forward(x, Mode::Eval).sum();
            let mut minus = base.clone();
            minus[k] -= eps;
            layer.set_param_vector(&minus);
            let lm = layer.forward(x, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < tol, "param {k}: fd={fd} vs {}", analytic[k]);
        }
        layer.set_param_vector(&base);
        // input gradient
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let lp = layer.forward(&xp, Mode::Eval).sum();
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lm = layer.forward(&xm, Mode::Eval).sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < tol,
                    "input ({r},{c}): fd={fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn fc_fusion_shapes_and_gradients() {
        let mut rng = StdRng::seed_from_u64(330);
        let mut head = FullyConnectedFusion::new(6, 8, 3, &mut rng);
        let x = Matrix::from_fn(2, 6, |r, c| ((r * 6 + c) as f32 * 0.4).sin() * 0.5);
        let y = head.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 3));
        grad_check_layer(&mut head, &x, 2e-2);
    }

    #[test]
    fn fm_fusion_known_value() {
        let mut rng = StdRng::seed_from_u64(331);
        let mut head = FactorizationMachineFusion::new(2, 1, 1, &mut rng);
        // set U = [[1, 1]], w = [0.5, -0.5, 0.25]
        head.set_param_vector(&[1.0, 1.0, 0.5, -0.5, 0.25]);
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let y = head.forward(&x, Mode::Eval);
        // q = 2 + 3 = 5 → quad 25; lin = 1.0 − 1.5 + 0.25 = −0.25
        assert!((y[(0, 0)] - 24.75).abs() < 1e-5, "{y:?}");
    }

    #[test]
    fn fm_fusion_gradient_check() {
        let mut rng = StdRng::seed_from_u64(332);
        let mut head = FactorizationMachineFusion::new(5, 3, 2, &mut rng);
        let x = Matrix::from_fn(3, 5, |r, c| ((r + c) as f32 * 0.7).cos() * 0.4);
        grad_check_layer(&mut head, &x, 2e-2);
    }

    #[test]
    fn mvm_fusion_known_value() {
        let mut rng = StdRng::seed_from_u64(333);
        let mut head = MultiViewMachineFusion::new(&[1, 1], 1, 1, &mut rng);
        // view p factor matrices are 1 × 2 (weight, bias):
        // U¹ = [2, 1], U² = [3, −1]
        head.set_param_vector(&[2.0, 1.0, 3.0, -1.0]);
        let x = Matrix::from_rows(&[&[0.5, 2.0]]);
        // q¹ = 2·0.5 + 1 = 2; q² = 3·2 − 1 = 5 → ŷ = 10
        let y = head.forward(&x, Mode::Eval);
        assert!((y[(0, 0)] - 10.0).abs() < 1e-5, "{y:?}");
    }

    #[test]
    fn mvm_fusion_gradient_check() {
        let mut rng = StdRng::seed_from_u64(334);
        let mut head = MultiViewMachineFusion::new(&[3, 2, 4], 2, 2, &mut rng);
        let x = Matrix::from_fn(2, 9, |r, c| ((r * 9 + c) as f32 * 0.5).sin() * 0.5);
        grad_check_layer(&mut head, &x, 3e-2);
    }

    #[test]
    fn heads_report_consistent_info() {
        let mut rng = StdRng::seed_from_u64(335);
        let mut fc = FullyConnectedFusion::new(10, 16, 4, &mut rng);
        let mut fm = FactorizationMachineFusion::new(10, 5, 4, &mut rng);
        let mut mvm = MultiViewMachineFusion::new(&[4, 3, 3], 5, 4, &mut rng);
        assert_eq!(fc.info().params, fc.num_params());
        assert_eq!(fm.info().params, fm.num_params());
        assert_eq!(mvm.info().params, mvm.num_params());
        assert_eq!(fc.info().out_dim, 4);
        assert_eq!(fm.info().in_dim, 10);
        assert_eq!(mvm.info().in_dim, 10);
    }
}
