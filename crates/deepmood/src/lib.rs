//! # mdl-deepmood
//!
//! DeepMood (§IV-A of the paper, Fig. 4): mood-disturbance inference from
//! mobile typing dynamics. Each metadata view — alphanumeric keypress
//! timing, one-hot special keys, accelerometer stream — is encoded by its
//! own GRU (paper Eq. 1); the final hidden states are late-fused by one of
//! three output layers:
//!
//! - fully connected (Eq. 2),
//! - factorization machine (Eq. 3),
//! - multi-view machine (Eq. 4).
//!
//! [`evaluate`] drives the model over the synthetic BiAffect cohort from
//! `mdl-data`, including the per-participant accuracy-vs-session-count
//! analysis of the paper's Fig. 5.

#![warn(missing_docs)]

pub mod evaluate;
pub mod fusion;
pub mod model;
pub mod normalize;

pub use evaluate::{
    as_training_pairs, biaffect_view_dims, borrow_pairs, normalized_pairs,
    per_participant_analysis, train_and_evaluate, MoodEvaluation, ParticipantPoint,
};
pub use fusion::{FactorizationMachineFusion, FullyConnectedFusion, MultiViewMachineFusion};
pub use model::{DeepMood, DeepMoodConfig, DeepMoodEpoch, EncoderKind, FusionKind};
pub use normalize::ViewNormalizer;
