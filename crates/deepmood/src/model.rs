//! The DeepMood architecture (paper Fig. 4): one GRU encoder per metadata
//! view, late-fused by an FC / FM / MVM output layer.

use crate::fusion::{FactorizationMachineFusion, FullyConnectedFusion, MultiViewMachineFusion};
use mdl_nn::loss::softmax_cross_entropy;
use mdl_nn::{Adam, BiGru, Gru, Layer, LayerInfo, Lstm, Mode, Optimizer};
use mdl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Which late-fusion head sits on top of the view encoders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionKind {
    /// Eq. 2: fully connected with `k'` hidden units.
    FullyConnected {
        /// Hidden width `k'`.
        hidden: usize,
    },
    /// Eq. 3: factorization machine with `k` factors.
    FactorizationMachine {
        /// Factor count `k`.
        factors: usize,
    },
    /// Eq. 4: multi-view machine with `k` factors.
    MultiViewMachine {
        /// Factor count `k`.
        factors: usize,
    },
}

/// Which recurrent encoder processes each view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// Unidirectional GRU (the paper's default, Eq. 1).
    #[default]
    Gru,
    /// Bidirectional GRU (doubles the fused width).
    BiGru,
    /// LSTM (reference [42]) — the un-simplified alternative.
    Lstm,
}

/// DeepMood hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepMoodConfig {
    /// GRU hidden width per view.
    pub hidden_dim: usize,
    /// Bidirectional encoders (doubles the fused width).
    /// Deprecated alias for `encoder = EncoderKind::BiGru`.
    pub bidirectional: bool,
    /// Recurrent cell per view.
    pub encoder: EncoderKind,
    /// The fusion head.
    pub fusion: FusionKind,
    /// Number of output classes.
    pub classes: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Sessions per gradient step.
    pub batch_size: usize,
}

impl Default for DeepMoodConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 8,
            bidirectional: false,
            encoder: EncoderKind::Gru,
            fusion: FusionKind::MultiViewMachine { factors: 4 },
            classes: 2,
            learning_rate: 0.01,
            epochs: 12,
            batch_size: 16,
        }
    }
}

enum Encoder {
    Uni(Box<Gru>),
    Bi(Box<BiGru>),
    Mem(Box<Lstm>),
}

impl Encoder {
    fn out_dim(&self) -> usize {
        match self {
            Encoder::Uni(g) => g.hidden_dim(),
            Encoder::Bi(g) => 2 * g.hidden_dim(),
            Encoder::Mem(l) => l.hidden_dim(),
        }
    }

    /// Forward pass caching state; returns the fused final state (`1 × out`).
    fn encode(&mut self, seq: &Matrix) -> Matrix {
        match self {
            Encoder::Uni(g) => {
                let states = g.forward(seq, Mode::Train);
                Matrix::row_vector(states.row(states.rows() - 1))
            }
            Encoder::Bi(g) => {
                let h = g.hidden_dim();
                let states = g.forward(seq, Mode::Train);
                let mut out = Matrix::zeros(1, 2 * h);
                out.row_mut(0)[..h].copy_from_slice(&states.row(states.rows() - 1)[..h]);
                out.row_mut(0)[h..].copy_from_slice(&states.row(0)[h..]);
                out
            }
            Encoder::Mem(l) => {
                let states = l.forward(seq, Mode::Train);
                Matrix::row_vector(states.row(states.rows() - 1))
            }
        }
    }

    /// Backpropagates a gradient on the encoded state through time.
    fn backward_encoded(&mut self, d: &Matrix, t_len: usize) {
        match self {
            Encoder::Uni(g) => {
                let h = g.hidden_dim();
                let mut gout = Matrix::zeros(t_len, h);
                gout.row_mut(t_len - 1).copy_from_slice(d.row(0));
                let _ = g.backward(&gout);
            }
            Encoder::Bi(g) => {
                let h = g.hidden_dim();
                let mut gout = Matrix::zeros(t_len, 2 * h);
                gout.row_mut(t_len - 1)[..h].copy_from_slice(&d.row(0)[..h]);
                gout.row_mut(0)[h..].copy_from_slice(&d.row(0)[h..]);
                let _ = g.backward(&gout);
            }
            Encoder::Mem(l) => {
                let h = l.hidden_dim();
                let mut gout = Matrix::zeros(t_len, h);
                gout.row_mut(t_len - 1).copy_from_slice(d.row(0));
                let _ = l.backward(&gout);
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        match self {
            Encoder::Uni(g) => g.visit_params(f),
            Encoder::Bi(g) => g.visit_params(f),
            Encoder::Mem(l) => l.visit_params(f),
        }
    }
}

/// A multi-view sequence classifier: per-view GRUs + late-fusion head.
///
/// This is both DeepMood (§IV-A, mood classes) and the deep core of
/// DEEPSERVICE (§IV-B, user classes) — the architecture is identical, only
/// the label semantics differ.
pub struct DeepMood {
    encoders: Vec<Encoder>,
    head: Box<dyn Layer>,
    view_dims: Vec<usize>,
    config: DeepMoodConfig,
}

impl std::fmt::Debug for DeepMood {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepMood")
            .field("views", &self.view_dims)
            .field("config", &self.config)
            .finish()
    }
}

/// Parameter-only adapter so stock optimizers can drive the composite model.
struct ParamsOnly<'a>(&'a mut DeepMood);

impl Layer for ParamsOnly<'_> {
    fn forward(&mut self, _x: &Matrix, _mode: Mode) -> Matrix {
        unreachable!("ParamsOnly is only used for optimizer parameter visits")
    }

    fn forward_eval(&self, _x: &Matrix) -> Matrix {
        unreachable!("ParamsOnly is only used for optimizer parameter visits")
    }

    fn backward(&mut self, _grad_out: &Matrix) -> Matrix {
        unreachable!("ParamsOnly is only used for optimizer parameter visits")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.0.visit_params(f);
    }

    fn info(&self) -> LayerInfo {
        LayerInfo { kind: "params-only", in_dim: 0, out_dim: 0, params: 0, macs: 0 }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        // ParamsOnly is a transient borrow adapter; it is never downcast.
        unreachable!("ParamsOnly does not support downcasting")
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepMoodEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Mean cross-entropy.
    pub loss: f64,
    /// Training accuracy.
    pub accuracy: f64,
}

impl DeepMood {
    /// Creates the model for views with the given input widths.
    pub fn new(view_input_dims: &[usize], config: DeepMoodConfig, rng: &mut impl Rng) -> Self {
        assert!(!view_input_dims.is_empty(), "need at least one view");
        let kind = if config.bidirectional { EncoderKind::BiGru } else { config.encoder };
        let encoders: Vec<Encoder> = view_input_dims
            .iter()
            .map(|&d| match kind {
                EncoderKind::Gru => Encoder::Uni(Box::new(Gru::new(d, config.hidden_dim, rng))),
                EncoderKind::BiGru => Encoder::Bi(Box::new(BiGru::new(d, config.hidden_dim, rng))),
                EncoderKind::Lstm => Encoder::Mem(Box::new(Lstm::new(d, config.hidden_dim, rng))),
            })
            .collect();
        let view_dims: Vec<usize> = encoders.iter().map(|e| e.out_dim()).collect();
        let fused: usize = view_dims.iter().sum();
        let head: Box<dyn Layer> = match config.fusion {
            FusionKind::FullyConnected { hidden } => {
                Box::new(FullyConnectedFusion::new(fused, hidden, config.classes, rng))
            }
            FusionKind::FactorizationMachine { factors } => {
                Box::new(FactorizationMachineFusion::new(fused, factors, config.classes, rng))
            }
            FusionKind::MultiViewMachine { factors } => {
                Box::new(MultiViewMachineFusion::new(&view_dims, factors, config.classes, rng))
            }
        };
        Self { encoders, head, view_dims, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeepMoodConfig {
        &self.config
    }

    /// Total trainable parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |v, _| n += v.len());
        n
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for e in &mut self.encoders {
            e.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.map_mut(|_| 0.0));
    }

    /// Class logits for one session's views.
    ///
    /// # Panics
    ///
    /// Panics if the number of views differs from the model's.
    pub fn logits(&mut self, views: &[&Matrix]) -> Matrix {
        assert_eq!(views.len(), self.encoders.len(), "view count mismatch");
        let mut fused = Matrix::zeros(1, self.view_dims.iter().sum());
        let mut at = 0;
        for (e, v) in self.encoders.iter_mut().zip(views.iter()) {
            let enc = e.encode(v);
            fused.row_mut(0)[at..at + enc.cols()].copy_from_slice(enc.row(0));
            at += enc.cols();
        }
        self.head.forward(&fused, Mode::Train)
    }

    /// Predicted class for one session.
    pub fn predict(&mut self, views: &[&Matrix]) -> usize {
        self.logits(views).argmax_rows()[0]
    }

    /// Loss + gradient accumulation for one labelled session.
    fn accumulate(&mut self, views: &[&Matrix], label: usize) -> (f32, bool) {
        let logits = self.logits(views);
        let correct = logits.argmax_rows()[0] == label;
        let (loss, grad) = softmax_cross_entropy(&logits, &[label]);
        let d_fused = self.head.backward(&grad);
        let mut at = 0;
        for (e, v) in self.encoders.iter_mut().zip(views.iter()) {
            let w = e.out_dim();
            let d = Matrix::row_vector(&d_fused.row(0)[at..at + w]);
            e.backward_encoded(&d, v.rows());
            at += w;
        }
        (loss, correct)
    }

    /// Trains on labelled multi-view sessions with mini-batch Adam.
    ///
    /// Each element of `sessions` is `(views, label)`.
    pub fn train(
        &mut self,
        sessions: &[(Vec<&Matrix>, usize)],
        rng: &mut impl Rng,
    ) -> Vec<DeepMoodEpoch> {
        assert!(!sessions.is_empty(), "training set must be non-empty");
        let mut opt = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            order.shuffle(rng);
            let mut total_loss = 0.0f64;
            let mut correct = 0usize;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                self.zero_grad();
                for &i in chunk {
                    let (views, label) = &sessions[i];
                    let (loss, ok) = self.accumulate(views, *label);
                    total_loss += loss as f64;
                    correct += usize::from(ok);
                }
                // average accumulated gradients over the batch
                let scale = 1.0 / chunk.len() as f32;
                self.visit_params(&mut |_, g| g.scale_mut(scale));
                opt.step(&mut ParamsOnly(self));
            }
            history.push(DeepMoodEpoch {
                epoch,
                loss: total_loss / sessions.len() as f64,
                accuracy: correct as f64 / sessions.len() as f64,
            });
        }
        history
    }

    /// Accuracy over labelled sessions.
    pub fn accuracy(&mut self, sessions: &[(Vec<&Matrix>, usize)]) -> f64 {
        if sessions.is_empty() {
            return 0.0;
        }
        let correct =
            sessions.iter().filter(|(views, label)| self.predict(views) == *label).count();
        correct as f64 / sessions.len() as f64
    }

    /// Predictions over labelled sessions (order preserved).
    pub fn predictions(&mut self, sessions: &[(Vec<&Matrix>, usize)]) -> Vec<usize> {
        sessions.iter().map(|(views, _)| self.predict(views)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic two-view sequence task: class decides the drift direction
    /// of view 0 and the frequency of view 1.
    fn toy_sessions(n: usize, rng: &mut StdRng) -> Vec<(Vec<Matrix>, usize)> {
        use mdl_tensor::init::gaussian;
        (0..n)
            .map(|i| {
                let label = i % 2;
                let t = 6 + (i % 5);
                let drift = if label == 0 { 0.3 } else { -0.3 };
                let v0 = Matrix::from_fn(t, 2, |r, c| {
                    drift * r as f32 + 0.05 * gaussian(rng) + c as f32 * 0.1
                });
                let freq = if label == 0 { 0.5 } else { 2.0 };
                let v1 = Matrix::from_fn(t + 2, 3, |r, c| {
                    (freq * r as f32 + c as f32).sin() + 0.05 * gaussian(rng)
                });
                (vec![v0, v1], label)
            })
            .collect()
    }

    fn as_refs(data: &[(Vec<Matrix>, usize)]) -> Vec<(Vec<&Matrix>, usize)> {
        data.iter().map(|(v, y)| (v.iter().collect(), *y)).collect()
    }

    fn learns_with(fusion: FusionKind, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = toy_sessions(120, &mut rng);
        let sessions = as_refs(&data);
        let (train, test) = sessions.split_at(90);
        let mut model = DeepMood::new(
            &[2, 3],
            DeepMoodConfig {
                fusion,
                epochs: 15,
                hidden_dim: 6,
                learning_rate: 0.02,
                ..Default::default()
            },
            &mut rng,
        );
        let history = model.train(train, &mut rng);
        assert!(history.last().unwrap().loss < history[0].loss, "loss should fall");
        model.accuracy(test)
    }

    #[test]
    fn fc_fusion_learns_toy_task() {
        let acc = learns_with(FusionKind::FullyConnected { hidden: 8 }, 340);
        assert!(acc > 0.85, "FC fusion accuracy {acc}");
    }

    #[test]
    fn fm_fusion_learns_toy_task() {
        let acc = learns_with(FusionKind::FactorizationMachine { factors: 4 }, 341);
        assert!(acc > 0.85, "FM fusion accuracy {acc}");
    }

    #[test]
    fn mvm_fusion_learns_toy_task() {
        let acc = learns_with(FusionKind::MultiViewMachine { factors: 4 }, 342);
        assert!(acc > 0.85, "MVM fusion accuracy {acc}");
    }

    #[test]
    fn lstm_encoders_learn_toy_task() {
        let mut rng = StdRng::seed_from_u64(346);
        let data = toy_sessions(100, &mut rng);
        let sessions = as_refs(&data);
        let (train, test) = sessions.split_at(75);
        let mut model = DeepMood::new(
            &[2, 3],
            DeepMoodConfig {
                encoder: EncoderKind::Lstm,
                epochs: 15,
                hidden_dim: 6,
                learning_rate: 0.02,
                ..Default::default()
            },
            &mut rng,
        );
        let history = model.train(train, &mut rng);
        assert!(history.last().unwrap().loss < history[0].loss);
        assert!(model.accuracy(test) > 0.8, "LSTM encoder accuracy");
    }

    #[test]
    fn bidirectional_encoders_work() {
        let mut rng = StdRng::seed_from_u64(343);
        let data = toy_sessions(80, &mut rng);
        let sessions = as_refs(&data);
        let mut model = DeepMood::new(
            &[2, 3],
            DeepMoodConfig {
                bidirectional: true,
                epochs: 12,
                hidden_dim: 5,
                learning_rate: 0.02,
                ..Default::default()
            },
            &mut rng,
        );
        let history = model.train(&sessions, &mut rng);
        assert!(history.last().unwrap().accuracy > 0.8, "{history:?}");
    }

    #[test]
    fn predictions_are_deterministic_after_training() {
        let mut rng = StdRng::seed_from_u64(344);
        let data = toy_sessions(40, &mut rng);
        let sessions = as_refs(&data);
        let mut model =
            DeepMood::new(&[2, 3], DeepMoodConfig { epochs: 2, ..Default::default() }, &mut rng);
        let _ = model.train(&sessions, &mut rng);
        assert_eq!(model.predictions(&sessions), model.predictions(&sessions));
    }

    #[test]
    #[should_panic(expected = "view count mismatch")]
    fn logits_rejects_wrong_view_count() {
        let mut rng = StdRng::seed_from_u64(345);
        let mut model = DeepMood::new(&[2, 3], DeepMoodConfig::default(), &mut rng);
        let v = Matrix::ones(4, 2);
        let _ = model.logits(&[&v]);
    }
}
