//! Per-view, per-channel input standardisation.
//!
//! Raw session metadata mixes scales wildly (key-hold seconds ≈ 0.1,
//! accelerometer z ≈ 9.6 m/s²); GRU gates saturate on the large channels
//! unless inputs are standardised with *training-set* statistics.

use mdl_tensor::Matrix;

/// Channel-wise standardisation statistics for a fixed set of views.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewNormalizer {
    /// Per view: (per-channel mean, per-channel std).
    stats: Vec<(Vec<f32>, Vec<f32>)>,
}

impl ViewNormalizer {
    /// Fits statistics over all timesteps of all training sessions.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty or view counts/widths are inconsistent.
    pub fn fit(sessions: &[Vec<&Matrix>]) -> Self {
        assert!(!sessions.is_empty(), "need at least one session to fit");
        let views = sessions[0].len();
        let mut stats = Vec::with_capacity(views);
        for v in 0..views {
            let width = sessions[0][v].cols();
            let mut sum = vec![0.0f64; width];
            let mut sum_sq = vec![0.0f64; width];
            let mut count = 0u64;
            for s in sessions {
                assert_eq!(s.len(), views, "inconsistent view count");
                let m = s[v];
                assert_eq!(m.cols(), width, "inconsistent view width");
                for r in 0..m.rows() {
                    for (c, &x) in m.row(r).iter().enumerate() {
                        sum[c] += x as f64;
                        sum_sq[c] += (x as f64) * (x as f64);
                    }
                }
                count += m.rows() as u64;
            }
            let n = count.max(1) as f64;
            let means: Vec<f32> = sum.iter().map(|&s| (s / n) as f32).collect();
            let stds: Vec<f32> = sum_sq
                .iter()
                .zip(means.iter())
                .map(|(&sq, &m)| (((sq / n) - (m as f64) * (m as f64)).max(1e-12).sqrt()) as f32)
                .collect();
            stats.push((means, stds));
        }
        Self { stats }
    }

    /// Number of views covered.
    pub fn views(&self) -> usize {
        self.stats.len()
    }

    /// Standardises one session's views into owned matrices.
    ///
    /// # Panics
    ///
    /// Panics if the view count differs from the fitted one.
    pub fn apply(&self, views: &[&Matrix]) -> Vec<Matrix> {
        assert_eq!(views.len(), self.stats.len(), "view count mismatch");
        views
            .iter()
            .zip(self.stats.iter())
            .map(|(m, (means, stds))| {
                Matrix::from_fn(m.rows(), m.cols(), |r, c| (m[(r, c)] - means[c]) / stds[c])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_stats_standardize_training_data() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        let b = Matrix::from_rows(&[&[5.0, 50.0]]);
        let sessions = vec![vec![&a], vec![&b]];
        let norm = ViewNormalizer::fit(&sessions);
        assert_eq!(norm.views(), 1);
        // pooled channel 0: [1,3,5] mean 3 std sqrt(8/3)
        let out = norm.apply(&[&a]);
        let col0: Vec<f32> = out[0].col(0);
        let m = col0.iter().sum::<f32>() / 2.0;
        assert!((m - (-0.75_f32 / (8.0f32 / 3.0).sqrt() * (8.0f32 / 3.0).sqrt())).abs() < 2.0);
        // exact check: (1-3)/std and (3-3)/std
        let std = (8.0f32 / 3.0).sqrt();
        assert!((out[0][(0, 0)] + 2.0 / std).abs() < 1e-5);
        assert!(out[0][(1, 0)].abs() < 1e-6);
    }

    #[test]
    fn constant_channel_does_not_blow_up() {
        let a = Matrix::from_rows(&[&[7.0], &[7.0]]);
        let norm = ViewNormalizer::fit(&[vec![&a]]);
        let out = norm.apply(&[&a]);
        assert!(out[0].all_finite());
    }

    #[test]
    #[should_panic(expected = "view count mismatch")]
    fn apply_rejects_wrong_view_count() {
        let a = Matrix::ones(2, 2);
        let norm = ViewNormalizer::fit(&[vec![&a]]);
        let _ = norm.apply(&[&a, &a]);
    }
}
