//! DEEPSERVICE (§IV-B): multi-view, multi-class mobile user identification,
//! plus the Table I comparison harness against the shallow baselines.

use mdl_baselines::{
    fit_evaluate, Classifier, DecisionTree, Evaluation, GradientBoost, LinearSvm,
    LogisticRegression, RandomForest,
};
use mdl_data::keystroke::{KeystrokeDataset, UserSession};
use mdl_data::metrics::ConfusionMatrix;
use mdl_data::Dataset;
use mdl_deepmood::{DeepMood, DeepMoodConfig, FusionKind, ViewNormalizer};
use mdl_tensor::Matrix;
use rand::rngs::StdRng;

/// The three view widths of a keystroke session (same metadata as DeepMood).
pub fn view_dims() -> Vec<usize> {
    mdl_deepmood::biaffect_view_dims()
}

/// Default DEEPSERVICE configuration for `users` classes.
pub fn deepservice_config(users: usize) -> DeepMoodConfig {
    DeepMoodConfig {
        hidden_dim: 14,
        bidirectional: false,
        encoder: Default::default(),
        fusion: FusionKind::FullyConnected { hidden: 32 },
        classes: users,
        learning_rate: 0.015,
        epochs: 25,
        batch_size: 16,
    }
}

/// Converts user sessions into `(views, label)` training pairs.
pub fn as_training_pairs(sessions: &[UserSession]) -> Vec<(Vec<&Matrix>, usize)> {
    sessions.iter().map(|s| (s.session.views().to_vec(), s.user)).collect()
}

/// Trains DEEPSERVICE and evaluates accuracy / macro-F1 on test sessions.
pub fn train_deepservice(
    train: &[UserSession],
    test: &[UserSession],
    config: &DeepMoodConfig,
    rng: &mut StdRng,
) -> (Evaluation, DeepMood) {
    // standardise every channel with training statistics — raw metadata
    // mixes seconds with m/s² and would saturate the GRU gates
    let train_views: Vec<Vec<&Matrix>> = train.iter().map(|s| s.session.views().to_vec()).collect();
    let norm = ViewNormalizer::fit(&train_views);
    let own = |sessions: &[UserSession]| -> Vec<(Vec<Matrix>, usize)> {
        sessions.iter().map(|s| (norm.apply(&s.session.views()), s.user)).collect()
    };
    let train_owned = own(train);
    let test_owned = own(test);
    let train_pairs: Vec<(Vec<&Matrix>, usize)> =
        train_owned.iter().map(|(v, y)| (v.iter().collect(), *y)).collect();
    let test_pairs: Vec<(Vec<&Matrix>, usize)> =
        test_owned.iter().map(|(v, y)| (v.iter().collect(), *y)).collect();
    let mut model = DeepMood::new(&view_dims(), config.clone(), rng);
    let _ = model.train(&train_pairs, rng);
    let pred = model.predictions(&test_pairs);
    let truth: Vec<usize> = test_pairs.iter().map(|(_, y)| *y).collect();
    let cm = ConfusionMatrix::from_predictions(&truth, &pred, config.classes);
    (Evaluation { accuracy: cm.accuracy(), macro_f1: cm.macro_f1() }, model)
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Method name as printed in the paper.
    pub method: &'static str,
    /// Test accuracy.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub f1: f64,
}

/// Reproduces one column pair of Table I: every baseline plus DEEPSERVICE
/// on the given cohort.
///
/// Baselines consume flattened summary features; DEEPSERVICE consumes the
/// raw multi-view sequences.
pub fn table_one(cohort: &KeystrokeDataset, rng: &mut StdRng) -> Vec<TableRow> {
    // shared split on session indices so both representations see the same
    // train/test membership
    let (train_sessions, test_sessions) = cohort.split(0.75, rng);

    // "traditional" flattened features for the shallow models (per-channel
    // means and counts — see `featurize_session_basic`), standardised with
    // training statistics. DEEPSERVICE consumes the raw sequences instead.
    let featurize = |sessions: &[UserSession]| -> Dataset {
        let mut x = Matrix::zeros(sessions.len(), mdl_data::typing::BASIC_FEATURE_DIM);
        let mut y = Vec::with_capacity(sessions.len());
        for (r, s) in sessions.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&mdl_data::typing::featurize_session_basic(&s.session));
            y.push(s.user);
        }
        Dataset::new(x, y, cohort.config.users)
    };
    let mut train_flat = featurize(&train_sessions);
    let mut test_flat = featurize(&test_sessions);
    let (means, stds) = train_flat.standardize();
    test_flat.apply_standardization(&means, &stds);

    let mut rows = Vec::new();
    let mut run = |name: &'static str, model: &mut dyn Classifier, rng: &mut StdRng| {
        let eval = fit_evaluate(model, &train_flat, &test_flat, rng);
        rows.push(TableRow { method: name, accuracy: eval.accuracy, f1: eval.macro_f1 });
    };
    run("LR", &mut LogisticRegression::new(), rng);
    run("SVM", &mut LinearSvm::new(), rng);
    run("Decision Tree", &mut DecisionTree::new(), rng);
    run("RandomForest", &mut RandomForest::new(), rng);
    run("XGBoost", &mut GradientBoost::new(), rng);

    let (eval, _) = train_deepservice(
        &train_sessions,
        &test_sessions,
        &deepservice_config(cohort.config.users),
        rng,
    );
    rows.push(TableRow { method: "DEEPSERVICE", accuracy: eval.accuracy, f1: eval.macro_f1 });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::keystroke::KeystrokeConfig;
    use rand::SeedableRng;

    #[test]
    fn deepservice_identifies_users_above_chance() {
        let mut rng = StdRng::seed_from_u64(360);
        let cohort = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 5, sessions_per_user: 40, ..Default::default() },
            &mut rng,
        );
        let (train, test) = cohort.split(0.75, &mut rng);
        let mut config = deepservice_config(5);
        config.epochs = 8;
        let (eval, _) = train_deepservice(&train, &test, &config, &mut rng);
        assert!(eval.accuracy > 0.5, "5-way accuracy {}", eval.accuracy);
        assert!(eval.macro_f1 > 0.4, "macro F1 {}", eval.macro_f1);
    }

    #[test]
    fn table_one_produces_six_rows() {
        let mut rng = StdRng::seed_from_u64(361);
        let cohort = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 4, sessions_per_user: 25, ..Default::default() },
            &mut rng,
        );
        let rows = table_one(&cohort, &mut rng);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.last().unwrap().method, "DEEPSERVICE");
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.accuracy), "{row:?}");
            assert!((0.0..=1.0).contains(&row.f1), "{row:?}");
        }
        // on a tiny 4-user cohort rankings are noisy; just require that the
        // strongest nonlinear model is not far below the linear floor
        let lr = rows.iter().find(|r| r.method == "LR").unwrap().accuracy;
        let best = rows
            .iter()
            .filter(|r| ["RandomForest", "XGBoost", "DEEPSERVICE"].contains(&r.method))
            .map(|r| r.accuracy)
            .fold(0.0, f64::max);
        assert!(best >= lr - 0.15, "ensembles/deep ({best}) collapsed vs LR ({lr})");
    }
}
