//! # mdl-deepservice
//!
//! DEEPSERVICE (§IV-B of the paper): multi-view deep learning for mobile
//! user identification from keystroke and accelerometer biometrics.
//!
//! - [`identify`]: the N-way identification model (shared architecture with
//!   DeepMood — per-view GRU encoders plus a fusion head) and the Table I
//!   harness comparing it against LR / SVM / decision tree / random forest /
//!   XGBoost on flattened session features;
//! - [`pairwise`]: the binary (shared-phone) identification scenario;
//! - [`patterns`]: the Fig. 6 multi-view pattern analysis of the most
//!   active users.

#![warn(missing_docs)]

pub mod identify;
pub mod pairwise;
pub mod patterns;

pub use identify::{as_training_pairs, deepservice_config, table_one, train_deepservice, TableRow};
pub use pairwise::{pairwise_identification, PairResult, PairwiseReport};
pub use patterns::{analyze_top_users, format_patterns, UserPattern, SPECIAL_KEY_NAMES};
