//! Binary user identification (§IV-B): "DEEPSERVICE can do well
//! identification between any two users with 98.97 % F1 and 99.1 %
//! accuracy in average" — the shared-phone (husband/wife) scenario.

use crate::identify::{deepservice_config, train_deepservice};
use mdl_data::keystroke::KeystrokeDataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Result of one pair's binary identification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairResult {
    /// The two original user indices.
    pub users: (usize, usize),
    /// Binary accuracy.
    pub accuracy: f64,
    /// Macro F1.
    pub f1: f64,
}

/// Aggregate over all evaluated pairs.
#[derive(Debug, Clone)]
pub struct PairwiseReport {
    /// Per-pair results.
    pub pairs: Vec<PairResult>,
    /// Mean accuracy.
    pub mean_accuracy: f64,
    /// Mean F1.
    pub mean_f1: f64,
}

/// Evaluates binary identification over up to `max_pairs` random user pairs.
///
/// # Panics
///
/// Panics if the cohort has fewer than two users or `max_pairs == 0`.
pub fn pairwise_identification(
    cohort: &KeystrokeDataset,
    max_pairs: usize,
    epochs: usize,
    rng: &mut StdRng,
) -> PairwiseReport {
    assert!(cohort.config.users >= 2, "need at least two users");
    assert!(max_pairs > 0, "need at least one pair");
    let mut all_pairs = Vec::new();
    for a in 0..cohort.config.users {
        for b in (a + 1)..cohort.config.users {
            all_pairs.push((a, b));
        }
    }
    all_pairs.shuffle(rng);
    all_pairs.truncate(max_pairs);

    let mut results = Vec::with_capacity(all_pairs.len());
    for &(a, b) in &all_pairs {
        let pair_cohort = cohort.pair(a, b);
        let (train, test) = pair_cohort.split(0.75, rng);
        let mut config = deepservice_config(2);
        config.epochs = epochs;
        let (eval, _) = train_deepservice(&train, &test, &config, rng);
        results.push(PairResult { users: (a, b), accuracy: eval.accuracy, f1: eval.macro_f1 });
    }
    let n = results.len() as f64;
    PairwiseReport {
        mean_accuracy: results.iter().map(|r| r.accuracy).sum::<f64>() / n,
        mean_f1: results.iter().map(|r| r.f1).sum::<f64>() / n,
        pairs: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::keystroke::KeystrokeConfig;
    use rand::SeedableRng;

    #[test]
    fn pairs_are_easier_than_multiclass() {
        let mut rng = StdRng::seed_from_u64(370);
        let cohort = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 5, sessions_per_user: 30, ..Default::default() },
            &mut rng,
        );
        let report = pairwise_identification(&cohort, 3, 8, &mut rng);
        assert_eq!(report.pairs.len(), 3);
        assert!(
            report.mean_accuracy > 0.7,
            "binary identification mean accuracy {}",
            report.mean_accuracy
        );
        assert!((0.0..=1.0).contains(&report.mean_f1));
    }

    #[test]
    #[should_panic(expected = "at least two users")]
    fn rejects_single_user() {
        let mut rng = StdRng::seed_from_u64(371);
        let cohort = KeystrokeDataset::generate(
            &KeystrokeConfig { users: 1, sessions_per_user: 5, ..Default::default() },
            &mut rng,
        );
        let _ = pairwise_identification(&cohort, 1, 1, &mut rng);
    }
}
