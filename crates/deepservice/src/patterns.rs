//! Multi-view pattern analysis of the most active users (paper Fig. 6):
//! per-user summary statistics across the alphabet, symbol/number and
//! acceleration views.

use mdl_data::keystroke::KeystrokeDataset;
use mdl_data::typing::SPECIAL_KEYS;
use mdl_tensor::stats::{mean, pearson, std_dev};

/// Names of the special-key categories, in encoding order.
pub const SPECIAL_KEY_NAMES: [&str; SPECIAL_KEYS] =
    ["auto_correct", "backspace", "space", "suggestion", "switch", "other"];

/// Fig. 6 statistics for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserPattern {
    /// User index.
    pub user: usize,
    /// Sessions observed.
    pub sessions: usize,
    /// Mean keypress duration (alphabet view).
    pub mean_duration: f32,
    /// Mean time since last key.
    pub mean_iki: f32,
    /// Std of the inter-key time (rhythm variability).
    pub iki_std: f32,
    /// Mean alphanumeric keystrokes per session.
    pub keystrokes_per_session: f32,
    /// Mean count of each special key per session (Fig. 6's
    /// frequent/infrequent key analysis).
    pub special_per_session: [f32; SPECIAL_KEYS],
    /// Pairwise accelerometer axis correlations `(xy, xz, yz)`.
    pub accel_correlations: (f32, f32, f32),
    /// Mean accelerometer movement energy (std of the magnitude).
    pub accel_energy: f32,
}

impl UserPattern {
    /// Keys used more than twice per session on average — the paper's
    /// "frequent key" definition.
    pub fn frequent_keys(&self) -> Vec<&'static str> {
        SPECIAL_KEY_NAMES
            .iter()
            .zip(self.special_per_session.iter())
            .filter(|(_, &c)| c > 2.0)
            .map(|(&n, _)| n)
            .collect()
    }
}

/// Computes Fig. 6 statistics for the `top_k` users with the most sessions.
pub fn analyze_top_users(cohort: &KeystrokeDataset, top_k: usize) -> Vec<UserPattern> {
    // rank users by activity (session count)
    let mut counts: Vec<(usize, usize)> = (0..cohort.config.users)
        .map(|u| (u, cohort.sessions.iter().filter(|s| s.user == u).count()))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.truncate(top_k);

    counts
        .into_iter()
        .map(|(user, sessions)| {
            let mine: Vec<_> = cohort.sessions.iter().filter(|s| s.user == user).collect();
            let mut durations = Vec::new();
            let mut ikis = Vec::new();
            let mut keystrokes = Vec::new();
            let mut special_totals = [0.0f32; SPECIAL_KEYS];
            let mut corr_acc = (0.0f32, 0.0f32, 0.0f32);
            let mut energy = Vec::new();
            for s in &mine {
                let a = &s.session.alphanumeric;
                durations.extend(a.col(0));
                ikis.extend(a.col(1));
                keystrokes.push(a.rows() as f32);
                for (k, tot) in special_totals.iter_mut().enumerate() {
                    *tot += s.session.special.col(k).iter().sum::<f32>();
                }
                let acc = &s.session.accelerometer;
                let (x, y, z) = (acc.col(0), acc.col(1), acc.col(2));
                corr_acc.0 += pearson(&x, &y);
                corr_acc.1 += pearson(&x, &z);
                corr_acc.2 += pearson(&y, &z);
                let mag: Vec<f32> = (0..acc.rows())
                    .map(|t| {
                        (acc[(t, 0)].powi(2) + acc[(t, 1)].powi(2) + acc[(t, 2)].powi(2)).sqrt()
                    })
                    .collect();
                energy.push(std_dev(&mag));
            }
            let n = mine.len().max(1) as f32;
            let mut special_per_session = [0.0f32; SPECIAL_KEYS];
            for k in 0..SPECIAL_KEYS {
                special_per_session[k] = special_totals[k] / n;
            }
            UserPattern {
                user,
                sessions,
                mean_duration: mean(&durations),
                mean_iki: mean(&ikis),
                iki_std: std_dev(&ikis),
                keystrokes_per_session: mean(&keystrokes),
                special_per_session,
                accel_correlations: (corr_acc.0 / n, corr_acc.1 / n, corr_acc.2 / n),
                accel_energy: mean(&energy),
            }
        })
        .collect()
}

/// Formats the pattern table as aligned text (one row per user).
pub fn format_patterns(patterns: &[UserPattern]) -> String {
    let mut out = String::from(
        "user  sessions  dur(ms)  iki(ms)  iki-sd  keys/s  backspace/s  space/s  corr(xy,xz,yz)       energy\n",
    );
    for p in patterns {
        out.push_str(&format!(
            "{:<5} {:<9} {:<8.1} {:<8.1} {:<7.1} {:<7.1} {:<12.2} {:<8.2} ({:+.2},{:+.2},{:+.2})  {:.3}\n",
            p.user,
            p.sessions,
            p.mean_duration * 1000.0,
            p.mean_iki * 1000.0,
            p.iki_std * 1000.0,
            p.keystrokes_per_session,
            p.special_per_session[1],
            p.special_per_session[2],
            p.accel_correlations.0,
            p.accel_correlations.1,
            p.accel_correlations.2,
            p.accel_energy,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::keystroke::KeystrokeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cohort(rng: &mut StdRng) -> KeystrokeDataset {
        KeystrokeDataset::generate(
            &KeystrokeConfig { users: 8, sessions_per_user: 20, ..Default::default() },
            rng,
        )
    }

    #[test]
    fn analyzes_requested_user_count() {
        let mut rng = StdRng::seed_from_u64(380);
        let c = cohort(&mut rng);
        let patterns = analyze_top_users(&c, 5);
        assert_eq!(patterns.len(), 5);
        for p in &patterns {
            assert_eq!(p.sessions, 20);
            assert!(p.mean_duration > 0.0 && p.mean_iki > 0.0);
            assert!(p.keystrokes_per_session > 0.0);
        }
    }

    #[test]
    fn users_differ_in_patterns() {
        let mut rng = StdRng::seed_from_u64(381);
        let c = cohort(&mut rng);
        let patterns = analyze_top_users(&c, 8);
        let ikis: Vec<f32> = patterns.iter().map(|p| p.mean_iki).collect();
        let spread = std_dev(&ikis) / mean(&ikis);
        assert!(spread > 0.05, "user IKI spread too small: {spread}");
    }

    #[test]
    fn frequent_keys_use_paper_definition() {
        let p = UserPattern {
            user: 0,
            sessions: 1,
            mean_duration: 0.1,
            mean_iki: 0.2,
            iki_std: 0.1,
            keystrokes_per_session: 30.0,
            special_per_session: [0.5, 3.0, 6.0, 1.0, 0.1, 0.0],
            accel_correlations: (0.0, 0.0, 0.0),
            accel_energy: 0.1,
        };
        assert_eq!(p.frequent_keys(), vec!["backspace", "space"]);
    }

    #[test]
    fn formatting_is_nonempty_and_aligned() {
        let mut rng = StdRng::seed_from_u64(382);
        let c = cohort(&mut rng);
        let patterns = analyze_top_users(&c, 3);
        let text = format_patterns(&patterns);
        assert_eq!(text.lines().count(), 4); // header + 3 rows
        assert!(text.contains("backspace"));
    }
}
