//! Communication accounting for federated simulations.

use serde::{Deserialize, Serialize};

/// Running totals of bytes and messages exchanged with the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommLedger {
    /// Bytes uploaded from clients to the server.
    pub bytes_up: u64,
    /// Bytes downloaded from the server to clients.
    pub bytes_down: u64,
    /// Client→server messages.
    pub messages_up: u64,
    /// Server→client messages.
    pub messages_down: u64,
    /// Completed federation rounds.
    pub rounds: u64,
}

impl CommLedger {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one client upload of `bytes`.
    pub fn record_upload(&mut self, bytes: u64) {
        self.bytes_up += bytes;
        self.messages_up += 1;
    }

    /// Records one server→client download of `bytes`.
    pub fn record_download(&mut self, bytes: u64) {
        self.bytes_down += bytes;
        self.messages_down += 1;
    }

    /// Marks a round complete.
    pub fn finish_round(&mut self) {
        self.rounds += 1;
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut l = CommLedger::new();
        l.record_upload(100);
        l.record_upload(50);
        l.record_download(200);
        l.finish_round();
        assert_eq!(l.bytes_up, 150);
        assert_eq!(l.bytes_down, 200);
        assert_eq!(l.messages_up, 2);
        assert_eq!(l.messages_down, 1);
        assert_eq!(l.rounds, 1);
        assert_eq!(l.total_bytes(), 350);
    }
}
