//! Communication accounting for federated simulations.
//!
//! The ledger itself lives in `mdl-net` next to [`TransportMetrics`], the
//! transport-layer counters it is derived from
//! ([`TransportMetrics::ledger`]) — one source of truth for byte
//! accounting. This module re-exports both under the historical
//! `mdl_federated::comm` path.

pub use mdl_net::{CommLedger, TransportMetrics};
