//! Federated averaging and federated SGD (§II-B, references [17], [18]).
//!
//! Both algorithms share one simulation loop:
//!
//! 1. the server samples eligible clients;
//! 2. each selected client downloads the global parameters, runs local
//!    training, and uploads its new parameters weighted by `n_k`;
//! 3. the server replaces the global model with the weighted average
//!    `w ← Σ (n_k / n) w_k`.
//!
//! **FedSGD** is the degenerate case: every client takes exactly one
//! full-batch gradient step per round, so each round is equivalent to one
//! large-batch centralised step — correct but communication-hungry.
//! **FedAvg** lets clients run `E` local epochs of mini-batch SGD before
//! uploading, trading local computation for 10–100× fewer rounds.

use crate::comm::CommLedger;
use crate::model::MlpSpec;
use crate::scheduler::AvailabilityModel;
use mdl_data::Dataset;
use mdl_net::{Fabric, NetError, TransportMetrics};
use mdl_nn::{fit_classifier, Layer, Mode, ParamVector, Sgd, TrainConfig};
use mdl_sim::{run_legacy_loop, LegacyConfig, LocalUpdate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FedConfig {
    /// Maximum federation rounds.
    pub rounds: usize,
    /// Fraction `C` of eligible clients selected per round.
    pub client_fraction: f64,
    /// Local epochs `E` (1 with full batch = FedSGD).
    pub local_epochs: usize,
    /// Local mini-batch size `B` (`usize::MAX` = full batch).
    pub batch_size: usize,
    /// Client learning rate.
    pub learning_rate: f32,
    /// Evaluate the global model every this many rounds.
    pub eval_every: usize,
    /// Stop early once test accuracy reaches this level.
    pub target_accuracy: Option<f64>,
    /// Probability that a selected client fails mid-round (battery died,
    /// connection dropped) and never reports its update.
    pub failure_prob: f64,
    /// Upload 8-bit quantized parameters instead of fp32 (4× less uplink).
    pub quantize_uploads: bool,
    /// GEMM kernel threads used inside each client's local step (`None`
    /// keeps the process default). Clients already train on one scoped
    /// thread each, so keep this low to avoid oversubscription; changing
    /// it never changes results — the kernel is bit-deterministic.
    pub kernel_threads: Option<usize>,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            client_fraction: 0.2,
            local_epochs: 5,
            batch_size: 16,
            learning_rate: 0.1,
            eval_every: 1,
            target_accuracy: None,
            failure_prob: 0.0,
            quantize_uploads: false,
            kernel_threads: None,
        }
    }
}

impl FedConfig {
    /// The FedSGD baseline: all clients, one full-batch step per round.
    pub fn fedsgd(rounds: usize, learning_rate: f32) -> Self {
        Self {
            rounds,
            client_fraction: 1.0,
            local_epochs: 1,
            batch_size: usize::MAX,
            learning_rate,
            ..Default::default()
        }
    }
}

/// One evaluated round of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (1-based; round 0 is the initial model).
    pub round: usize,
    /// Global-model accuracy on the held-out test set.
    pub test_accuracy: f64,
    /// Cumulative bytes exchanged so far.
    pub total_bytes: u64,
    /// Clients that participated this round.
    pub participants: usize,
}

/// Result of a federated simulation.
#[derive(Debug)]
pub struct FedRun {
    /// Evaluated rounds in order.
    pub history: Vec<RoundRecord>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Communication totals (delivered traffic, derived from `transport`).
    pub ledger: CommLedger,
    /// Transport-layer counters: attempts, retries, timeouts, drops,
    /// wasted bytes and the simulated wall clock.
    pub transport: TransportMetrics,
    /// Round at which `target_accuracy` was first reached, if ever.
    pub rounds_to_target: Option<usize>,
}

impl FedRun {
    /// Final test accuracy (0.0 when no round was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.history.last().map(|r| r.test_accuracy).unwrap_or(0.0)
    }
}

/// Runs FedAvg/FedSGD over pre-partitioned client datasets, on an ideal
/// (fault-free, infinitely patient) network.
///
/// Equivalent to [`run_federated_over`] with [`Fabric::ideal`] — same
/// randomness, same byte accounting — and therefore infallible.
///
/// # Panics
///
/// Panics if `clients` is empty or the availability model covers a
/// different number of clients.
pub fn run_federated(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    config: &FedConfig,
    availability: &AvailabilityModel,
    rng: &mut StdRng,
) -> FedRun {
    let mut fabric = Fabric::ideal(clients.len());
    run_federated_over(spec, clients, test, config, availability, &mut fabric, rng)
        .expect("an ideal fabric never drops, times out, or misses quorum")
}

/// Runs FedAvg/FedSGD with every byte flowing through a simulated
/// transport [`Fabric`]: parameter broadcasts and update uploads can be
/// delayed, retried, lost to dropout or partitions, or cut off by the
/// per-round deadline. The server aggregates whatever quorum of updates
/// actually arrived; a round below quorum keeps the previous global model.
///
/// The round loop itself lives in `mdl-sim` ([`run_legacy_loop`]); this
/// function is a thin adapter that supplies the model-specific pieces —
/// eligibility sampling, local MLP training and evaluation — as closures.
/// The engine preserves the original control flow and RNG consumption
/// exactly, so results are bit-identical with the pre-engine
/// implementation (pinned by the `population` integration tests).
///
/// The fabric owns all fault/jitter randomness, so `rng` is consumed
/// exactly as in the fault-free [`run_federated`] — an idle fabric
/// reproduces it bit-for-bit.
///
/// # Errors
///
/// Returns [`NetError::QuorumUnreachable`] once
/// `fabric.config().max_failed_rounds` consecutive rounds fail to deliver
/// a quorum, instead of looping (or blocking) forever.
///
/// # Panics
///
/// Panics if `clients` is empty, or the availability model or fabric
/// covers a different number of clients.
pub fn run_federated_over(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    config: &FedConfig,
    availability: &AvailabilityModel,
    fabric: &mut Fabric,
    rng: &mut StdRng,
) -> Result<FedRun, NetError> {
    assert!(!clients.is_empty(), "need at least one client");
    assert_eq!(availability.clients(), clients.len(), "availability model must cover every client");
    assert_eq!(fabric.clients(), clients.len(), "fabric must cover every client");

    let mut global = spec.build();
    let params = global.param_vector();
    let param_bytes = 4 * params.len() as u64 + 8;
    let mut history = Vec::new();
    let mut rounds_to_target = None;

    // observability rides on the fabric (see `Fabric::attach_obs`): its
    // sim clock advances with the rounds and `net.*` counters mirror the
    // transport; the engine adds `fed.round` spans and `fed.*` counters
    let fed_obs = fabric.obs().cloned();

    let legacy = LegacyConfig {
        rounds: config.rounds,
        client_fraction: config.client_fraction,
        failure_prob: config.failure_prob,
        param_bytes,
    };
    let final_params = run_legacy_loop(
        &legacy,
        params,
        fabric,
        rng,
        // 1. per-round eligibility (Bernoulli idle/charging/unmetered)
        |rng| availability.sample_eligible(rng),
        // 2. one client's local training, on a scoped engine thread with
        // a pre-drawn seed; client-local training stays uninstrumented —
        // spans from concurrent client threads would interleave
        // nondeterministically
        |c, seed, params_ref| {
            let data = &clients[c];
            let mut local = spec.build_with(params_ref);
            let mut opt = Sgd::new(config.learning_rate);
            let mut local_rng = StdRng::seed_from_u64(seed);
            let batch = config.batch_size.min(data.len().max(1));
            let _ = fit_classifier(
                &mut local,
                &mut opt,
                &data.x,
                &data.y,
                &TrainConfig {
                    epochs: config.local_epochs,
                    batch_size: batch,
                    shuffle: true,
                    grad_clip: None,
                    kernel_threads: config.kernel_threads,
                    obs: None,
                },
                &mut local_rng,
            );
            let raw = local.param_vector();
            if config.quantize_uploads {
                let q = crate::update::QuantizedUpdate::quantize(&raw, data.len());
                let values = q.dequantize();
                let wire_bytes = 16 + values.len() as u64;
                LocalUpdate { values, num_examples: data.len() as u64, wire_bytes }
            } else {
                LocalUpdate::dense(raw, data.len() as u64)
            }
        },
        // 3. evaluation after each quorum-successful round
        |round, round_params, total_bytes, participants| {
            if round % config.eval_every == 0 || round == config.rounds {
                global.set_param_vector(round_params);
                let acc = global.accuracy(&test.x, &test.y);
                if let Some(obs) = &fed_obs {
                    obs.registry().gauge("fed.test_accuracy").set(acc);
                }
                history.push(RoundRecord { round, test_accuracy: acc, total_bytes, participants });
                if let Some(target) = config.target_accuracy {
                    if acc >= target {
                        rounds_to_target = Some(round);
                        return true;
                    }
                }
            }
            false
        },
    )?;

    let transport = fabric.metrics();
    Ok(FedRun { history, final_params, ledger: transport.ledger(), transport, rounds_to_target })
}

/// Trains the same architecture centrally on the union of client data —
/// the upper-bound reference every federated curve is compared against.
pub fn centralized_reference(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    epochs: usize,
    learning_rate: f32,
    rng: &mut StdRng,
) -> f64 {
    let mut all_x = clients[0].x.clone();
    let mut all_y = clients[0].y.clone();
    for c in &clients[1..] {
        all_x = all_x.vstack(&c.x);
        all_y.extend_from_slice(&c.y);
    }
    let mut net = spec.build();
    let mut opt = Sgd::new(learning_rate);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &all_x,
        &all_y,
        &TrainConfig { epochs, batch_size: 32, ..Default::default() },
        rng,
    );
    net.accuracy(&test.x, &test.y)
}

/// Evaluates a parameter vector on a dataset using the given spec.
pub fn evaluate_params(spec: &MlpSpec, params: &[f32], data: &Dataset) -> f64 {
    let mut net = spec.build_with(params);
    let pred = net.forward(&data.x, Mode::Eval).argmax_rows();
    mdl_data::metrics::accuracy(&data.y, &pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::partition::{partition_dataset, Partition};
    use mdl_data::synthetic::gaussian_blobs;

    fn setup(rng: &mut StdRng) -> (MlpSpec, Vec<Dataset>, Dataset) {
        let data = gaussian_blobs(400, 4, 0.5, rng);
        let (train, test) = data.split(0.8, rng);
        let clients = partition_dataset(&train, 8, Partition::Iid, rng);
        (MlpSpec::new(vec![2, 16, 4], 3), clients, test)
    }

    #[test]
    fn fedavg_learns_blobs() {
        let mut rng = StdRng::seed_from_u64(190);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let config = FedConfig {
            rounds: 15,
            client_fraction: 0.5,
            local_epochs: 3,
            batch_size: 16,
            learning_rate: 0.2,
            ..Default::default()
        };
        let run = run_federated(&spec, &clients, &test, &config, &availability, &mut rng);
        assert!(run.final_accuracy() > 0.9, "accuracy={}", run.final_accuracy());
        assert_eq!(run.history.len(), 15);
        assert!(run.ledger.bytes_up > 0 && run.ledger.bytes_down > 0);
    }

    #[test]
    fn fedavg_converges_faster_than_fedsgd_per_round() {
        let mut rng = StdRng::seed_from_u64(191);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        // few rounds + small lr: FedSGD has taken only 3 full-batch steps
        // while FedAvg has done 3 × 5 local epochs of mini-batch SGD
        let rounds = 3;
        let lr = 0.05;
        let sgd_run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { eval_every: 1, ..FedConfig::fedsgd(rounds, lr) },
            &availability,
            &mut rng,
        );
        let avg_run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig {
                rounds,
                client_fraction: 1.0,
                local_epochs: 5,
                batch_size: 16,
                learning_rate: lr,
                ..Default::default()
            },
            &availability,
            &mut rng,
        );
        assert!(
            avg_run.final_accuracy() > sgd_run.final_accuracy() + 0.05,
            "FedAvg {} should beat FedSGD {} at equal rounds",
            avg_run.final_accuracy(),
            sgd_run.final_accuracy()
        );
    }

    #[test]
    fn target_accuracy_stops_early() {
        let mut rng = StdRng::seed_from_u64(192);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let config = FedConfig {
            rounds: 50,
            target_accuracy: Some(0.8),
            local_epochs: 3,
            learning_rate: 0.2,
            client_fraction: 1.0,
            ..Default::default()
        };
        let run = run_federated(&spec, &clients, &test, &config, &availability, &mut rng);
        let hit = run.rounds_to_target.expect("should reach 80% on blobs");
        assert!(hit < 50, "early stop at round {hit}");
        assert_eq!(run.history.last().unwrap().round, hit);
    }

    #[test]
    fn unavailable_clients_stall_rounds() {
        let mut rng = StdRng::seed_from_u64(193);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::new(clients.len(), 0.0, 1.0, 1.0);
        let run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { rounds: 5, ..Default::default() },
            &availability,
            &mut rng,
        );
        assert!(run.history.is_empty(), "no eligible clients → no evaluated rounds");
        assert_eq!(run.ledger.bytes_up, 0);
    }

    #[test]
    fn failure_injection_still_converges() {
        let mut rng = StdRng::seed_from_u64(195);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig {
                rounds: 20,
                client_fraction: 1.0,
                failure_prob: 0.4,
                learning_rate: 0.2,
                local_epochs: 3,
                ..Default::default()
            },
            &availability,
            &mut rng,
        );
        assert!(
            run.final_accuracy() > 0.85,
            "40% client failures should only slow convergence: {}",
            run.final_accuracy()
        );
        // reported participants reflect survivors, not the selected cohort
        let mean_participants = run.history.iter().map(|h| h.participants).sum::<usize>() as f64
            / run.history.len() as f64;
        assert!(
            mean_participants < clients.len() as f64 * 0.8,
            "failures must shrink reporting cohorts: {mean_participants}"
        );
    }

    #[test]
    fn quantized_uploads_shrink_traffic_without_breaking_learning() {
        let mut rng = StdRng::seed_from_u64(196);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let cfg = FedConfig {
            rounds: 10,
            client_fraction: 1.0,
            learning_rate: 0.2,
            local_epochs: 3,
            ..Default::default()
        };
        let fp32 = run_federated(&spec, &clients, &test, &cfg, &availability, &mut rng);
        let q = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { quantize_uploads: true, ..cfg },
            &availability,
            &mut rng,
        );
        assert!(
            q.ledger.bytes_up * 3 < fp32.ledger.bytes_up,
            "8-bit uploads should be ~4× smaller: {} vs {}",
            q.ledger.bytes_up,
            fp32.ledger.bytes_up
        );
        assert!(
            q.final_accuracy() > fp32.final_accuracy() - 0.1,
            "quantization must not wreck convergence: {} vs {}",
            q.final_accuracy(),
            fp32.final_accuracy()
        );
    }

    #[test]
    fn fabric_dropout_shrinks_cohorts_but_learning_survives() {
        use mdl_net::{FabricConfig, FaultPlan};
        let mut rng = StdRng::seed_from_u64(197);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let config = FedConfig {
            rounds: 15,
            client_fraction: 1.0,
            learning_rate: 0.2,
            local_epochs: 3,
            ..Default::default()
        };
        let fabric_cfg = FabricConfig {
            faults: FaultPlan { dropout_prob: 0.3, ..FaultPlan::none() },
            quorum_fraction: 0.25,
            max_failed_rounds: 10,
            ..FabricConfig::ideal()
        };
        let mut fabric = Fabric::new(clients.len(), fabric_cfg, 11);
        let run = run_federated_over(
            &spec,
            &clients,
            &test,
            &config,
            &availability,
            &mut fabric,
            &mut rng,
        )
        .expect("quorum of 25% is reachable under 30% dropout");
        assert!(run.final_accuracy() > 0.85, "accuracy={}", run.final_accuracy());
        assert!(run.transport.drops > 0, "dropout must surface in the metrics");
        assert_eq!(run.ledger, run.transport.ledger(), "ledger is derived from transport");
        let mean_participants = run.history.iter().map(|h| h.participants).sum::<usize>() as f64
            / run.history.len() as f64;
        assert!(mean_participants < clients.len() as f64, "dropped clients never report");
    }

    #[test]
    fn unreachable_quorum_is_a_typed_error_not_a_hang() {
        use mdl_net::{FabricConfig, FaultPlan, NetError, PartitionWindow};
        let mut rng = StdRng::seed_from_u64(198);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let fabric_cfg = FabricConfig {
            faults: FaultPlan {
                partitions: vec![PartitionWindow {
                    from_round: 1,
                    until_round: usize::MAX,
                    clients: vec![],
                }],
                ..FaultPlan::none()
            },
            quorum_fraction: 0.5,
            max_failed_rounds: 3,
            ..FabricConfig::ideal()
        };
        let mut fabric = Fabric::new(clients.len(), fabric_cfg, 5);
        let err = run_federated_over(
            &spec,
            &clients,
            &test,
            &FedConfig { rounds: 50, ..Default::default() },
            &availability,
            &mut fabric,
            &mut rng,
        )
        .expect_err("a fully partitioned cohort can never reach quorum");
        match err {
            NetError::QuorumUnreachable { round, needed, got } => {
                assert_eq!(round, 3, "gives up after max_failed_rounds consecutive misses");
                assert!(needed >= 1);
                assert_eq!(got, 0);
            }
            other => panic!("expected QuorumUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn centralized_reference_is_strong() {
        let mut rng = StdRng::seed_from_u64(194);
        let (spec, clients, test) = setup(&mut rng);
        let acc = centralized_reference(&spec, &clients, &test, 20, 0.2, &mut rng);
        assert!(acc > 0.9, "centralised accuracy {acc}");
    }
}
