//! Federated averaging and federated SGD (§II-B, references [17], [18]).
//!
//! Both algorithms share one simulation loop:
//!
//! 1. the server samples eligible clients;
//! 2. each selected client downloads the global parameters, runs local
//!    training, and uploads its new parameters weighted by `n_k`;
//! 3. the server replaces the global model with the weighted average
//!    `w ← Σ (n_k / n) w_k`.
//!
//! **FedSGD** is the degenerate case: every client takes exactly one
//! full-batch gradient step per round, so each round is equivalent to one
//! large-batch centralised step — correct but communication-hungry.
//! **FedAvg** lets clients run `E` local epochs of mini-batch SGD before
//! uploading, trading local computation for 10–100× fewer rounds.

use crate::comm::CommLedger;
use crate::model::MlpSpec;
use crate::scheduler::AvailabilityModel;
use crate::update::{weighted_average, DenseUpdate};
use mdl_data::Dataset;
use mdl_net::{Fabric, NetError, TransportMetrics};
use mdl_nn::{fit_classifier, Layer, Mode, ParamVector, Sgd, TrainConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FedConfig {
    /// Maximum federation rounds.
    pub rounds: usize,
    /// Fraction `C` of eligible clients selected per round.
    pub client_fraction: f64,
    /// Local epochs `E` (1 with full batch = FedSGD).
    pub local_epochs: usize,
    /// Local mini-batch size `B` (`usize::MAX` = full batch).
    pub batch_size: usize,
    /// Client learning rate.
    pub learning_rate: f32,
    /// Evaluate the global model every this many rounds.
    pub eval_every: usize,
    /// Stop early once test accuracy reaches this level.
    pub target_accuracy: Option<f64>,
    /// Probability that a selected client fails mid-round (battery died,
    /// connection dropped) and never reports its update.
    pub failure_prob: f64,
    /// Upload 8-bit quantized parameters instead of fp32 (4× less uplink).
    pub quantize_uploads: bool,
    /// GEMM kernel threads used inside each client's local step (`None`
    /// keeps the process default). Clients already train on one scoped
    /// thread each, so keep this low to avoid oversubscription; changing
    /// it never changes results — the kernel is bit-deterministic.
    pub kernel_threads: Option<usize>,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            client_fraction: 0.2,
            local_epochs: 5,
            batch_size: 16,
            learning_rate: 0.1,
            eval_every: 1,
            target_accuracy: None,
            failure_prob: 0.0,
            quantize_uploads: false,
            kernel_threads: None,
        }
    }
}

impl FedConfig {
    /// The FedSGD baseline: all clients, one full-batch step per round.
    pub fn fedsgd(rounds: usize, learning_rate: f32) -> Self {
        Self {
            rounds,
            client_fraction: 1.0,
            local_epochs: 1,
            batch_size: usize::MAX,
            learning_rate,
            ..Default::default()
        }
    }
}

/// One evaluated round of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (1-based; round 0 is the initial model).
    pub round: usize,
    /// Global-model accuracy on the held-out test set.
    pub test_accuracy: f64,
    /// Cumulative bytes exchanged so far.
    pub total_bytes: u64,
    /// Clients that participated this round.
    pub participants: usize,
}

/// Result of a federated simulation.
#[derive(Debug)]
pub struct FedRun {
    /// Evaluated rounds in order.
    pub history: Vec<RoundRecord>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Communication totals (delivered traffic, derived from `transport`).
    pub ledger: CommLedger,
    /// Transport-layer counters: attempts, retries, timeouts, drops,
    /// wasted bytes and the simulated wall clock.
    pub transport: TransportMetrics,
    /// Round at which `target_accuracy` was first reached, if ever.
    pub rounds_to_target: Option<usize>,
}

impl FedRun {
    /// Final test accuracy (0.0 when no round was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.history.last().map(|r| r.test_accuracy).unwrap_or(0.0)
    }
}

/// Runs FedAvg/FedSGD over pre-partitioned client datasets, on an ideal
/// (fault-free, infinitely patient) network.
///
/// Equivalent to [`run_federated_over`] with [`Fabric::ideal`] — same
/// randomness, same byte accounting — and therefore infallible.
///
/// # Panics
///
/// Panics if `clients` is empty or the availability model covers a
/// different number of clients.
pub fn run_federated(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    config: &FedConfig,
    availability: &AvailabilityModel,
    rng: &mut StdRng,
) -> FedRun {
    let mut fabric = Fabric::ideal(clients.len());
    run_federated_over(spec, clients, test, config, availability, &mut fabric, rng)
        .expect("an ideal fabric never drops, times out, or misses quorum")
}

/// Runs FedAvg/FedSGD with every byte flowing through a simulated
/// transport [`Fabric`]: parameter broadcasts and update uploads can be
/// delayed, retried, lost to dropout or partitions, or cut off by the
/// per-round deadline. The server aggregates whatever quorum of updates
/// actually arrived; a round below quorum keeps the previous global model.
///
/// The fabric owns all fault/jitter randomness, so `rng` is consumed
/// exactly as in the fault-free [`run_federated`] — an idle fabric
/// reproduces it bit-for-bit.
///
/// # Errors
///
/// Returns [`NetError::QuorumUnreachable`] once
/// `fabric.config().max_failed_rounds` consecutive rounds fail to deliver
/// a quorum, instead of looping (or blocking) forever.
///
/// # Panics
///
/// Panics if `clients` is empty, or the availability model or fabric
/// covers a different number of clients.
pub fn run_federated_over(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    config: &FedConfig,
    availability: &AvailabilityModel,
    fabric: &mut Fabric,
    rng: &mut StdRng,
) -> Result<FedRun, NetError> {
    assert!(!clients.is_empty(), "need at least one client");
    assert_eq!(availability.clients(), clients.len(), "availability model must cover every client");
    assert_eq!(fabric.clients(), clients.len(), "fabric must cover every client");

    let mut global = spec.build();
    let mut params = global.param_vector();
    let mut history = Vec::new();
    let mut rounds_to_target = None;
    let mut consecutive_quorum_misses = 0usize;
    let param_bytes = 4 * params.len() as u64 + 8;

    // observability rides on the fabric (see `Fabric::attach_obs`): its
    // sim clock advances with the rounds and `net.*` counters mirror the
    // transport; here we add `fed.round` spans and `fed.*` counters
    let fed_obs = fabric.obs().cloned();
    let fed_counters = fed_obs.as_ref().map(|o| {
        let r = o.registry();
        (r.counter("fed.selected"), r.counter("fed.updates"), r.counter("fed.quorum_misses"))
    });

    for round in 1..=config.rounds {
        // declared before any `continue`, so the span closes after the
        // round's `end_round` (and clock advance) on every path
        let round_span = fed_obs.as_ref().map(|o| o.root_span("fed.round"));
        let _ = &round_span;
        fabric.begin_round();

        // 1. sample eligible clients, then C-fraction of them
        let mut eligible = availability.sample_eligible(rng);
        if eligible.is_empty() {
            fabric.end_round();
            continue;
        }
        eligible.shuffle(rng);
        let m = (((eligible.len() as f64) * config.client_fraction).round() as usize)
            .clamp(1, eligible.len());
        let selected = &eligible[..m];

        // 2. local training, run in parallel — clients are independent
        // devices. Seeds and failure fates are drawn *in selection order*
        // before spawning so the run stays bit-deterministic regardless of
        // thread scheduling. The parameter broadcast goes over the fabric
        // first: a client that never received the model cannot train, and
        // one the fault plan dropped would never report back, so neither
        // gets a thread.
        let fates: Vec<(u64, bool)> = selected
            .iter()
            .map(|_| {
                let seed: u64 = rng.gen();
                let fails = config.failure_prob > 0.0 && rng.gen::<f64>() < config.failure_prob;
                (seed, fails)
            })
            .collect();
        let reached: Vec<bool> = selected
            .iter()
            .map(|&c| fabric.send_down(c, param_bytes).is_ok() && !fabric.client_dropped(c))
            .collect();
        let params_ref = &params;
        let results: Vec<Option<DenseUpdate>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = selected
                .iter()
                .zip(fates.iter().zip(reached.iter()))
                .map(|(&c, (&(seed, fails), &reached))| {
                    scope.spawn(move |_| {
                        if fails || !reached {
                            return None;
                        }
                        let data = &clients[c];
                        let mut local = spec.build_with(params_ref);
                        let mut opt = Sgd::new(config.learning_rate);
                        let mut local_rng = StdRng::seed_from_u64(seed);
                        let batch = config.batch_size.min(data.len().max(1));
                        let _ = fit_classifier(
                            &mut local,
                            &mut opt,
                            &data.x,
                            &data.y,
                            &TrainConfig {
                                epochs: config.local_epochs,
                                batch_size: batch,
                                shuffle: true,
                                grad_clip: None,
                                kernel_threads: config.kernel_threads,
                                // client-local training stays uninstrumented:
                                // spans from concurrent client threads would
                                // interleave nondeterministically
                                obs: None,
                            },
                            &mut local_rng,
                        );
                        let raw = local.param_vector();
                        Some(if config.quantize_uploads {
                            let q = crate::update::QuantizedUpdate::quantize(&raw, data.len());
                            DenseUpdate { values: q.dequantize(), num_examples: data.len() }
                        } else {
                            DenseUpdate { values: raw, num_examples: data.len() }
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
        })
        .expect("client scope");

        let mut updates = Vec::with_capacity(selected.len());
        for (&c, update) in selected.iter().zip(results) {
            let Some(update) = update else { continue };
            let bytes = if config.quantize_uploads {
                16 + update.values.len() as u64
            } else {
                update.wire_bytes()
            };
            if fabric.send_up(c, bytes).is_ok() {
                updates.push(update);
            }
        }
        let completed = updates.len();
        if let Some((selected_c, updates_c, _)) = &fed_counters {
            selected_c.add(selected.len() as u64);
            updates_c.add(completed as u64);
        }

        // 3. weighted aggregation over the quorum that actually arrived;
        // a round below quorum keeps the previous global model, and too
        // many consecutive misses is a typed failure, not a hang
        let needed = fabric.quorum_min(selected.len());
        if completed < needed {
            consecutive_quorum_misses += 1;
            if let Some((_, _, misses)) = &fed_counters {
                misses.inc();
            }
            if consecutive_quorum_misses >= fabric.config().max_failed_rounds {
                return Err(NetError::QuorumUnreachable { round, needed, got: completed });
            }
            fabric.end_round();
            continue;
        }
        consecutive_quorum_misses = 0;
        if let Some(avg) = weighted_average(&updates) {
            params = avg;
        }
        fabric.end_round();

        // 4. evaluation
        if round % config.eval_every == 0 || round == config.rounds {
            global.set_param_vector(&params);
            let acc = global.accuracy(&test.x, &test.y);
            if let Some(obs) = &fed_obs {
                obs.registry().gauge("fed.test_accuracy").set(acc);
            }
            history.push(RoundRecord {
                round,
                test_accuracy: acc,
                total_bytes: fabric.metrics().ledger().total_bytes(),
                participants: completed,
            });
            if let Some(target) = config.target_accuracy {
                if acc >= target {
                    rounds_to_target = Some(round);
                    break;
                }
            }
        }
    }

    let transport = fabric.metrics();
    Ok(FedRun {
        history,
        final_params: params,
        ledger: transport.ledger(),
        transport,
        rounds_to_target,
    })
}

/// Trains the same architecture centrally on the union of client data —
/// the upper-bound reference every federated curve is compared against.
pub fn centralized_reference(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    epochs: usize,
    learning_rate: f32,
    rng: &mut StdRng,
) -> f64 {
    let mut all_x = clients[0].x.clone();
    let mut all_y = clients[0].y.clone();
    for c in &clients[1..] {
        all_x = all_x.vstack(&c.x);
        all_y.extend_from_slice(&c.y);
    }
    let mut net = spec.build();
    let mut opt = Sgd::new(learning_rate);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &all_x,
        &all_y,
        &TrainConfig { epochs, batch_size: 32, ..Default::default() },
        rng,
    );
    net.accuracy(&test.x, &test.y)
}

/// Evaluates a parameter vector on a dataset using the given spec.
pub fn evaluate_params(spec: &MlpSpec, params: &[f32], data: &Dataset) -> f64 {
    let mut net = spec.build_with(params);
    let pred = net.forward(&data.x, Mode::Eval).argmax_rows();
    mdl_data::metrics::accuracy(&data.y, &pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::partition::{partition_dataset, Partition};
    use mdl_data::synthetic::gaussian_blobs;

    fn setup(rng: &mut StdRng) -> (MlpSpec, Vec<Dataset>, Dataset) {
        let data = gaussian_blobs(400, 4, 0.5, rng);
        let (train, test) = data.split(0.8, rng);
        let clients = partition_dataset(&train, 8, Partition::Iid, rng);
        (MlpSpec::new(vec![2, 16, 4], 3), clients, test)
    }

    #[test]
    fn fedavg_learns_blobs() {
        let mut rng = StdRng::seed_from_u64(190);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let config = FedConfig {
            rounds: 15,
            client_fraction: 0.5,
            local_epochs: 3,
            batch_size: 16,
            learning_rate: 0.2,
            ..Default::default()
        };
        let run = run_federated(&spec, &clients, &test, &config, &availability, &mut rng);
        assert!(run.final_accuracy() > 0.9, "accuracy={}", run.final_accuracy());
        assert_eq!(run.history.len(), 15);
        assert!(run.ledger.bytes_up > 0 && run.ledger.bytes_down > 0);
    }

    #[test]
    fn fedavg_converges_faster_than_fedsgd_per_round() {
        let mut rng = StdRng::seed_from_u64(191);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        // few rounds + small lr: FedSGD has taken only 3 full-batch steps
        // while FedAvg has done 3 × 5 local epochs of mini-batch SGD
        let rounds = 3;
        let lr = 0.05;
        let sgd_run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { eval_every: 1, ..FedConfig::fedsgd(rounds, lr) },
            &availability,
            &mut rng,
        );
        let avg_run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig {
                rounds,
                client_fraction: 1.0,
                local_epochs: 5,
                batch_size: 16,
                learning_rate: lr,
                ..Default::default()
            },
            &availability,
            &mut rng,
        );
        assert!(
            avg_run.final_accuracy() > sgd_run.final_accuracy() + 0.05,
            "FedAvg {} should beat FedSGD {} at equal rounds",
            avg_run.final_accuracy(),
            sgd_run.final_accuracy()
        );
    }

    #[test]
    fn target_accuracy_stops_early() {
        let mut rng = StdRng::seed_from_u64(192);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let config = FedConfig {
            rounds: 50,
            target_accuracy: Some(0.8),
            local_epochs: 3,
            learning_rate: 0.2,
            client_fraction: 1.0,
            ..Default::default()
        };
        let run = run_federated(&spec, &clients, &test, &config, &availability, &mut rng);
        let hit = run.rounds_to_target.expect("should reach 80% on blobs");
        assert!(hit < 50, "early stop at round {hit}");
        assert_eq!(run.history.last().unwrap().round, hit);
    }

    #[test]
    fn unavailable_clients_stall_rounds() {
        let mut rng = StdRng::seed_from_u64(193);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::new(clients.len(), 0.0, 1.0, 1.0);
        let run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { rounds: 5, ..Default::default() },
            &availability,
            &mut rng,
        );
        assert!(run.history.is_empty(), "no eligible clients → no evaluated rounds");
        assert_eq!(run.ledger.bytes_up, 0);
    }

    #[test]
    fn failure_injection_still_converges() {
        let mut rng = StdRng::seed_from_u64(195);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let run = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig {
                rounds: 20,
                client_fraction: 1.0,
                failure_prob: 0.4,
                learning_rate: 0.2,
                local_epochs: 3,
                ..Default::default()
            },
            &availability,
            &mut rng,
        );
        assert!(
            run.final_accuracy() > 0.85,
            "40% client failures should only slow convergence: {}",
            run.final_accuracy()
        );
        // reported participants reflect survivors, not the selected cohort
        let mean_participants = run.history.iter().map(|h| h.participants).sum::<usize>() as f64
            / run.history.len() as f64;
        assert!(
            mean_participants < clients.len() as f64 * 0.8,
            "failures must shrink reporting cohorts: {mean_participants}"
        );
    }

    #[test]
    fn quantized_uploads_shrink_traffic_without_breaking_learning() {
        let mut rng = StdRng::seed_from_u64(196);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let cfg = FedConfig {
            rounds: 10,
            client_fraction: 1.0,
            learning_rate: 0.2,
            local_epochs: 3,
            ..Default::default()
        };
        let fp32 = run_federated(&spec, &clients, &test, &cfg, &availability, &mut rng);
        let q = run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { quantize_uploads: true, ..cfg },
            &availability,
            &mut rng,
        );
        assert!(
            q.ledger.bytes_up * 3 < fp32.ledger.bytes_up,
            "8-bit uploads should be ~4× smaller: {} vs {}",
            q.ledger.bytes_up,
            fp32.ledger.bytes_up
        );
        assert!(
            q.final_accuracy() > fp32.final_accuracy() - 0.1,
            "quantization must not wreck convergence: {} vs {}",
            q.final_accuracy(),
            fp32.final_accuracy()
        );
    }

    #[test]
    fn fabric_dropout_shrinks_cohorts_but_learning_survives() {
        use mdl_net::{FabricConfig, FaultPlan};
        let mut rng = StdRng::seed_from_u64(197);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let config = FedConfig {
            rounds: 15,
            client_fraction: 1.0,
            learning_rate: 0.2,
            local_epochs: 3,
            ..Default::default()
        };
        let fabric_cfg = FabricConfig {
            faults: FaultPlan { dropout_prob: 0.3, ..FaultPlan::none() },
            quorum_fraction: 0.25,
            max_failed_rounds: 10,
            ..FabricConfig::ideal()
        };
        let mut fabric = Fabric::new(clients.len(), fabric_cfg, 11);
        let run = run_federated_over(
            &spec,
            &clients,
            &test,
            &config,
            &availability,
            &mut fabric,
            &mut rng,
        )
        .expect("quorum of 25% is reachable under 30% dropout");
        assert!(run.final_accuracy() > 0.85, "accuracy={}", run.final_accuracy());
        assert!(run.transport.drops > 0, "dropout must surface in the metrics");
        assert_eq!(run.ledger, run.transport.ledger(), "ledger is derived from transport");
        let mean_participants = run.history.iter().map(|h| h.participants).sum::<usize>() as f64
            / run.history.len() as f64;
        assert!(mean_participants < clients.len() as f64, "dropped clients never report");
    }

    #[test]
    fn unreachable_quorum_is_a_typed_error_not_a_hang() {
        use mdl_net::{FabricConfig, FaultPlan, NetError, PartitionWindow};
        let mut rng = StdRng::seed_from_u64(198);
        let (spec, clients, test) = setup(&mut rng);
        let availability = AvailabilityModel::always_available(clients.len());
        let fabric_cfg = FabricConfig {
            faults: FaultPlan {
                partitions: vec![PartitionWindow {
                    from_round: 1,
                    until_round: usize::MAX,
                    clients: vec![],
                }],
                ..FaultPlan::none()
            },
            quorum_fraction: 0.5,
            max_failed_rounds: 3,
            ..FabricConfig::ideal()
        };
        let mut fabric = Fabric::new(clients.len(), fabric_cfg, 5);
        let err = run_federated_over(
            &spec,
            &clients,
            &test,
            &FedConfig { rounds: 50, ..Default::default() },
            &availability,
            &mut fabric,
            &mut rng,
        )
        .expect_err("a fully partitioned cohort can never reach quorum");
        match err {
            NetError::QuorumUnreachable { round, needed, got } => {
                assert_eq!(round, 3, "gives up after max_failed_rounds consecutive misses");
                assert!(needed >= 1);
                assert_eq!(got, 0);
            }
            other => panic!("expected QuorumUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn centralized_reference_is_strong() {
        let mut rng = StdRng::seed_from_u64(194);
        let (spec, clients, test) = setup(&mut rng);
        let acc = centralized_reference(&spec, &clients, &test, 20, 0.2, &mut rng);
        assert!(acc > 0.9, "centralised accuracy {acc}");
    }
}
