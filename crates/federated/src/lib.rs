//! # mdl-federated
//!
//! Training-side systems of the paper (§II): simulations of
//!
//! - **distributed selective SGD** ([`selective`], Fig. 1 / reference [16]):
//!   participants upload only the largest-magnitude θ-fraction of gradients;
//! - **federated SGD / federated averaging** ([`fedavg`], references
//!   [17], [18]): weighted model averaging with `E` local epochs, including
//!   the idle+charging+Wi-Fi eligibility policy ([`scheduler`]);
//! - transport framing and byte accounting ([`update`], [`comm`]) so every
//!   experiment can report communication costs.
//!
//! Both simulations can also run over the `mdl-net` faulty-transport
//! fabric ([`run_federated_over`], [`run_selective_sgd_over`]): dropouts,
//! stragglers, partitions and packet loss with retries, per-round
//! deadlines and quorum aggregation — all seeded and bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use mdl_federated::{MlpSpec, FedConfig, run_federated, AvailabilityModel};
//! use mdl_data::synthetic::gaussian_blobs;
//! use mdl_data::partition::{partition_dataset, Partition};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = gaussian_blobs(200, 2, 0.4, &mut rng);
//! let (train, test) = data.split(0.8, &mut rng);
//! let clients = partition_dataset(&train, 4, Partition::Iid, &mut rng);
//! let spec = MlpSpec::new(vec![2, 8, 2], 1);
//! let avail = AvailabilityModel::always_available(4);
//! let cfg = FedConfig { rounds: 3, ..Default::default() };
//! let run = run_federated(&spec, &clients, &test, &cfg, &avail, &mut rng);
//! assert_eq!(run.history.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod fedavg;
pub mod model;
pub mod population;
pub mod scheduler;
pub mod selective;
pub mod update;

pub use comm::{CommLedger, TransportMetrics};
pub use fedavg::{
    centralized_reference, evaluate_params, run_federated, run_federated_over, FedConfig, FedRun,
    RoundRecord,
};
pub use model::MlpSpec;
pub use population::{run_population_fedavg, PopulationTask};
pub use scheduler::{AvailabilityModel, DeviceState};
pub use selective::{run_selective_sgd, run_selective_sgd_over, SelectiveConfig, SelectiveRun};
pub use update::{weighted_average, DenseUpdate, QuantizedUpdate, SparseUpdate};

#[cfg(test)]
mod proptests {
    use crate::update::{weighted_average, DenseUpdate, SparseUpdate};
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dense_update_round_trips(
            values in prop::collection::vec(-1e3f32..1e3, 0..64),
            n in 0usize..10_000,
        ) {
            let u = DenseUpdate { values, num_examples: n };
            let decoded = DenseUpdate::decode(u.encode()).expect("round trip");
            prop_assert_eq!(decoded, u);
        }

        #[test]
        fn decode_never_panics(frame in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = DenseUpdate::decode(Bytes::from(frame));
        }

        #[test]
        fn sparse_selection_is_subset_with_exact_values(
            delta in prop::collection::vec(-10f32..10.0, 1..64),
            frac_pct in 1u32..=100,
        ) {
            let frac = frac_pct as f64 / 100.0;
            let s = SparseUpdate::top_fraction(&delta, frac, 1);
            prop_assert!(!s.entries.is_empty());
            prop_assert!(s.entries.len() <= delta.len());
            for &(i, v) in &s.entries {
                prop_assert_eq!(delta[i as usize], v);
            }
            // entries sorted & unique
            for w in s.entries.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            // kept magnitudes dominate dropped ones
            let kept: Vec<u32> = s.entries.iter().map(|e| e.0).collect();
            let min_kept = s.entries.iter().map(|e| e.1.abs()).fold(f32::MAX, f32::min);
            for (i, &v) in delta.iter().enumerate() {
                if !kept.contains(&(i as u32)) {
                    prop_assert!(v.abs() <= min_kept + 1e-6);
                }
            }
        }

        #[test]
        fn weighted_average_stays_in_hull(
            a in prop::collection::vec(-5f32..5.0, 4),
            b in prop::collection::vec(-5f32..5.0, 4),
            na in 1usize..100,
            nb in 1usize..100,
        ) {
            let avg = weighted_average(&[
                DenseUpdate { values: a.clone(), num_examples: na },
                DenseUpdate { values: b.clone(), num_examples: nb },
            ]).expect("avg");
            for i in 0..4 {
                let lo = a[i].min(b[i]) - 1e-4;
                let hi = a[i].max(b[i]) + 1e-4;
                prop_assert!(avg[i] >= lo && avg[i] <= hi);
            }
        }
    }
}
