//! Declarative model specification shared by server and clients.
//!
//! Federated clients cannot share a single mutable model, so the simulation
//! ships a [`MlpSpec`] (architecture + init seed) and a flat parameter
//! vector; every participant can then materialise an identical model.

use mdl_nn::{Activation, Dense, ParamVector, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture of a multilayer perceptron classifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpSpec {
    /// Layer widths, input first, classes last, e.g. `[64, 128, 10]`.
    pub dims: Vec<usize>,
    /// Seed for the deterministic initial weights.
    pub init_seed: u64,
}

impl MlpSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: Vec<usize>, init_seed: u64) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output widths");
        Self { dims, init_seed }
    }

    /// Builds the network at its deterministic initial weights.
    ///
    /// Hidden layers use ReLU; the output layer emits raw logits.
    pub fn build(&self) -> Sequential {
        let mut rng = StdRng::seed_from_u64(self.init_seed);
        let mut net = Sequential::new();
        for w in self.dims.windows(2).enumerate() {
            let (i, pair) = w;
            let act =
                if i + 2 == self.dims.len() { Activation::Identity } else { Activation::Relu };
            net.push(Dense::new(pair[0], pair[1], act, &mut rng));
        }
        net
    }

    /// Builds the network and loads `params` into it.
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    pub fn build_with(&self, params: &[f32]) -> Sequential {
        let mut net = self.build();
        net.set_param_vector(params);
        net
    }

    /// Number of scalar parameters of the architecture.
    pub fn num_params(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{Layer, Mode};
    use mdl_tensor::Matrix;

    #[test]
    fn build_is_deterministic() {
        let spec = MlpSpec::new(vec![4, 8, 3], 9);
        let mut a = spec.build();
        let mut b = spec.build();
        assert_eq!(a.param_vector(), b.param_vector());
        assert_eq!(spec.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn build_with_loads_params() {
        let spec = MlpSpec::new(vec![2, 2], 1);
        let params = vec![1.0, 0.0, 0.0, 1.0, 0.5, -0.5];
        let mut net = spec.build_with(&params);
        assert_eq!(net.param_vector(), params);
        let y = net.forward(&Matrix::from_rows(&[&[2.0, 3.0]]), Mode::Eval);
        assert_eq!(y.row(0), &[2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let _ = MlpSpec::new(vec![4], 0);
    }
}
