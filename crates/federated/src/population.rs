//! Population-scale FedAvg: the model-specific half of `mdl-sim`'s
//! [`run_population`] engine.
//!
//! The engine owns *when* a client trains (availability, cohort
//! sampling, transport, deadlines); this module owns *what* training
//! means: a [`PopulationTask`] materialises any client's local dataset
//! on demand from its stable id — shared Gaussian-blob class structure,
//! client-specific noise draws — so a 100k-client population costs no
//! per-client storage, and runs local mini-batch SGD on the global MLP.
//! Everything derives from `(data_seed, client id)` and the engine's
//! pre-drawn round seeds, so runs are bit-reproducible end to end.

use crate::fedavg::evaluate_params;
use crate::model::MlpSpec;
use mdl_data::synthetic::gaussian_blobs;
use mdl_data::Dataset;
use mdl_nn::{fit_classifier, ParamVector, Sgd, TrainConfig};
use mdl_obs::Obs;
use mdl_sim::{keyed_hash, ClientTrainer, Population, PopulationReport, SimConfig, SimError};
use rand::rngs::StdRng;
use rand::SeedableRng;

// Domain separators for dataset-size, dataset-content and test-set draws.
const SIZE_DOMAIN: u64 = 0xDA7A_5123_0000_0000;
const DATA_DOMAIN: u64 = 0xDA7A_0000_0000_0000;
const TEST_DOMAIN: u64 = 0xDA7A_7E57_0000_0000;

/// A synthetic classification task over an unbounded client population.
///
/// Class centres are a deterministic function of the class index (see
/// [`gaussian_blobs`]), so every client's data shares global structure
/// and FedAvg converges; the noise around the centres is drawn from a
/// per-client seeded RNG, so no two clients hold the same examples.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationTask {
    /// Global model architecture (input dim must be 2, the blob space).
    pub spec: MlpSpec,
    /// Client learning rate.
    pub learning_rate: f32,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// GEMM threads inside one client's training (keep low: clients
    /// already train on parallel engine waves).
    pub kernel_threads: Option<usize>,
    /// Number of blob classes.
    pub classes: usize,
    /// Blob noise (σ around each class centre).
    pub noise: f32,
    /// Smallest local dataset.
    pub min_examples: u64,
    /// Largest local dataset.
    pub max_examples: u64,
    /// Seed behind every client's dataset (size and content).
    pub data_seed: u64,
}

impl PopulationTask {
    /// A small 4-class blob task a `[2, 16, 4]` MLP learns quickly —
    /// the default workload of the population experiments.
    pub fn blobs(data_seed: u64) -> Self {
        Self {
            spec: MlpSpec::new(vec![2, 16, 4], 17),
            learning_rate: 0.2,
            local_epochs: 1,
            batch_size: 16,
            kernel_threads: Some(1),
            classes: 4,
            noise: 0.5,
            min_examples: 20,
            max_examples: 60,
            data_seed,
        }
    }

    /// Materialises client `id`'s local dataset.
    pub fn client_data(&self, id: u64) -> Dataset {
        let n = self.num_examples(id) as usize;
        let mut rng = StdRng::seed_from_u64(keyed_hash(self.data_seed ^ DATA_DOMAIN, 0, id));
        gaussian_blobs(n, self.classes, self.noise, &mut rng)
    }

    /// A held-out test set drawn from the same class structure but a
    /// dedicated seed no client shares.
    pub fn test_set(&self, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(keyed_hash(self.data_seed ^ TEST_DOMAIN, 0, 0));
        gaussian_blobs(n, self.classes, self.noise, &mut rng)
    }

    /// The initial global parameter vector.
    pub fn initial_params(&self) -> Vec<f32> {
        self.spec.build().param_vector()
    }
}

impl ClientTrainer for PopulationTask {
    fn num_examples(&self, client: u64) -> u64 {
        let span = self.max_examples.saturating_sub(self.min_examples) + 1;
        self.min_examples + keyed_hash(self.data_seed ^ SIZE_DOMAIN, 0, client) % span
    }

    fn train(&self, client: u64, seed: u64, global: &[f32]) -> Vec<f32> {
        let data = self.client_data(client);
        let mut local = self.spec.build_with(global);
        let mut opt = Sgd::new(self.learning_rate);
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = self.batch_size.min(data.len().max(1));
        let _ = fit_classifier(
            &mut local,
            &mut opt,
            &data.x,
            &data.y,
            &TrainConfig {
                epochs: self.local_epochs,
                batch_size: batch,
                shuffle: true,
                grad_clip: None,
                kernel_threads: self.kernel_threads,
                obs: None,
            },
            &mut rng,
        );
        local.param_vector()
    }
}

/// Runs population-scale FedAvg end to end: engine rounds over
/// `population`, then evaluates the final global model on a 1000-example
/// held-out set. Returns the engine report plus the final test accuracy.
///
/// # Errors
///
/// Propagates the engine's [`SimError`]s (unreachable quorum, empty
/// population).
pub fn run_population_fedavg(
    cfg: &SimConfig,
    population: &mut Population,
    task: &PopulationTask,
    obs: Option<&Obs>,
) -> Result<(PopulationReport, f64), SimError> {
    let report = mdl_sim::run_population(cfg, population, task.initial_params(), task, obs)?;
    let test = task.test_set(1000);
    let accuracy = evaluate_params(&task.spec, &report.final_params, &test);
    Ok((report, accuracy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_sim::{CohortSpec, PopulationSpec};

    #[test]
    fn client_data_is_stable_and_sized_by_id() {
        let task = PopulationTask::blobs(7);
        let a = task.client_data(123);
        let b = task.client_data(123);
        assert_eq!(a.x.as_slice(), b.x.as_slice(), "same id, same data");
        assert_eq!(a.len() as u64, task.num_examples(123));
        assert!((20..=60).contains(&(a.len() as u64)));
        let other = task.client_data(124);
        assert_ne!(a.x.as_slice(), other.x.as_slice(), "different ids differ");
    }

    #[test]
    fn population_fedavg_learns_blobs() {
        let task = PopulationTask::blobs(42);
        let mut pop = Population::new(PopulationSpec::mobile_mix(2_000, 9));
        let cfg = SimConfig {
            rounds: 8,
            cohort: CohortSpec { fraction: 0.05, min_size: 16, max_size: 64 },
            quorum_fraction: 0.3,
            seed: 5,
            ..SimConfig::default()
        };
        let (report, acc) = run_population_fedavg(&cfg, &mut pop, &task, None).expect("quorum");
        assert_eq!(report.rounds.len(), 8);
        assert!(acc > 0.8, "population FedAvg should learn blobs: acc={acc}");
        assert!(report.transport.bytes_up > 0);
    }

    #[test]
    fn population_fedavg_is_bit_reproducible() {
        let run = || {
            let task = PopulationTask::blobs(42);
            let mut pop = Population::new(PopulationSpec::mobile_mix(1_000, 9));
            let cfg = SimConfig {
                rounds: 3,
                cohort: CohortSpec { fraction: 0.05, min_size: 8, max_size: 32 },
                quorum_fraction: 0.3,
                seed: 5,
                ..SimConfig::default()
            };
            run_population_fedavg(&cfg, &mut pop, &task, None).unwrap()
        };
        let (a, acc_a) = run();
        let (b, acc_b) = run();
        assert_eq!(a, b);
        assert_eq!(acc_a.to_bits(), acc_b.to_bits());
    }
}
