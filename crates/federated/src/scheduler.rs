//! Client eligibility scheduling (§II-B).
//!
//! Google's deployment only trains on a device that is simultaneously
//! *idle*, *plugged in* and on an *unmetered (Wi-Fi) connection*. The
//! simulator gives every client an independent probability of being in each
//! state per round (roughly "overnight on the charger") and only eligible
//! clients can be selected.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Instantaneous device state relevant to federated participation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceState {
    /// Screen off, no foreground interaction.
    pub idle: bool,
    /// Connected to power.
    pub charging: bool,
    /// On an unmetered (Wi-Fi) connection.
    pub unmetered: bool,
}

impl DeviceState {
    /// Whether the deployment policy allows training right now.
    pub fn eligible(&self) -> bool {
        self.idle && self.charging && self.unmetered
    }
}

/// Per-client Bernoulli availability model.
///
/// # Examples
///
/// ```
/// use mdl_federated::AvailabilityModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = AvailabilityModel::overnight(100);
/// let eligible = model.sample_eligible(&mut rng);
/// assert!(eligible.len() < 100, "not everyone is idle+charging+Wi-Fi");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Probability of being idle at a check-in.
    pub p_idle: f64,
    /// Probability of being plugged in.
    pub p_charging: f64,
    /// Probability of being on Wi-Fi.
    pub p_unmetered: f64,
    clients: usize,
}

impl AvailabilityModel {
    /// A model over `clients` devices with the given state probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(clients: usize, p_idle: f64, p_charging: f64, p_unmetered: f64) -> Self {
        for (name, p) in [("idle", p_idle), ("charging", p_charging), ("unmetered", p_unmetered)] {
            assert!((0.0..=1.0).contains(&p), "p_{name} out of [0, 1]: {p}");
        }
        Self { p_idle, p_charging, p_unmetered, clients }
    }

    /// Always-available model (the idealised simulation default).
    pub fn always_available(clients: usize) -> Self {
        Self::new(clients, 1.0, 1.0, 1.0)
    }

    /// A realistic overnight pattern: devices are eligible roughly a third
    /// of check-ins.
    pub fn overnight(clients: usize) -> Self {
        Self::new(clients, 0.75, 0.55, 0.85)
    }

    /// Number of clients covered.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Samples each device's state for one round.
    pub fn sample_states(&self, rng: &mut impl Rng) -> Vec<DeviceState> {
        (0..self.clients)
            .map(|_| DeviceState {
                idle: rng.gen::<f64>() < self.p_idle,
                charging: rng.gen::<f64>() < self.p_charging,
                unmetered: rng.gen::<f64>() < self.p_unmetered,
            })
            .collect()
    }

    /// Indices of clients eligible this round.
    pub fn sample_eligible(&self, rng: &mut impl Rng) -> Vec<usize> {
        self.sample_states(rng)
            .iter()
            .enumerate()
            .filter(|(_, s)| s.eligible())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eligibility_requires_all_three() {
        assert!(DeviceState { idle: true, charging: true, unmetered: true }.eligible());
        assert!(!DeviceState { idle: false, charging: true, unmetered: true }.eligible());
        assert!(!DeviceState { idle: true, charging: false, unmetered: true }.eligible());
        assert!(!DeviceState { idle: true, charging: true, unmetered: false }.eligible());
    }

    #[test]
    fn always_available_selects_everyone() {
        let mut rng = StdRng::seed_from_u64(180);
        let m = AvailabilityModel::always_available(20);
        assert_eq!(m.sample_eligible(&mut rng).len(), 20);
    }

    #[test]
    fn overnight_rate_matches_product() {
        let mut rng = StdRng::seed_from_u64(181);
        let m = AvailabilityModel::overnight(1000);
        let expect = 0.75 * 0.55 * 0.85;
        let mut total = 0usize;
        let trials = 30;
        for _ in 0..trials {
            total += m.sample_eligible(&mut rng).len();
        }
        let rate = total as f64 / (1000.0 * trials as f64);
        assert!((rate - expect).abs() < 0.05, "rate={rate} expect≈{expect}");
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn rejects_bad_probability() {
        let _ = AvailabilityModel::new(5, 1.5, 0.5, 0.5);
    }
}
