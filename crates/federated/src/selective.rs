//! Distributed selective SGD (Shokri & Shmatikov, §II-A / Fig. 1).
//!
//! Participants train independently on local data; after each local phase a
//! participant uploads the gradients of only a *selected fraction θ_u* of
//! parameters (largest magnitude) to the parameter server, and downloads a
//! fraction θ_d of the freshest global parameters before the next phase.
//! Nothing about the raw data ever leaves the device.
//!
//! Local phases run concurrently in fixed-size waves: a wave's
//! participants all download from the global as the previous wave left
//! it, and the server applies uploads in participant order between
//! waves. This keeps the asynchronous flavour (bounded staleness)
//! while parallelising the expensive local training, and a seeded run
//! stays deterministic because all randomness is pre-drawn in
//! participant order.

use crate::comm::CommLedger;
use crate::fedavg::RoundRecord;
use crate::model::MlpSpec;
use crate::update::SparseUpdate;
use mdl_data::Dataset;
use mdl_net::{Fabric, TransportMetrics};
use mdl_nn::{loss::softmax_cross_entropy, Layer, Mode, ParamVector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a selective-SGD simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveConfig {
    /// Communication rounds.
    pub rounds: usize,
    /// Fraction of parameters whose gradients are uploaded (θ_u).
    pub upload_fraction: f64,
    /// Fraction of global parameters downloaded each round (θ_d).
    pub download_fraction: f64,
    /// Local gradient steps per round.
    pub local_steps: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Learning rate (used both locally and at the server).
    pub learning_rate: f32,
    /// Evaluate every this many rounds.
    pub eval_every: usize,
}

impl Default for SelectiveConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            upload_fraction: 0.1,
            download_fraction: 1.0,
            local_steps: 5,
            batch_size: 16,
            learning_rate: 0.1,
            eval_every: 1,
        }
    }
}

/// Result of a selective-SGD run.
#[derive(Debug)]
pub struct SelectiveRun {
    /// Evaluated rounds.
    pub history: Vec<RoundRecord>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Communication totals (delivered traffic, derived from `transport`).
    pub ledger: CommLedger,
    /// Transport-layer counters from the fabric the run flowed over.
    pub transport: TransportMetrics,
}

impl SelectiveRun {
    /// Final test accuracy (0.0 when no round was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.history.last().map(|r| r.test_accuracy).unwrap_or(0.0)
    }
}

/// Participants whose local phases run concurrently between server
/// applications; bounds gradient staleness while still giving the wave a
/// full set of CPU cores. Fixed (not core-count-derived) so a seeded run
/// produces the same numbers on every machine.
const WAVE_SIZE: usize = 4;

/// Estimated MACs of one local phase (`2 · params · steps · batch`) below
/// which spawning threads costs more than it saves.
const PARALLEL_WORK_THRESHOLD: u64 = 2_000_000;

/// One participant's local phase: refresh the downloaded coordinates, run
/// the pre-drawn mini-batch SGD steps, and select the sparse upload.
fn local_phase(
    spec: &MlpSpec,
    config: &SelectiveConfig,
    global: &[f32],
    data: &Dataset,
    local: &mut Vec<f32>,
    coords: &[usize],
    batches: &[Vec<usize>],
) -> SparseUpdate {
    // download a θ_d fraction of the global parameters
    for &i in coords {
        local[i] = global[i];
    }

    // local SGD steps from the (partially refreshed) copy
    let mut model = spec.build_with(local);
    let before = local.clone();
    for batch in batches {
        let bx = data.x.select_rows(batch);
        let by: Vec<usize> = batch.iter().map(|&i| data.y[i]).collect();
        model.zero_grad();
        let logits = model.forward(&bx, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &by);
        let _ = model.backward(&grad);
        // manual SGD step (keeps model params equal to flattened view)
        model.visit_params(&mut |v, g| v.add_scaled(-config.learning_rate, g));
    }
    *local = model.param_vector();

    // select the θ_u largest-magnitude parameter *changes*
    let delta: Vec<f32> = local.iter().zip(before.iter()).map(|(a, b)| a - b).collect();
    SparseUpdate::top_fraction(&delta, config.upload_fraction, data.len())
}

/// Runs the distributed selective SGD protocol on an ideal network.
///
/// Equivalent to [`run_selective_sgd_over`] with [`Fabric::ideal`] — same
/// randomness, same byte accounting.
///
/// # Panics
///
/// Panics if `participants` is empty or fractions fall outside `(0, 1]`.
pub fn run_selective_sgd(
    spec: &MlpSpec,
    participants: &[Dataset],
    test: &Dataset,
    config: &SelectiveConfig,
    rng: &mut StdRng,
) -> SelectiveRun {
    let mut fabric = Fabric::ideal(participants.len());
    run_selective_sgd_over(spec, participants, test, config, &mut fabric, rng)
}

/// Runs distributed selective SGD with every download and sparse upload
/// flowing through a simulated transport [`Fabric`].
///
/// The protocol is asynchronous by design, so faults degrade rather than
/// fail it: a participant whose download was lost trains from its stale
/// local copy without the θ_d refresh, and a participant whose upload was
/// dropped simply contributes nothing to the server this round.
///
/// # Panics
///
/// Panics if `participants` is empty, fractions fall outside `(0, 1]`, or
/// the fabric covers a different number of participants.
pub fn run_selective_sgd_over(
    spec: &MlpSpec,
    participants: &[Dataset],
    test: &Dataset,
    config: &SelectiveConfig,
    fabric: &mut Fabric,
    rng: &mut StdRng,
) -> SelectiveRun {
    assert!(!participants.is_empty(), "need at least one participant");
    assert_eq!(fabric.clients(), participants.len(), "fabric must cover every participant");
    assert!(
        config.upload_fraction > 0.0 && config.upload_fraction <= 1.0,
        "upload fraction must be in (0, 1]"
    );
    assert!(
        config.download_fraction > 0.0 && config.download_fraction <= 1.0,
        "download fraction must be in (0, 1]"
    );

    let mut global_model = spec.build();
    let mut global = global_model.param_vector();
    let dim = global.len();

    // each participant keeps a persistent (possibly stale) local copy
    let mut locals: Vec<Vec<f32>> = vec![global.clone(); participants.len()];
    let mut history = Vec::new();

    let k_down = (((dim as f64) * config.download_fraction).ceil() as usize).clamp(1, dim);
    let down_bytes = 8 * k_down as u64 + 12;

    for round in 1..=config.rounds {
        fabric.begin_round();

        // Pre-draw every participant's randomness in participant order so
        // the run stays deterministic no matter how the threads interleave.
        let draws: Vec<(Vec<usize>, Vec<Vec<usize>>)> = participants
            .iter()
            .map(|data| {
                let mut coords: Vec<usize> = (0..dim).collect();
                if k_down < dim {
                    coords.shuffle(rng);
                    coords.truncate(k_down);
                }
                let batches: Vec<Vec<usize>> = (0..config.local_steps)
                    .map(|_| {
                        (0..config.batch_size.min(data.len()))
                            .map(|_| rng.gen_range(0..data.len()))
                            .collect()
                    })
                    .collect();
                (coords, batches)
            })
            .collect();

        // Local phases run concurrently in waves of WAVE_SIZE. Everyone in a
        // wave downloads from the global as left by the previous wave, and the
        // server applies each wave's uploads in participant order, so staleness
        // is bounded by the wave width and gradients keep arriving one wave at
        // a time instead of summing a whole round's worth from one snapshot
        // (which overshoots badly at high participant counts).
        //
        // Tiny models are trained inline instead: thread spawn/join costs more
        // than the local phase itself below the work threshold, and the two
        // paths produce bit-identical results (randomness is pre-drawn and
        // uploads are applied in participant order either way).
        let spawn_threads = 2 * dim as u64 * config.local_steps as u64 * config.batch_size as u64
            >= PARALLEL_WORK_THRESHOLD;

        // The θ_d download goes over the fabric before the waves start; a
        // participant whose download was lost (or who is partitioned or
        // dropped) keeps training from its stale copy without the refresh.
        let refreshed: Vec<bool> =
            (0..participants.len()).map(|p| fabric.send_down(p, down_bytes).is_ok()).collect();

        let mut draws = draws.into_iter();
        for (wave_idx, (wave, wave_locals)) in
            participants.chunks(WAVE_SIZE).zip(locals.chunks_mut(WAVE_SIZE)).enumerate()
        {
            let wave_start = wave_idx * WAVE_SIZE;
            let wave_draws: Vec<_> = draws.by_ref().take(wave.len()).collect();
            let members = wave.iter().enumerate().zip(wave_locals.iter_mut()).zip(wave_draws);
            let refreshed = &refreshed;
            let outcomes: Vec<SparseUpdate> = if spawn_threads {
                crossbeam::thread::scope(|s| {
                    let global = &global;
                    let handles: Vec<_> = members
                        .map(|(((off, data), local), (coords, batches))| {
                            s.spawn(move |_| {
                                let coords =
                                    if refreshed[wave_start + off] { &coords[..] } else { &[] };
                                local_phase(spec, config, global, data, local, coords, &batches)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("participant thread")).collect()
                })
                .expect("participant scope")
            } else {
                members
                    .map(|(((off, data), local), (coords, batches))| {
                        let coords = if refreshed[wave_start + off] { &coords[..] } else { &[] };
                        local_phase(spec, config, &global, data, local, coords, &batches)
                    })
                    .collect()
            };

            // The server applies the wave's uploads in participant order —
            // but only the uploads the fabric actually delivered.
            for (off, update) in outcomes.into_iter().enumerate() {
                if fabric.send_up(wave_start + off, update.wire_bytes()).is_ok() {
                    update.apply_to(&mut global, 1.0);
                }
            }
        }
        fabric.end_round();

        if round % config.eval_every == 0 || round == config.rounds {
            global_model.set_param_vector(&global);
            let acc = global_model.accuracy(&test.x, &test.y);
            history.push(RoundRecord {
                round,
                test_accuracy: acc,
                total_bytes: fabric.metrics().ledger().total_bytes(),
                participants: participants.len(),
            });
        }
    }

    let transport = fabric.metrics();
    SelectiveRun { history, final_params: global, ledger: transport.ledger(), transport }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::partition::{partition_dataset, Partition};
    use mdl_data::synthetic::gaussian_blobs;
    use rand::SeedableRng;

    fn setup(rng: &mut StdRng) -> (MlpSpec, Vec<Dataset>, Dataset) {
        let data = gaussian_blobs(400, 3, 0.5, rng);
        let (train, test) = data.split(0.8, rng);
        let parts = partition_dataset(&train, 5, Partition::Iid, rng);
        (MlpSpec::new(vec![2, 12, 3], 5), parts, test)
    }

    #[test]
    fn selective_sgd_learns_with_partial_uploads() {
        let mut rng = StdRng::seed_from_u64(200);
        let (spec, parts, test) = setup(&mut rng);
        let config = SelectiveConfig {
            rounds: 25,
            upload_fraction: 0.1,
            local_steps: 5,
            learning_rate: 0.1,
            ..Default::default()
        };
        let run = run_selective_sgd(&spec, &parts, &test, &config, &mut rng);
        assert!(run.final_accuracy() > 0.85, "accuracy={}", run.final_accuracy());
    }

    #[test]
    fn higher_upload_fraction_converges_at_least_as_well() {
        let mut rng = StdRng::seed_from_u64(201);
        let (spec, parts, test) = setup(&mut rng);
        let run_with = |theta: f64, rng: &mut StdRng| {
            run_selective_sgd(
                &spec,
                &parts,
                &test,
                &SelectiveConfig {
                    rounds: 12,
                    upload_fraction: theta,
                    local_steps: 4,
                    ..Default::default()
                },
                rng,
            )
            .final_accuracy()
        };
        let sparse = run_with(0.01, &mut rng);
        let full = run_with(1.0, &mut rng);
        assert!(full >= sparse - 0.05, "θ=1.0 ({full}) should roughly dominate θ=0.01 ({sparse})");
    }

    #[test]
    fn upload_bytes_scale_with_theta() {
        let mut rng = StdRng::seed_from_u64(202);
        let (spec, parts, test) = setup(&mut rng);
        let bytes_with = |theta: f64, rng: &mut StdRng| {
            run_selective_sgd(
                &spec,
                &parts,
                &test,
                &SelectiveConfig { rounds: 3, upload_fraction: theta, ..Default::default() },
                rng,
            )
            .ledger
            .bytes_up
        };
        let sparse = bytes_with(0.01, &mut rng);
        let full = bytes_with(1.0, &mut rng);
        assert!(full > sparse * 20, "full={full} sparse={sparse}");
    }

    #[test]
    fn threaded_path_is_deterministic() {
        // 64->512->3 is ~34k params: crosses PARALLEL_WORK_THRESHOLD, so the
        // local phases really run on spawned threads; two seeded runs must
        // still agree bit-for-bit.
        let mut rng = StdRng::seed_from_u64(204);
        let data = gaussian_blobs(240, 3, 0.5, &mut rng);
        let (train, test) = data.split(0.8, &mut rng);
        let parts = partition_dataset(&train, 6, Partition::Iid, &mut rng);
        let spec = MlpSpec::new(vec![64, 512, 3], 5);
        let wide = |d: &Dataset| {
            let mut x = mdl_tensor::Matrix::zeros(d.len(), 64);
            for r in 0..d.len() {
                x[(r, 0)] = d.x[(r, 0)];
                x[(r, 1)] = d.x[(r, 1)];
            }
            Dataset { x, y: d.y.clone(), classes: d.classes }
        };
        let parts: Vec<Dataset> = parts.iter().map(&wide).collect();
        let test = wide(&test);
        let config = SelectiveConfig { rounds: 3, local_steps: 2, ..Default::default() };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_selective_sgd(&spec, &parts, &test, &config, &mut rng)
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.final_params, b.final_params, "thread scheduling leaked into the result");
        assert_eq!(
            a.history.iter().map(|r| r.test_accuracy).collect::<Vec<_>>(),
            b.history.iter().map(|r| r.test_accuracy).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "upload fraction")]
    fn rejects_zero_upload_fraction() {
        let mut rng = StdRng::seed_from_u64(203);
        let (spec, parts, test) = setup(&mut rng);
        let _ = run_selective_sgd(
            &spec,
            &parts,
            &test,
            &SelectiveConfig { upload_fraction: 0.0, ..Default::default() },
            &mut rng,
        );
    }
}
