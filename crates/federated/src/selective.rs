//! Distributed selective SGD (Shokri & Shmatikov, §II-A / Fig. 1).
//!
//! Participants train independently on local data; after each local phase a
//! participant uploads the gradients of only a *selected fraction θ_u* of
//! parameters (largest magnitude) to the parameter server, and downloads a
//! fraction θ_d of the freshest global parameters before the next phase.
//! Nothing about the raw data ever leaves the device.

use crate::comm::CommLedger;
use crate::fedavg::RoundRecord;
use crate::model::MlpSpec;
use crate::update::SparseUpdate;
use mdl_data::Dataset;
use mdl_nn::{loss::softmax_cross_entropy, Layer, Mode, ParamVector};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a selective-SGD simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveConfig {
    /// Communication rounds.
    pub rounds: usize,
    /// Fraction of parameters whose gradients are uploaded (θ_u).
    pub upload_fraction: f64,
    /// Fraction of global parameters downloaded each round (θ_d).
    pub download_fraction: f64,
    /// Local gradient steps per round.
    pub local_steps: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Learning rate (used both locally and at the server).
    pub learning_rate: f32,
    /// Evaluate every this many rounds.
    pub eval_every: usize,
}

impl Default for SelectiveConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            upload_fraction: 0.1,
            download_fraction: 1.0,
            local_steps: 5,
            batch_size: 16,
            learning_rate: 0.1,
            eval_every: 1,
        }
    }
}

/// Result of a selective-SGD run.
#[derive(Debug)]
pub struct SelectiveRun {
    /// Evaluated rounds.
    pub history: Vec<RoundRecord>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Communication totals.
    pub ledger: CommLedger,
}

impl SelectiveRun {
    /// Final test accuracy (0.0 when no round was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.history.last().map(|r| r.test_accuracy).unwrap_or(0.0)
    }
}

/// Runs the distributed selective SGD protocol.
///
/// # Panics
///
/// Panics if `participants` is empty or fractions fall outside `(0, 1]`.
pub fn run_selective_sgd(
    spec: &MlpSpec,
    participants: &[Dataset],
    test: &Dataset,
    config: &SelectiveConfig,
    rng: &mut StdRng,
) -> SelectiveRun {
    assert!(!participants.is_empty(), "need at least one participant");
    assert!(
        config.upload_fraction > 0.0 && config.upload_fraction <= 1.0,
        "upload fraction must be in (0, 1]"
    );
    assert!(
        config.download_fraction > 0.0 && config.download_fraction <= 1.0,
        "download fraction must be in (0, 1]"
    );

    let mut global_model = spec.build();
    let mut global = global_model.param_vector();
    let dim = global.len();

    // each participant keeps a persistent (possibly stale) local copy
    let mut locals: Vec<Vec<f32>> = vec![global.clone(); participants.len()];
    let mut ledger = CommLedger::new();
    let mut history = Vec::new();

    for round in 1..=config.rounds {
        for (p, data) in participants.iter().enumerate() {
            // download a θ_d fraction of the freshest global parameters
            let k_down = (((dim as f64) * config.download_fraction).ceil() as usize).clamp(1, dim);
            let mut coords: Vec<usize> = (0..dim).collect();
            if k_down < dim {
                coords.shuffle(rng);
                coords.truncate(k_down);
            }
            for &i in &coords {
                locals[p][i] = global[i];
            }
            ledger.record_download(8 * k_down as u64 + 12);

            // local SGD steps from the (partially refreshed) local copy
            let mut model = spec.build_with(&locals[p]);
            let before = locals[p].clone();
            for _ in 0..config.local_steps {
                let batch: Vec<usize> =
                    (0..config.batch_size.min(data.len())).map(|_| rng.gen_range(0..data.len())).collect();
                let bx = data.x.select_rows(&batch);
                let by: Vec<usize> = batch.iter().map(|&i| data.y[i]).collect();
                model.zero_grad();
                let logits = model.forward(&bx, Mode::Train);
                let (_, grad) = softmax_cross_entropy(&logits, &by);
                let _ = model.backward(&grad);
                // manual SGD step (keeps model params equal to flattened view)
                model.visit_params(&mut |v, g| v.add_scaled(-config.learning_rate, g));
            }
            locals[p] = model.param_vector();

            // upload the θ_u largest-magnitude parameter *changes*
            let delta: Vec<f32> =
                locals[p].iter().zip(before.iter()).map(|(a, b)| a - b).collect();
            let update = SparseUpdate::top_fraction(&delta, config.upload_fraction, data.len());
            ledger.record_upload(update.wire_bytes());
            // the server adds gradients as they arrive (asynchronous flavour)
            update.apply_to(&mut global, 1.0);
        }
        ledger.finish_round();

        if round % config.eval_every == 0 || round == config.rounds {
            global_model.set_param_vector(&global);
            let acc = global_model.accuracy(&test.x, &test.y);
            history.push(RoundRecord {
                round,
                test_accuracy: acc,
                total_bytes: ledger.total_bytes(),
                participants: participants.len(),
            });
        }
    }

    SelectiveRun { history, final_params: global, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::partition::{partition_dataset, Partition};
    use mdl_data::synthetic::gaussian_blobs;
    use rand::SeedableRng;

    fn setup(rng: &mut StdRng) -> (MlpSpec, Vec<Dataset>, Dataset) {
        let data = gaussian_blobs(400, 3, 0.5, rng);
        let (train, test) = data.split(0.8, rng);
        let parts = partition_dataset(&train, 5, Partition::Iid, rng);
        (MlpSpec::new(vec![2, 12, 3], 5), parts, test)
    }

    #[test]
    fn selective_sgd_learns_with_partial_uploads() {
        let mut rng = StdRng::seed_from_u64(200);
        let (spec, parts, test) = setup(&mut rng);
        let config = SelectiveConfig {
            rounds: 25,
            upload_fraction: 0.1,
            local_steps: 5,
            learning_rate: 0.1,
            ..Default::default()
        };
        let run = run_selective_sgd(&spec, &parts, &test, &config, &mut rng);
        assert!(run.final_accuracy() > 0.85, "accuracy={}", run.final_accuracy());
    }

    #[test]
    fn higher_upload_fraction_converges_at_least_as_well() {
        let mut rng = StdRng::seed_from_u64(201);
        let (spec, parts, test) = setup(&mut rng);
        let run_with = |theta: f64, rng: &mut StdRng| {
            run_selective_sgd(
                &spec,
                &parts,
                &test,
                &SelectiveConfig {
                    rounds: 12,
                    upload_fraction: theta,
                    local_steps: 4,
                    ..Default::default()
                },
                rng,
            )
            .final_accuracy()
        };
        let sparse = run_with(0.01, &mut rng);
        let full = run_with(1.0, &mut rng);
        assert!(
            full >= sparse - 0.05,
            "θ=1.0 ({full}) should roughly dominate θ=0.01 ({sparse})"
        );
    }

    #[test]
    fn upload_bytes_scale_with_theta() {
        let mut rng = StdRng::seed_from_u64(202);
        let (spec, parts, test) = setup(&mut rng);
        let bytes_with = |theta: f64, rng: &mut StdRng| {
            run_selective_sgd(
                &spec,
                &parts,
                &test,
                &SelectiveConfig { rounds: 3, upload_fraction: theta, ..Default::default() },
                rng,
            )
            .ledger
            .bytes_up
        };
        let sparse = bytes_with(0.01, &mut rng);
        let full = bytes_with(1.0, &mut rng);
        assert!(full > sparse * 20, "full={full} sparse={sparse}");
    }

    #[test]
    #[should_panic(expected = "upload fraction")]
    fn rejects_zero_upload_fraction() {
        let mut rng = StdRng::seed_from_u64(203);
        let (spec, parts, test) = setup(&mut rng);
        let _ = run_selective_sgd(
            &spec,
            &parts,
            &test,
            &SelectiveConfig { upload_fraction: 0.0, ..Default::default() },
            &mut rng,
        );
    }
}
