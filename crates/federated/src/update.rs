//! Model-update transport: flat parameter vectors with wire-size accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A dense model update: full parameter (or delta) vector plus the size of
/// the local dataset that produced it (the FedAvg weighting term `n_k`).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseUpdate {
    /// Flat parameter or delta values.
    pub values: Vec<f32>,
    /// Number of local examples behind this update.
    pub num_examples: usize,
}

impl DenseUpdate {
    /// Wire size in bytes: 4 bytes per value plus an 8-byte header.
    pub fn wire_bytes(&self) -> u64 {
        8 + 4 * self.values.len() as u64
    }

    /// Serialises to a length-prefixed byte frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u32(self.values.len() as u32);
        buf.put_u32(self.num_examples as u32);
        for &v in &self.values {
            buf.put_f32(v);
        }
        buf.freeze()
    }

    /// Decodes a frame produced by [`DenseUpdate::encode`].
    ///
    /// Returns `None` on a malformed frame.
    pub fn decode(mut frame: Bytes) -> Option<Self> {
        if frame.len() < 8 {
            return None;
        }
        let len = frame.get_u32() as usize;
        let num_examples = frame.get_u32() as usize;
        if frame.len() != 4 * len {
            return None;
        }
        let values = (0..len).map(|_| frame.get_f32()).collect();
        Some(Self { values, num_examples })
    }
}

/// A sparse update: selected coordinates only (distributed selective SGD,
/// paper Fig. 1 / reference [16]).
///
/// # Examples
///
/// ```
/// use mdl_federated::SparseUpdate;
///
/// let gradients = [0.01, -4.0, 0.2, 3.0];
/// let update = SparseUpdate::top_fraction(&gradients, 0.5, 10);
/// assert_eq!(update.entries.len(), 2); // the two largest magnitudes
/// let mut global = vec![0.0; 4];
/// update.apply_to(&mut global, 1.0);
/// assert_eq!(global, vec![0.0, -4.0, 0.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseUpdate {
    /// Total parameter count of the model this indexes into.
    pub dim: usize,
    /// `(coordinate, value)` pairs, strictly increasing coordinates.
    pub entries: Vec<(u32, f32)>,
    /// Number of local examples behind this update.
    pub num_examples: usize,
}

impl SparseUpdate {
    /// Selects the `fraction` largest-magnitude coordinates of `delta`.
    ///
    /// At least one coordinate is always kept (if any is non-zero).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn top_fraction(delta: &[f32], fraction: f64, num_examples: usize) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let k = (((delta.len() as f64) * fraction).ceil() as usize).clamp(1, delta.len());
        let mut order: Vec<usize> = (0..delta.len()).collect();
        order.sort_by(|&a, &b| {
            delta[b].abs().partial_cmp(&delta[a].abs()).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut picked: Vec<usize> = order.into_iter().take(k).collect();
        picked.sort_unstable();
        Self {
            dim: delta.len(),
            entries: picked.into_iter().map(|i| (i as u32, delta[i])).collect(),
            num_examples,
        }
    }

    /// Wire size: 8 bytes per entry (index + value) plus a 12-byte header.
    pub fn wire_bytes(&self) -> u64 {
        12 + 8 * self.entries.len() as u64
    }

    /// Adds this update into a dense parameter vector, scaled by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dim`.
    pub fn apply_to(&self, params: &mut [f32], scale: f32) {
        assert_eq!(params.len(), self.dim, "dimension mismatch applying sparse update");
        for &(i, v) in &self.entries {
            params[i as usize] += scale * v;
        }
    }
}

/// An 8-bit linearly quantized update: 4× smaller on the wire than fp32,
/// the standard bandwidth mitigation for federated uplinks.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedUpdate {
    /// Minimum of the original values (codebook anchor).
    pub min: f32,
    /// Maximum of the original values.
    pub max: f32,
    /// One byte per parameter.
    pub codes: Vec<u8>,
    /// Number of local examples behind this update.
    pub num_examples: usize,
}

impl QuantizedUpdate {
    /// Quantizes a parameter vector to 8 bits per value.
    pub fn quantize(values: &[f32], num_examples: usize) -> Self {
        let min = values.iter().cloned().fold(f32::MAX, f32::min).min(0.0);
        let max = values.iter().cloned().fold(f32::MIN, f32::max).max(min + 1e-12);
        let scale = 255.0 / (max - min);
        let codes = values
            .iter()
            .map(|&v| (((v - min) * scale).round() as i32).clamp(0, 255) as u8)
            .collect();
        Self { min, max, codes, num_examples }
    }

    /// Reconstructs the (lossy) parameter vector.
    pub fn dequantize(&self) -> Vec<f32> {
        let step = (self.max - self.min) / 255.0;
        self.codes.iter().map(|&c| self.min + step * c as f32).collect()
    }

    /// Wire size: one byte per value plus a 16-byte header.
    pub fn wire_bytes(&self) -> u64 {
        16 + self.codes.len() as u64
    }

    /// Worst-case absolute quantization error (half a step).
    pub fn max_error(&self) -> f32 {
        (self.max - self.min) / 255.0 / 2.0
    }
}

/// Weighted average of dense updates: `Σ (n_k / n) · w_k` (§II-B).
///
/// Returns `None` when `updates` is empty or dimensions disagree.
pub fn weighted_average(updates: &[DenseUpdate]) -> Option<Vec<f32>> {
    let first = updates.first()?;
    let dim = first.values.len();
    if updates.iter().any(|u| u.values.len() != dim) {
        return None;
    }
    let total: f64 = updates.iter().map(|u| u.num_examples as f64).sum();
    if total == 0.0 {
        return None;
    }
    let mut out = vec![0.0f32; dim];
    for u in updates {
        let w = (u.num_examples as f64 / total) as f32;
        for (o, &v) in out.iter_mut().zip(u.values.iter()) {
            *o += w * v;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let u = DenseUpdate { values: vec![1.0, -2.5, 0.0, 3.25], num_examples: 17 };
        let frame = u.encode();
        assert_eq!(frame.len() as u64, u.wire_bytes());
        let back = DenseUpdate::decode(frame).expect("decode");
        assert_eq!(back, u);
    }

    #[test]
    fn dense_decode_rejects_truncated() {
        let u = DenseUpdate { values: vec![1.0, 2.0], num_examples: 1 };
        let mut frame = u.encode().to_vec();
        frame.pop();
        assert!(DenseUpdate::decode(Bytes::from(frame)).is_none());
        assert!(DenseUpdate::decode(Bytes::from_static(&[1, 2])).is_none());
    }

    #[test]
    fn top_fraction_picks_largest() {
        let delta = [0.1f32, -5.0, 0.01, 2.0, -0.3];
        let s = SparseUpdate::top_fraction(&delta, 0.4, 3);
        assert_eq!(s.entries.len(), 2);
        let coords: Vec<u32> = s.entries.iter().map(|e| e.0).collect();
        assert_eq!(coords, vec![1, 3]);
        assert_eq!(s.dim, 5);
    }

    #[test]
    fn top_fraction_full_keeps_everything() {
        let delta = [1.0f32, 2.0, 3.0];
        let s = SparseUpdate::top_fraction(&delta, 1.0, 1);
        assert_eq!(s.entries.len(), 3);
    }

    #[test]
    fn sparse_apply_adds_scaled() {
        let delta = [0.0f32, 4.0, 0.0, -2.0];
        let s = SparseUpdate::top_fraction(&delta, 0.5, 1);
        let mut params = vec![1.0f32; 4];
        s.apply_to(&mut params, 0.5);
        assert_eq!(params, vec![1.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn sparse_is_smaller_on_wire() {
        let delta = vec![1.0f32; 1000];
        let sparse = SparseUpdate::top_fraction(&delta, 0.01, 1);
        let dense = DenseUpdate { values: delta, num_examples: 1 };
        assert!(sparse.wire_bytes() * 10 < dense.wire_bytes());
    }

    #[test]
    fn quantized_update_round_trips_within_error_bound() {
        let values: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        let q = QuantizedUpdate::quantize(&values, 10);
        let back = q.dequantize();
        let bound = q.max_error() + 1e-6;
        for (a, b) in values.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
        assert!(q.wire_bytes() < 4 * values.len() as u64 / 3);
    }

    #[test]
    fn quantized_update_handles_constant_vector() {
        let q = QuantizedUpdate::quantize(&[2.5; 8], 1);
        let back = q.dequantize();
        for v in back {
            assert!((v - 2.5).abs() <= q.max_error() + 1e-6);
        }
    }

    #[test]
    fn weighted_average_weights_by_examples() {
        let a = DenseUpdate { values: vec![0.0, 0.0], num_examples: 30 };
        let b = DenseUpdate { values: vec![10.0, 20.0], num_examples: 10 };
        let avg = weighted_average(&[a, b]).expect("avg");
        assert!((avg[0] - 2.5).abs() < 1e-6);
        assert!((avg[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_average_edge_cases() {
        assert!(weighted_average(&[]).is_none());
        let a = DenseUpdate { values: vec![1.0], num_examples: 1 };
        let b = DenseUpdate { values: vec![1.0, 2.0], num_examples: 1 };
        assert!(weighted_average(&[a.clone(), b]).is_none());
        let z = DenseUpdate { values: vec![1.0], num_examples: 0 };
        assert!(weighted_average(&[z]).is_none());
        assert_eq!(weighted_average(&[a]).unwrap(), vec![1.0]);
    }
}
