//! A/B hot-swap verification: two registry versions served side by side,
//! compared through their observability snapshots.
//!
//! Each arm runs the same probe batch through the deterministic
//! [`mdl_nn::Layer::forward_eval`] path while recording per-class
//! prediction counters (`ab.class_<k>`), probe totals and correctness
//! into its *own* [`Obs`] session. The two [`ObsSnapshot`]s are then
//! diffed counter by counter — the golden-snapshot behavioural diff: a
//! healthy candidate produces a near-empty diff, while an injected
//! regression shows up as diverging class counters and a mismatch rate
//! above threshold, which flags the report.

use mdl_nn::Sequential;
use mdl_obs::{Obs, ObsSnapshot};
use mdl_tensor::Matrix;

/// Outcome of serving two versions side by side over one probe batch.
#[derive(Debug, Clone, PartialEq)]
pub struct AbReport {
    /// Probe rows evaluated per arm.
    pub probes: usize,
    /// Rows where the two arms' argmax predictions diverged.
    pub mismatches: usize,
    /// `mismatches / probes` (0 for an empty probe).
    pub mismatch_rate: f64,
    /// Probe accuracy of the base arm.
    pub base_accuracy: f64,
    /// Probe accuracy of the candidate arm.
    pub candidate_accuracy: f64,
    /// Counters whose values diverge between the arms' snapshots:
    /// `(name, base value, candidate value)`, name-ascending.
    pub diverging: Vec<(String, u64, u64)>,
    /// `true` when the mismatch rate breached the threshold — the
    /// candidate's behaviour drifted from the pinned base.
    pub flagged: bool,
}

/// Counters under `prefix` whose values differ between two snapshots,
/// name-ascending; a counter absent from one side is treated as 0. This
/// is the generic half of the A/B gate — it also works on full pipeline
/// snapshots when diffing whole serving sessions.
pub fn snapshot_diff(a: &ObsSnapshot, b: &ObsSnapshot, prefix: &str) -> Vec<(String, u64, u64)> {
    let left = a.counters_with_prefix(prefix);
    let right = b.counters_with_prefix(prefix);
    let mut names: Vec<&String> = left.iter().chain(&right).map(|(n, _)| n).collect();
    names.sort();
    names.dedup();
    let value = |set: &[(String, u64)], name: &str| {
        set.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
    };
    names
        .into_iter()
        .map(|n| (n.clone(), value(&left, n), value(&right, n)))
        .filter(|&(_, l, r)| l != r)
        .collect()
}

fn serve_arm(model: &Sequential, probe_x: &Matrix, probe_y: &[usize]) -> (Vec<usize>, ObsSnapshot) {
    let obs = Obs::sim();
    let r = obs.registry();
    let predictions = model.predict(probe_x);
    r.counter("ab.predictions").add(predictions.len() as u64);
    let correct = predictions.iter().zip(probe_y).filter(|(p, y)| p == y).count();
    r.counter("ab.correct").add(correct as u64);
    for &class in &predictions {
        r.counter(&format!("ab.class_{class}")).inc();
    }
    (predictions, obs.snapshot())
}

/// Serves `base` and `candidate` side by side over the probe batch and
/// diffs their behaviour. `mismatch_threshold` is the fraction of
/// diverging predictions above which the report is flagged.
pub fn ab_compare(
    base: &Sequential,
    candidate: &Sequential,
    probe_x: &Matrix,
    probe_y: &[usize],
    mismatch_threshold: f64,
) -> AbReport {
    assert_eq!(probe_x.rows(), probe_y.len(), "one label per probe row");
    let (base_pred, base_snap) = serve_arm(base, probe_x, probe_y);
    let (cand_pred, cand_snap) = serve_arm(candidate, probe_x, probe_y);
    let probes = base_pred.len();
    let mismatches = base_pred.iter().zip(&cand_pred).filter(|(a, b)| a != b).count();
    let mismatch_rate = if probes == 0 { 0.0 } else { mismatches as f64 / probes as f64 };
    let accuracy = |snap: &ObsSnapshot| {
        let correct = snap.counter("ab.correct").unwrap_or(0);
        if probes == 0 {
            0.0
        } else {
            correct as f64 / probes as f64
        }
    };
    AbReport {
        probes,
        mismatches,
        mismatch_rate,
        base_accuracy: accuracy(&base_snap),
        candidate_accuracy: accuracy(&cand_snap),
        diverging: snapshot_diff(&base_snap, &cand_snap, "ab."),
        flagged: mismatch_rate > mismatch_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{Activation, Dense, ParamVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(4, 8, Activation::Relu, &mut rng));
        n.push(Dense::new(8, 3, Activation::Identity, &mut rng));
        n
    }

    fn probe() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(30, 4, |r, c| ((r * 7 + c * 3) % 11) as f32 / 11.0 - 0.5);
        let y: Vec<usize> = (0..30).map(|r| r % 3).collect();
        (x, y)
    }

    #[test]
    fn identical_arms_produce_an_empty_diff() {
        let model = net(1);
        let (x, y) = probe();
        let report = ab_compare(&model, &model, &x, &y, 0.02);
        assert_eq!(report.mismatches, 0);
        assert!(report.diverging.is_empty(), "{:?}", report.diverging);
        assert!(!report.flagged);
        assert_eq!(report.base_accuracy, report.candidate_accuracy);
    }

    #[test]
    fn injected_regression_is_flagged_with_a_diverging_diff() {
        let base = net(1);
        let mut broken = net(1);
        // the regression: zero the classifier head — every logit collapses
        let n = broken.num_params();
        broken.set_param_vector(&vec![0.0; n]);
        let (x, y) = probe();
        let report = ab_compare(&base, &broken, &x, &y, 0.02);
        assert!(report.flagged, "rate {}", report.mismatch_rate);
        assert!(!report.diverging.is_empty(), "class counters must diverge");
        assert!(report.candidate_accuracy <= report.base_accuracy);
    }

    #[test]
    fn diff_treats_missing_counters_as_zero() {
        let a = Obs::sim();
        a.registry().counter("ab.class_0").add(5);
        a.registry().counter("ab.same").add(2);
        let b = Obs::sim();
        b.registry().counter("ab.class_1").add(3);
        b.registry().counter("ab.same").add(2);
        let d = snapshot_diff(&a.snapshot(), &b.snapshot(), "ab.");
        assert_eq!(
            d,
            vec![("ab.class_0".into(), 5, 0), ("ab.class_1".into(), 0, 3)],
            "equal counters drop out, absences read as zero"
        );
    }
}
