//! # mdl-fleet
//!
//! Fleet model lifecycle: the paper's §III deployment story — ship a
//! better model to every phone without shipping a new app — composed
//! from the existing subsystems and run deterministically end to end:
//!
//! - **delta checkpoints** ([`mdl_compress::delta`]): the new version is
//!   encoded against the pinned base as a sparse, codebooked diff with a
//!   byte-exact round-trip;
//! - **resumable distribution** ([`transfer`]): the delta rides
//!   [`mdl_net::Fabric`] links in chunks, resuming from per-device
//!   offsets across partitions and stragglers under a per-device retry
//!   budget, with fleet-wide progress in `fleet.*` obs counters;
//! - **staged rollout** ([`rollout`]): keyed-hash cohorts (via
//!   [`mdl_sim::sample_cohort`]) advance canary → pilot → fleet only
//!   while obs-derived health gates pass, and any failure rolls serving
//!   back to the pinned [`mdl_serve::ModelRegistry`] version;
//! - **A/B verification** ([`ab`]): both registry versions serve the same
//!   probe side by side and their [`mdl_obs::ObsSnapshot`]s are diffed —
//!   an injected regression must flag.
//!
//! Everything is seeded: two runs (at any kernel thread count) produce
//! bit-identical reports.
//!
//! # Examples
//!
//! ```
//! use mdl_fleet::{run_rollout, RolloutConfig};
//! use mdl_nn::{Activation, Dense, ParamVector, Sequential};
//! use mdl_tensor::Matrix;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut base = Sequential::new();
//! base.push(Dense::new(4, 3, Activation::Identity, &mut rng));
//! let mut candidate = Sequential::new();
//! candidate.push(Dense::new(4, 3, Activation::Identity, &mut rng));
//! // nudge the candidate off the base so the delta is non-empty
//! let mut p = base.param_vector();
//! p[0] += 0.25;
//! candidate.set_param_vector(&p);
//!
//! let probe_x = Matrix::from_fn(8, 4, |r, c| (r + c) as f32 * 0.1);
//! let probe_y: Vec<usize> = (0..8).map(|r| r % 3).collect();
//! let report = run_rollout(
//!     &mut base, &mut candidate, &probe_x, &probe_y,
//!     &RolloutConfig::staged(32, 7), None,
//! );
//! assert!(report.completed, "a near-identical candidate passes every gate");
//! assert!(report.delta_bytes < report.full_bytes);
//! ```

#![warn(missing_docs)]

pub mod ab;
pub mod rollout;
pub mod transfer;

pub use ab::{ab_compare, snapshot_diff, AbReport};
pub use rollout::{
    canary_stages, run_rollout, GatePolicy, GateReport, RolloutConfig, RolloutReport, StagePlan,
    StageReport,
};
pub use transfer::{distribute, payload_hash, ChunkConfig, DeviceOutcome, DistributionReport};
