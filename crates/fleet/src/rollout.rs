//! Staged rollout with health gates and deterministic rollback.
//!
//! A candidate model version advances through cohort stages — canary →
//! pilot → full fleet — where each stage's cohort is drawn by
//! [`mdl_sim::sample_cohort`]'s keyed hash (deterministic, duplicate-free,
//! independent of fleet ordering), receives the delta checkpoint over the
//! faulty fabric via [`crate::transfer::distribute`], and must pass an
//! obs-derived health gate before the next stage opens:
//!
//! - **error rate** — fraction of the cohort that exhausted its retry
//!   budget;
//! - **transfer p99** — tail of per-device simulated transfer time;
//! - **accuracy probe** — the candidate's accuracy on a held-out batch,
//!   absolute and relative to the pinned base;
//! - **A/B behavioural diff** — [`crate::ab::ab_compare`] between the
//!   pinned and candidate registry versions.
//!
//! Any gate failure triggers [`mdl_serve::ModelRegistry::rollback_to_pin`]:
//! serving resolves back to the pinned base version, exactly one revert is
//! recorded, and the remaining stages never run. The whole flow is a pure
//! function of the seeds — two executions produce bit-identical
//! [`RolloutReport`]s.

use crate::ab::{ab_compare, AbReport};
use crate::transfer::{distribute, ChunkConfig};
use mdl_compress::delta::DeltaCheckpoint;
use mdl_net::{Fabric, FabricConfig};
use mdl_nn::saved::{load_model, save_model};
use mdl_nn::{ParamVector, Sequential};
use mdl_obs::Obs;
use mdl_serve::ModelRegistry;
use mdl_sim::{sample_cohort, CohortSpec};
use mdl_tensor::Matrix;

/// One rollout stage: a named fraction of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Stage label (shows up in reports).
    pub name: String,
    /// Fraction of the fleet sampled into this stage's cohort.
    pub fraction: f64,
}

/// The canonical canary → pilot → fleet ladder (1% → 10% → 100%).
pub fn canary_stages() -> Vec<StagePlan> {
    vec![
        StagePlan { name: "canary".into(), fraction: 0.01 },
        StagePlan { name: "pilot".into(), fraction: 0.10 },
        StagePlan { name: "fleet".into(), fraction: 1.00 },
    ]
}

/// Health-gate thresholds a stage must satisfy to advance.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePolicy {
    /// Max fraction of the cohort allowed to exhaust its retry budget.
    pub max_error_rate: f64,
    /// Max 99th-percentile per-device transfer time, simulated seconds.
    pub max_transfer_p99_s: f64,
    /// Absolute accuracy floor for the candidate on the probe batch.
    pub min_accuracy: f64,
    /// Max accuracy the candidate may lose versus the pinned base.
    pub max_accuracy_drop: f64,
    /// Max fraction of probe rows whose predictions may diverge between
    /// the A/B arms.
    pub max_ab_mismatch: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        Self {
            max_error_rate: 0.05,
            max_transfer_p99_s: f64::INFINITY,
            min_accuracy: 0.0,
            max_accuracy_drop: 0.05,
            max_ab_mismatch: 0.10,
        }
    }
}

/// Everything that shapes one rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutConfig {
    /// Fleet size (devices are ids `0..fleet`).
    pub fleet: u64,
    /// Stage ladder, in order.
    pub stages: Vec<StagePlan>,
    /// Gate thresholds applied after every stage.
    pub gate: GatePolicy,
    /// Chunked-transfer shape.
    pub chunk: ChunkConfig,
    /// Network model each stage's cohort rides.
    pub fabric: FabricConfig,
    /// Master seed: cohort sampling and per-stage fabrics derive from it.
    pub seed: u64,
}

impl RolloutConfig {
    /// A staged rollout over an ideal network — override `fabric` to
    /// rehearse under faults.
    pub fn staged(fleet: u64, seed: u64) -> Self {
        Self {
            fleet,
            stages: canary_stages(),
            gate: GatePolicy::default(),
            chunk: ChunkConfig::default(),
            fabric: FabricConfig::ideal(),
            seed,
        }
    }
}

/// The gate verdict for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Fraction of the cohort that exhausted its retry budget.
    pub error_rate: f64,
    /// 99th-percentile per-device transfer time, simulated seconds.
    pub transfer_p99_s: f64,
    /// Candidate accuracy on the probe batch.
    pub accuracy: f64,
    /// Pinned-base accuracy on the probe batch.
    pub base_accuracy: f64,
    /// A/B prediction mismatch rate.
    pub ab_mismatch: f64,
    /// Human-readable reasons the gate failed (empty when it passed).
    pub failures: Vec<String>,
    /// All thresholds satisfied.
    pub passed: bool,
}

/// What happened in one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage label from the plan.
    pub name: String,
    /// Fleet fraction the plan asked for.
    pub fraction: f64,
    /// Devices actually sampled.
    pub cohort: usize,
    /// Devices that completed the transfer.
    pub completed: usize,
    /// Devices that exhausted their retry budget.
    pub exhausted: usize,
    /// Distribution rounds the stage ran.
    pub rounds: usize,
    /// Distinct payload bytes delivered to this cohort.
    pub delivered_bytes: u64,
    /// Bytes burned on lost or timed-out attempts.
    pub wasted_bytes: u64,
    /// The gate verdict.
    pub gate: GateReport,
}

/// End-to-end rollout outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutReport {
    /// Registry version of the pinned base.
    pub base_version: u64,
    /// Registry version the candidate was swapped in as.
    pub candidate_version: u64,
    /// Version serving resolves to after the rollout.
    pub serving_version: u64,
    /// Every stage passed; the candidate kept serving.
    pub completed: bool,
    /// A gate failed; serving was rolled back to the pin.
    pub rolled_back: bool,
    /// Hot swaps performed (always 1: the candidate).
    pub swaps: u64,
    /// Rollbacks performed (0 or 1).
    pub reverts: u64,
    /// Serialised delta-checkpoint size — shipped per device.
    pub delta_bytes: u64,
    /// Full-checkpoint size the delta replaced.
    pub full_bytes: u64,
    /// Layout the delta encoder picked (`sparse-coded`, …).
    pub delta_mode: String,
    /// A/B comparison between the pinned and candidate versions.
    pub ab: AbReport,
    /// Per-stage reports, in execution order (stages after a rollback
    /// never run and are absent).
    pub stages: Vec<StageReport>,
}

impl RolloutReport {
    /// How many times smaller the delta is than a full checkpoint.
    pub fn bytes_ratio(&self) -> f64 {
        self.full_bytes as f64 / self.delta_bytes.max(1) as f64
    }
}

fn evaluate_gate(
    policy: &GatePolicy,
    error_rate: f64,
    transfer_p99_s: f64,
    ab: &AbReport,
) -> GateReport {
    let mut failures = Vec::new();
    if error_rate > policy.max_error_rate {
        failures.push(format!("error rate {error_rate:.4} exceeds {:.4}", policy.max_error_rate));
    }
    if transfer_p99_s > policy.max_transfer_p99_s {
        failures.push(format!(
            "transfer p99 {transfer_p99_s:.2}s exceeds {:.2}s",
            policy.max_transfer_p99_s
        ));
    }
    if ab.candidate_accuracy < policy.min_accuracy {
        failures.push(format!(
            "accuracy {:.4} below floor {:.4}",
            ab.candidate_accuracy, policy.min_accuracy
        ));
    }
    if ab.base_accuracy - ab.candidate_accuracy > policy.max_accuracy_drop {
        failures.push(format!(
            "accuracy dropped {:.4} versus base (max {:.4})",
            ab.base_accuracy - ab.candidate_accuracy,
            policy.max_accuracy_drop
        ));
    }
    if ab.flagged || ab.mismatch_rate > policy.max_ab_mismatch {
        failures.push(format!(
            "A/B mismatch rate {:.4} exceeds {:.4}",
            ab.mismatch_rate, policy.max_ab_mismatch
        ));
    }
    GateReport {
        error_rate,
        transfer_p99_s,
        accuracy: ab.candidate_accuracy,
        base_accuracy: ab.base_accuracy,
        ab_mismatch: ab.mismatch_rate,
        passed: failures.is_empty(),
        failures,
    }
}

/// Runs a staged rollout of `candidate` against pinned `base`.
///
/// Builds the delta checkpoint, pins the base in a fresh
/// [`ModelRegistry`], hot-swaps the candidate in, then walks the stage
/// ladder: sample cohort → distribute the delta → evaluate the gate.
/// The first failing gate rolls serving back to the pinned base and
/// stops. Needs saveable architectures (see [`mdl_nn::saved`]) since the
/// registry versions are built from serialised artifacts.
///
/// # Panics
///
/// Panics when a model contains non-saveable layers, the architectures
/// disagree, or the encoded delta fails to reproduce the candidate
/// bit-for-bit (an encoder invariant).
pub fn run_rollout(
    base: &mut Sequential,
    candidate: &mut Sequential,
    probe_x: &Matrix,
    probe_y: &[usize],
    cfg: &RolloutConfig,
    obs: Option<&Obs>,
) -> RolloutReport {
    assert!(cfg.fleet > 0, "rollout needs at least one device");
    assert!(!cfg.stages.is_empty(), "rollout needs at least one stage");
    let span = obs.map(|o| o.root_span("fleet.rollout"));

    // --- delta checkpoint: base → candidate ---
    let base_params = base.param_vector();
    let cand_params = candidate.param_vector();
    let base_bytes = save_model(base).expect("rollout base must be a saveable architecture");
    let cand_bytes =
        save_model(candidate).expect("rollout candidate must be a saveable architecture");
    let registry = ModelRegistry::new(load_model(&base_bytes).expect("own artifact decodes"));
    let base_version = registry.pin_current();
    let pinned = registry.current();
    let candidate_version = registry.swap(load_model(&cand_bytes).expect("own artifact decodes"));
    let serving = registry.current();

    let delta =
        DeltaCheckpoint::encode(&base_params, &cand_params, base_version, candidate_version);
    let payload = delta.to_bytes();
    assert_eq!(
        delta.apply(&base_params).expect("delta applies to its own base"),
        cand_params,
        "delta must reproduce the candidate bit-for-bit"
    );

    // the A/B verdict is a pure function of the two versions and the
    // probe, so evaluate once and reuse it in every stage's gate
    // both versions come from load_model artifacts, so they are f32
    let ab = ab_compare(
        pinned.model.as_f32().expect("rollout artifacts are f32"),
        serving.model.as_f32().expect("rollout artifacts are f32"),
        probe_x,
        probe_y,
        cfg.gate.max_ab_mismatch,
    );

    let device_ids: Vec<u64> = (0..cfg.fleet).collect();
    let mut stages = Vec::new();
    let mut rolled_back = false;
    for (i, plan) in cfg.stages.iter().enumerate() {
        let stage_span = span.as_ref().map(|s| s.child("fleet.stage"));
        let cohort = sample_cohort(
            &device_ids,
            &CohortSpec { fraction: plan.fraction, min_size: 1, max_size: cfg.fleet as usize },
            cfg.seed,
            i + 1,
        );
        let mut fabric = Fabric::new(
            cohort.len(),
            cfg.fabric.clone(),
            cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let report = distribute(&mut fabric, &payload, &cfg.chunk, obs);
        let gate =
            evaluate_gate(&cfg.gate, report.error_rate(), report.transfer_percentile_s(0.99), &ab);
        let passed = gate.passed;
        stages.push(StageReport {
            name: plan.name.clone(),
            fraction: plan.fraction,
            cohort: cohort.len(),
            completed: report.completed,
            exhausted: report.exhausted,
            rounds: report.rounds,
            delivered_bytes: report.delivered_distinct_bytes(),
            wasted_bytes: report.transport.wasted_bytes,
            gate,
        });
        if let Some(s) = stage_span {
            s.exit();
        }
        if passed {
            if let Some(o) = obs {
                o.registry().counter("fleet.stages_passed").inc();
            }
        } else {
            registry.rollback_to_pin();
            rolled_back = true;
            if let Some(o) = obs {
                o.registry().counter("fleet.rollbacks").inc();
            }
            break;
        }
    }
    if let Some(s) = span {
        s.exit();
    }

    RolloutReport {
        base_version,
        candidate_version,
        serving_version: registry.version(),
        completed: !rolled_back,
        rolled_back,
        swaps: registry.swap_count(),
        reverts: registry.revert_count(),
        delta_bytes: payload.len() as u64,
        full_bytes: delta.full_bytes(),
        delta_mode: delta.mode_name().into(),
        ab,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_compress::delta::{snap_to_codebook, uniform_codebook};
    use mdl_nn::{Activation, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(6, 12, Activation::Relu, &mut rng));
        n.push(Dense::new(12, 3, Activation::Identity, &mut rng));
        n
    }

    fn probe() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(24, 6, |r, c| ((r * 5 + c) % 13) as f32 / 13.0 - 0.5);
        let y: Vec<usize> = (0..24).map(|r| r % 3).collect();
        (x, y)
    }

    /// Base + a snapped fine-tune sharing its quantization grid.
    fn versions() -> (Sequential, Sequential) {
        let mut base = net(3);
        let params = base.param_vector();
        let grid = uniform_codebook(&params, 64);
        let v1 = snap_to_codebook(&params, &grid);
        base.set_param_vector(&v1);
        let nudged: Vec<f32> =
            v1.iter().enumerate().map(|(i, &w)| if i % 6 == 0 { w + 0.08 } else { w }).collect();
        let v2 = snap_to_codebook(&nudged, &grid);
        let mut cand = net(3);
        cand.set_param_vector(&v2);
        (base, cand)
    }

    #[test]
    fn healthy_candidate_advances_through_every_stage() {
        let (mut base, mut cand) = versions();
        let (x, y) = probe();
        let cfg = RolloutConfig::staged(64, 77);
        let report = run_rollout(&mut base, &mut cand, &x, &y, &cfg, None);
        assert!(report.completed && !report.rolled_back);
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.serving_version, report.candidate_version);
        assert_eq!((report.swaps, report.reverts), (1, 0));
        assert!(report.stages.iter().all(|s| s.gate.passed));
        // canary ≤ pilot ≤ fleet cohort sizes
        assert!(report.stages[0].cohort <= report.stages[1].cohort);
        assert!(report.stages[1].cohort <= report.stages[2].cohort);
        assert!(report.delta_bytes < report.full_bytes);
    }

    #[test]
    fn regression_fails_the_canary_gate_and_rolls_back() {
        let (mut base, _) = versions();
        let mut broken = net(3);
        let n = broken.num_params();
        broken.set_param_vector(&vec![0.0; n]);
        let (x, y) = probe();
        let cfg = RolloutConfig::staged(64, 77);
        let obs = Obs::sim();
        let report = run_rollout(&mut base, &mut broken, &x, &y, &cfg, Some(&obs));
        assert!(report.rolled_back && !report.completed);
        assert_eq!(report.stages.len(), 1, "pilot and fleet stages never ran");
        assert!(!report.stages[0].gate.passed);
        assert_eq!(report.serving_version, report.base_version);
        assert_eq!(report.reverts, 1, "exactly one revert");
        assert!(report.ab.flagged);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("fleet.rollbacks"), Some(1));
        assert_eq!(snap.counter("fleet.stages_passed"), None);
    }

    #[test]
    fn rollout_is_bit_reproducible() {
        let run = || {
            let (mut base, mut cand) = versions();
            let (x, y) = probe();
            let mut cfg = RolloutConfig::staged(128, 99);
            cfg.fabric = FabricConfig::faulty(mdl_net::LinkConfig::ideal());
            cfg.chunk.retry_budget = 32;
            run_rollout(&mut base, &mut cand, &x, &y, &cfg, None)
        };
        assert_eq!(run(), run());
    }
}
