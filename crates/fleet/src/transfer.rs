//! Resumable chunked distribution over the faulty fabric.
//!
//! A checkpoint (usually a serialised [`mdl_compress::delta`] frame) is
//! pushed to every device on a [`Fabric`] in fixed-size chunks. A failed
//! send — lost packets past the retry policy, a partition window, a
//! dropped peer, a deadline miss — abandons the device *for that round
//! only*: the next round resumes from the device's last acknowledged
//! offset instead of restarting, so a straggler behind a three-round
//! partition pays three failed sends, not three full payloads. Each
//! device has a total failed-send budget; exhausting it marks the device
//! failed for this distribution.
//!
//! Byte accounting is exact: every delivered chunk lands in
//! `net.bytes_down` exactly once (resumed rounds ship only the missing
//! suffix), so `net.delivered_bytes` never double-counts — a property the
//! fleet proptests pin down. Per-device integrity is checked with a
//! rolling FNV-1a over the delivered chunk stream, which equals the hash
//! of the whole payload iff the device reassembled it byte-identically
//! (chunks arrive in offset order by construction).

use mdl_net::{Fabric, TransportMetrics};
use mdl_obs::{Buckets, Obs};

/// Shape of one distribution: chunking, rounds, and retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkConfig {
    /// Payload bytes per chunk (the resume granularity).
    pub chunk_bytes: u64,
    /// Distribution rounds before giving up on stragglers.
    pub max_rounds: usize,
    /// Failed sends a device may accumulate across all rounds before it
    /// is marked exhausted.
    pub retry_budget: u32,
    /// Size of the completion acknowledgement each device uploads.
    pub ack_bytes: u64,
    /// Keep each device's reassembled payload (tests only — at fleet
    /// scale the rolling hash is the integrity check).
    pub collect_payloads: bool,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: 4096,
            max_rounds: 64,
            retry_budget: 16,
            ack_bytes: 64,
            collect_payloads: false,
        }
    }
}

/// FNV-1a, the same construction [`mdl_compress::delta::param_hash`]
/// uses, here over raw payload bytes.
pub fn payload_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// How one device fared.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceOutcome {
    /// Cohort-local device index (the fabric link it rode).
    pub device: usize,
    /// Distinct payload bytes delivered (== final resume offset).
    pub delivered_bytes: u64,
    /// Chunks delivered.
    pub chunks: u32,
    /// Failed sends charged against the retry budget.
    pub failed_sends: u32,
    /// Rounds that resumed a partially delivered payload.
    pub resumes: u32,
    /// Round (1-based) in which the completion ack landed.
    pub completed_round: Option<usize>,
    /// The retry budget ran out before completion.
    pub exhausted: bool,
    /// Rolling FNV-1a over the delivered chunk stream.
    pub payload_hash: u64,
    /// Simulated seconds of successful transfer time (chunks + ack).
    pub transfer_s: f64,
}

impl DeviceOutcome {
    /// `true` once the full payload and its ack went through.
    pub fn completed(&self) -> bool {
        self.completed_round.is_some()
    }
}

/// Fleet-wide result of one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionReport {
    /// Bytes in the payload every device needed.
    pub payload_bytes: u64,
    /// FNV-1a of the payload — what every completed device must match.
    pub payload_hash: u64,
    /// Rounds the distribution ran.
    pub rounds: usize,
    /// Devices that completed (payload + ack).
    pub completed: usize,
    /// Devices that ran out of retry budget.
    pub exhausted: usize,
    /// Per-device outcomes, in device order.
    pub devices: Vec<DeviceOutcome>,
    /// Fabric totals over the whole distribution.
    pub transport: TransportMetrics,
    /// Reassembled payloads when [`ChunkConfig::collect_payloads`] was
    /// set (`None` per device until its first chunk lands).
    pub payloads: Option<Vec<Vec<u8>>>,
}

impl DistributionReport {
    /// Fraction of the cohort that exhausted its budget.
    pub fn error_rate(&self) -> f64 {
        if self.devices.is_empty() {
            0.0
        } else {
            self.exhausted as f64 / self.devices.len() as f64
        }
    }

    /// Distinct payload bytes delivered across the cohort — must equal
    /// the fabric's `bytes_down` since distribution is the only
    /// downstream traffic.
    pub fn delivered_distinct_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.delivered_bytes).sum()
    }

    /// `true` when every completed device reassembled the exact payload.
    pub fn all_bit_identical(&self) -> bool {
        self.devices.iter().filter(|d| d.completed()).all(|d| d.payload_hash == self.payload_hash)
    }

    /// p-th percentile (0..=1) of completed devices' transfer time, in
    /// simulated seconds. Deterministic: total-order sort, index rounding
    /// up. `0.0` when nothing completed.
    pub fn transfer_percentile_s(&self, p: f64) -> f64 {
        let mut times: Vec<f64> =
            self.devices.iter().filter(|d| d.completed()).map(|d| d.transfer_s).collect();
        if times.is_empty() {
            return 0.0;
        }
        times.sort_by(f64::total_cmp);
        let rank = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[rank - 1]
    }
}

/// Pushes `payload` to every device on `fabric`, resuming across rounds.
///
/// When `obs` is given, fleet-wide progress lands in `fleet.*` counters
/// (`fleet.chunks_delivered`, `fleet.resumes`, `fleet.delivered_bytes`,
/// `fleet.devices_completed`, …), per-device completion times in the
/// `fleet.device_transfer_us` histogram, and the whole distribution runs
/// under a `fleet.distribute` span.
pub fn distribute(
    fabric: &mut Fabric,
    payload: &[u8],
    cfg: &ChunkConfig,
    obs: Option<&Obs>,
) -> DistributionReport {
    assert!(cfg.chunk_bytes > 0, "chunk size must be positive");
    assert!(cfg.max_rounds > 0, "need at least one round");
    let n = fabric.clients();
    let len = payload.len() as u64;
    let span = obs.map(|o| o.root_span("fleet.distribute"));

    struct DeviceState {
        offset: u64,
        hash: Fnv,
        out: DeviceOutcome,
        buffer: Option<Vec<u8>>,
    }
    let mut devices: Vec<DeviceState> = (0..n)
        .map(|device| DeviceState {
            offset: 0,
            hash: Fnv::new(),
            out: DeviceOutcome {
                device,
                delivered_bytes: 0,
                chunks: 0,
                failed_sends: 0,
                resumes: 0,
                completed_round: None,
                exhausted: false,
                payload_hash: 0,
                transfer_s: 0.0,
            },
            buffer: cfg.collect_payloads.then(Vec::new),
        })
        .collect();

    let mut rounds = 0usize;
    while rounds < cfg.max_rounds
        && devices.iter().any(|d| d.out.completed_round.is_none() && !d.out.exhausted)
    {
        fabric.begin_round();
        rounds += 1;
        for (c, dev) in devices.iter_mut().enumerate() {
            if dev.out.completed_round.is_some() || dev.out.exhausted {
                continue;
            }
            if dev.offset > 0 {
                // continuing a partial payload from an earlier round
                dev.out.resumes += 1;
            }
            loop {
                if dev.offset == len {
                    // payload complete — upload the ack
                    match fabric.send_up(c, cfg.ack_bytes) {
                        Ok(receipt) => {
                            dev.out.transfer_s += receipt.elapsed_s;
                            dev.out.completed_round = Some(rounds);
                            dev.out.payload_hash = dev.hash.finish();
                        }
                        Err(_) => dev.out.failed_sends += 1,
                    }
                    break;
                }
                let chunk = cfg.chunk_bytes.min(len - dev.offset);
                match fabric.send_down(c, chunk) {
                    Ok(receipt) => {
                        let range = dev.offset as usize..(dev.offset + chunk) as usize;
                        dev.hash.update(&payload[range.clone()]);
                        if let Some(buf) = &mut dev.buffer {
                            buf.extend_from_slice(&payload[range]);
                        }
                        dev.offset += chunk;
                        dev.out.delivered_bytes = dev.offset;
                        dev.out.chunks += 1;
                        dev.out.transfer_s += receipt.elapsed_s;
                    }
                    Err(_) => {
                        dev.out.failed_sends += 1;
                        break;
                    }
                }
            }
            if dev.out.completed_round.is_none() && dev.out.failed_sends > cfg.retry_budget {
                dev.out.exhausted = true;
            }
        }
        fabric.end_round();
    }

    // devices that never finished still report their partial hash
    for dev in &mut devices {
        if dev.out.completed_round.is_none() {
            dev.out.payload_hash = dev.hash.finish();
        }
    }

    let completed = devices.iter().filter(|d| d.out.completed_round.is_some()).count();
    let exhausted = devices.iter().filter(|d| d.out.exhausted).count();
    if let Some(o) = obs {
        let r = o.registry();
        r.counter("fleet.devices").add(n as u64);
        r.counter("fleet.devices_completed").add(completed as u64);
        r.counter("fleet.devices_exhausted").add(exhausted as u64);
        r.counter("fleet.rounds").add(rounds as u64);
        r.counter("fleet.payload_bytes").add(len);
        r.counter("fleet.chunks_delivered").add(devices.iter().map(|d| d.out.chunks as u64).sum());
        r.counter("fleet.failed_sends")
            .add(devices.iter().map(|d| d.out.failed_sends as u64).sum());
        r.counter("fleet.resumes").add(devices.iter().map(|d| d.out.resumes as u64).sum());
        r.counter("fleet.delivered_bytes").add(devices.iter().map(|d| d.offset).sum());
        let transfer_us = r.histogram("fleet.device_transfer_us", Buckets::Pow2);
        for d in devices.iter().filter(|d| d.out.completed_round.is_some()) {
            transfer_us.record((d.out.transfer_s * 1e6) as u64);
        }
    }
    if let Some(s) = span {
        s.exit();
    }

    let payloads = cfg
        .collect_payloads
        .then(|| devices.iter_mut().map(|d| d.buffer.take().unwrap_or_default()).collect());
    DistributionReport {
        payload_bytes: len,
        payload_hash: payload_hash(payload),
        rounds,
        completed,
        exhausted,
        devices: devices.into_iter().map(|d| d.out).collect(),
        transport: fabric.metrics(),
        payloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_net::{FabricConfig, FaultPlan, LinkConfig, PartitionWindow};
    use mdl_obs::Obs;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn ideal_fabric_delivers_everything_in_one_round() {
        let mut fabric = Fabric::ideal(8);
        let data = payload(10_000);
        let cfg = ChunkConfig { chunk_bytes: 1024, collect_payloads: true, ..Default::default() };
        let report = distribute(&mut fabric, &data, &cfg, None);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.completed, 8);
        assert!(report.all_bit_identical());
        for p in report.payloads.as_ref().expect("collected") {
            assert_eq!(p, &data);
        }
        // ⌈10000/1024⌉ = 10 chunks per device, delivered exactly once
        assert_eq!(report.transport.bytes_down, 8 * 10_000);
        assert_eq!(report.devices[0].chunks, 10);
    }

    #[test]
    fn lossy_link_resumes_from_offset_without_restarting() {
        // 30% per-send loss with no retries: sends fail mid-payload, the
        // next round continues from the offset — never from byte zero
        let mut config = FabricConfig::ideal();
        config.link.loss_prob = 0.3;
        let mut fabric = Fabric::new(8, config, 42);
        let data = payload(4096);
        let cfg = ChunkConfig {
            chunk_bytes: 512,
            retry_budget: 64,
            collect_payloads: true,
            ..Default::default()
        };
        let report = distribute(&mut fabric, &data, &cfg, None);
        assert_eq!(report.completed, 8, "generous budget lets everyone finish");
        assert!(report.rounds > 1, "losses must spread delivery over rounds");
        assert!(report.devices.iter().any(|d| d.resumes > 0), "someone resumed");
        assert!(report.all_bit_identical());
        for (d, p) in report.devices.iter().zip(report.payloads.as_ref().expect("collected")) {
            assert_eq!(p, &data);
            // exactly ⌈4096/512⌉ successful chunk sends per device: a
            // resumed round re-ships only the missing suffix
            assert_eq!(d.chunks, 8);
            assert_eq!(d.delivered_bytes, 4096);
        }
        assert_eq!(report.transport.bytes_down, 8 * 4096, "no delivered byte counted twice");
    }

    #[test]
    fn full_partition_defers_and_resumes_cleanly() {
        // everyone partitioned for rounds 1..3: the fleet waits, then
        // completes in round 3 with two failed sends charged per device
        let faults = FaultPlan {
            partitions: vec![PartitionWindow { from_round: 1, until_round: 3, clients: vec![] }],
            ..FaultPlan::none()
        };
        let mut config = FabricConfig::ideal();
        config.faults = faults;
        let mut fabric = Fabric::new(3, config, 7);
        let data = payload(2048);
        let obs = Obs::sim();
        let cfg = ChunkConfig { chunk_bytes: 512, ..Default::default() };
        let report = distribute(&mut fabric, &data, &cfg, Some(&obs));
        assert_eq!(report.rounds, 3);
        assert_eq!(report.completed, 3);
        for d in &report.devices {
            assert_eq!(d.failed_sends, 2, "one failed send per partitioned round");
            assert_eq!(d.completed_round, Some(3));
            assert_eq!(d.resumes, 0, "nothing was delivered before the heal");
        }
        // no double counting: delivered == one payload per device
        assert_eq!(report.transport.bytes_down, 3 * 2048);
        assert_eq!(report.delivered_distinct_bytes(), 3 * 2048);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("fleet.devices_completed"), Some(3));
        assert_eq!(snap.counter("fleet.delivered_bytes"), Some(3 * 2048));
        assert_eq!(snap.counter("fleet.failed_sends"), Some(6));
        assert!(snap.histogram("fleet.device_transfer_us").is_some());
    }

    #[test]
    fn retry_budget_exhaustion_marks_devices_failed() {
        let faults = FaultPlan {
            partitions: vec![PartitionWindow { from_round: 1, until_round: 100, clients: vec![1] }],
            ..FaultPlan::none()
        };
        let mut config = FabricConfig::ideal();
        config.faults = faults;
        let mut fabric = Fabric::new(2, config, 9);
        let data = payload(100);
        let cfg = ChunkConfig { retry_budget: 3, max_rounds: 20, ..Default::default() };
        let report = distribute(&mut fabric, &data, &cfg, None);
        assert_eq!(report.completed, 1);
        assert_eq!(report.exhausted, 1);
        assert!(report.devices[1].exhausted);
        assert_eq!(report.devices[1].failed_sends, 4, "budget 3 allows 4th failure to trip");
        assert!(report.rounds <= 5, "exhaustion stops the loop early");
        assert!((report.error_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_payload_still_requires_the_ack() {
        let mut fabric = Fabric::ideal(2);
        let report = distribute(&mut fabric, &[], &ChunkConfig::default(), None);
        assert_eq!(report.completed, 2);
        assert_eq!(report.transport.bytes_down, 0);
        assert_eq!(report.transport.messages_up, 2);
        assert_eq!(report.payload_hash, payload_hash(&[]));
        assert!(report.all_bit_identical());
    }

    #[test]
    fn distribution_is_bit_reproducible() {
        let run = || {
            let mut config = FabricConfig::faulty(LinkConfig::ideal());
            config.faults.partitions =
                vec![PartitionWindow { from_round: 2, until_round: 3, clients: vec![1, 3] }];
            let mut fabric = Fabric::new(6, config, 1234);
            distribute(&mut fabric, &payload(8192), &ChunkConfig::default(), None)
        };
        assert_eq!(run(), run(), "same seed, same report, bit for bit");
    }
}
