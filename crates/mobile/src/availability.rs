//! Availability-transition parameters (§II-B eligibility dynamics).
//!
//! The deployment policy only trains on a device that is simultaneously
//! *idle*, *plugged in* and on an *unmetered* connection. The per-round
//! Bernoulli model in `mdl-federated` captures the steady-state rate but
//! not the *dynamics*: a phone that just went on the charger stays there
//! for hours, it does not flip a coin every round. An
//! [`AvailabilityProfile`] gives each of the three eligibility attributes
//! an alternating-renewal dwell-time model (mean seconds spent in the ON
//! and OFF state), so a population simulator can evolve per-client state
//! machines in virtual time instead of inventing transition parameters ad
//! hoc.
//!
//! All dwell draws are made by the *caller* from seeded randomness; the
//! profile itself is pure data plus the inverse-CDF helper
//! [`AvailabilityProfile::dwell_s`], so two simulations with the same
//! seeds walk identical state trajectories.

use crate::device::DeviceProfile;
use serde::{Deserialize, Serialize};

/// Mean dwell times (seconds) of the three §II-B eligibility attributes,
/// each modelled as an alternating ON/OFF renewal process with
/// exponentially distributed sojourns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityProfile {
    /// Human-readable name.
    pub name: String,
    /// Mean seconds a device stays idle (screen off) once idle.
    pub mean_idle_s: f64,
    /// Mean seconds of foreground use once active.
    pub mean_active_s: f64,
    /// Mean seconds on the charger once plugged in.
    pub mean_charging_s: f64,
    /// Mean seconds off the charger once unplugged.
    pub mean_unplugged_s: f64,
    /// Mean seconds on unmetered (Wi-Fi) connectivity once associated.
    pub mean_unmetered_s: f64,
    /// Mean seconds on metered (cellular) connectivity once roaming.
    pub mean_metered_s: f64,
}

impl AvailabilityProfile {
    /// The overnight pattern federated deployments harvest: long idle and
    /// charging dwells (a phone on the nightstand), mostly home Wi-Fi.
    pub fn overnight_phone() -> Self {
        Self {
            name: "overnight-phone".into(),
            mean_idle_s: 6.0 * 3600.0,
            mean_active_s: 45.0 * 60.0,
            mean_charging_s: 7.0 * 3600.0,
            mean_unplugged_s: 14.0 * 3600.0,
            mean_unmetered_s: 10.0 * 3600.0,
            mean_metered_s: 3.0 * 3600.0,
        }
    }

    /// A commuter's phone: shorter charge windows, frequent hand-offs
    /// between Wi-Fi and cellular, more foreground use.
    pub fn commuter_phone() -> Self {
        Self {
            name: "commuter-phone".into(),
            mean_idle_s: 2.0 * 3600.0,
            mean_active_s: 30.0 * 60.0,
            mean_charging_s: 3.0 * 3600.0,
            mean_unplugged_s: 16.0 * 3600.0,
            mean_unmetered_s: 2.5 * 3600.0,
            mean_metered_s: 2.0 * 3600.0,
        }
    }

    /// A wearable: almost always idle, short nightly charge, tethered
    /// (unmetered) whenever its host phone is near.
    pub fn wearable() -> Self {
        Self {
            name: "wearable".into(),
            mean_idle_s: 12.0 * 3600.0,
            mean_active_s: 5.0 * 60.0,
            mean_charging_s: 2.0 * 3600.0,
            mean_unplugged_s: 22.0 * 3600.0,
            mean_unmetered_s: 8.0 * 3600.0,
            mean_metered_s: 4.0 * 3600.0,
        }
    }

    /// A device that is always idle, plugged in and on Wi-Fi — the
    /// degenerate profile legacy simulations assumed. Useful for tests
    /// that want population plumbing without availability gating.
    pub fn always_eligible() -> Self {
        Self {
            name: "always-eligible".into(),
            mean_idle_s: f64::INFINITY,
            mean_active_s: 0.0,
            mean_charging_s: f64::INFINITY,
            mean_unplugged_s: 0.0,
            mean_unmetered_s: f64::INFINITY,
            mean_metered_s: 0.0,
        }
    }

    /// The seeded default dwell parameters for a device profile, keyed by
    /// its name: flagships follow the overnight pattern, mid-range phones
    /// commute, wearables get the wearable pattern. Unknown device names
    /// fall back to the commuter profile (the most conservative eligible
    /// fraction).
    pub fn for_device(device: &DeviceProfile) -> Self {
        match device.name.as_str() {
            "flagship-phone" => Self::overnight_phone(),
            "wearable" => Self::wearable(),
            "cloud-server" => Self::always_eligible(),
            _ => Self::commuter_phone(),
        }
    }

    /// Steady-state probability of one attribute being ON given its mean
    /// ON/OFF dwells: `on / (on + off)`.
    fn on_fraction(mean_on_s: f64, mean_off_s: f64) -> f64 {
        if mean_on_s.is_infinite() || mean_off_s <= 0.0 {
            return 1.0;
        }
        if mean_on_s <= 0.0 {
            return 0.0;
        }
        mean_on_s / (mean_on_s + mean_off_s)
    }

    /// Steady-state fraction of time each attribute is ON:
    /// `(idle, charging, unmetered)`.
    pub fn on_fractions(&self) -> (f64, f64, f64) {
        (
            Self::on_fraction(self.mean_idle_s, self.mean_active_s),
            Self::on_fraction(self.mean_charging_s, self.mean_unplugged_s),
            Self::on_fraction(self.mean_unmetered_s, self.mean_metered_s),
        )
    }

    /// Expected fraction of check-ins at which the device is eligible
    /// (idle ∧ charging ∧ unmetered), assuming attribute independence.
    pub fn duty_cycle(&self) -> f64 {
        let (i, c, u) = self.on_fractions();
        i * c * u
    }

    /// Inverse-CDF exponential dwell draw: maps a uniform `u ∈ [0, 1)` to
    /// a sojourn of mean `mean_s` seconds. A zero mean yields an
    /// instantaneous sojourn; an infinite mean pins the state forever.
    pub fn dwell_s(mean_s: f64, u: f64) -> f64 {
        if mean_s <= 0.0 {
            return 0.0;
        }
        if mean_s.is_infinite() {
            return f64::INFINITY;
        }
        let u = u.clamp(0.0, 1.0 - 1e-12);
        -mean_s * (1.0 - u).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycles_are_ordered_sanely() {
        let overnight = AvailabilityProfile::overnight_phone().duty_cycle();
        let commuter = AvailabilityProfile::commuter_phone().duty_cycle();
        assert!(overnight > commuter, "{overnight} vs {commuter}");
        assert!(overnight > 0.05 && overnight < 0.6, "overnight duty {overnight}");
        assert_eq!(AvailabilityProfile::always_eligible().duty_cycle(), 1.0);
    }

    #[test]
    fn device_defaults_are_seeded_per_profile() {
        let flagship = AvailabilityProfile::for_device(&DeviceProfile::flagship_phone());
        let mid = AvailabilityProfile::for_device(&DeviceProfile::midrange_phone());
        let wear = AvailabilityProfile::for_device(&DeviceProfile::wearable());
        assert_eq!(flagship.name, "overnight-phone");
        assert_eq!(mid.name, "commuter-phone");
        assert_eq!(wear.name, "wearable");
        assert_eq!(
            AvailabilityProfile::for_device(&DeviceProfile::cloud_server()).duty_cycle(),
            1.0
        );
    }

    #[test]
    fn dwell_draw_matches_exponential_inverse_cdf() {
        assert_eq!(AvailabilityProfile::dwell_s(0.0, 0.5), 0.0);
        assert_eq!(AvailabilityProfile::dwell_s(f64::INFINITY, 0.5), f64::INFINITY);
        let median = AvailabilityProfile::dwell_s(100.0, 0.5);
        assert!((median - 100.0 * std::f64::consts::LN_2).abs() < 1e-9);
        // mean over a uniform grid converges on the configured mean
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|i| AvailabilityProfile::dwell_s(60.0, i as f64 / n as f64)).sum::<f64>()
                / n as f64;
        assert!((mean - 60.0).abs() < 1.0, "empirical mean {mean}");
    }

    #[test]
    fn dwell_is_monotone_in_u() {
        let a = AvailabilityProfile::dwell_s(10.0, 0.1);
        let b = AvailabilityProfile::dwell_s(10.0, 0.9);
        assert!(b > a && a > 0.0);
    }
}
