//! Battery accounting.

use serde::{Deserialize, Serialize};

/// A simple energy budget with drain tracking.
///
/// # Examples
///
/// ```
/// use mdl_mobile::Battery;
///
/// let mut battery = Battery::typical_phone();
/// battery.drain(5_500.0); // joules
/// assert!((battery.remaining_fraction() - 0.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    drained_j: f64,
}

impl Battery {
    /// A battery with the given capacity in joules.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    pub fn new(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "capacity must be positive");
        Self { capacity_j, drained_j: 0.0 }
    }

    /// A typical phone battery (~4000 mAh at 3.85 V ≈ 55 kJ).
    pub fn typical_phone() -> Self {
        Self::new(55_000.0)
    }

    /// A small wearable battery (~300 mAh ≈ 4 kJ).
    pub fn wearable() -> Self {
        Self::new(4_000.0)
    }

    /// Records an energy drain; saturates at empty.
    pub fn drain(&mut self, joules: f64) {
        self.drained_j = (self.drained_j + joules.max(0.0)).min(self.capacity_j);
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        1.0 - self.drained_j / self.capacity_j
    }

    /// Total joules drained so far.
    pub fn drained_joules(&self) -> f64 {
        self.drained_j
    }

    /// `true` once fully drained.
    pub fn is_empty(&self) -> bool {
        self.drained_j >= self.capacity_j
    }

    /// How many operations of `cost_j` joules fit in the remaining charge.
    pub fn operations_remaining(&self, cost_j: f64) -> u64 {
        if cost_j <= 0.0 {
            return u64::MAX;
        }
        ((self.capacity_j - self.drained_j) / cost_j).floor().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_and_reports() {
        let mut b = Battery::new(100.0);
        b.drain(25.0);
        assert_eq!(b.remaining_fraction(), 0.75);
        assert_eq!(b.drained_joules(), 25.0);
        assert!(!b.is_empty());
        b.drain(1000.0);
        assert!(b.is_empty());
        assert_eq!(b.remaining_fraction(), 0.0);
    }

    #[test]
    fn negative_drain_ignored() {
        let mut b = Battery::new(10.0);
        b.drain(-5.0);
        assert_eq!(b.drained_joules(), 0.0);
    }

    #[test]
    fn operations_remaining_counts() {
        let b = Battery::new(10.0);
        assert_eq!(b.operations_remaining(2.0), 5);
        assert_eq!(b.operations_remaining(0.0), u64::MAX);
    }

    #[test]
    fn presets_are_ordered() {
        assert!(
            Battery::typical_phone().operations_remaining(1.0)
                > Battery::wearable().operations_remaining(1.0)
        );
    }
}
