//! Analytic compute/memory model of a mobile device (§I, §III).
//!
//! The paper's inference-side arguments rest on two hardware facts:
//! off-chip DRAM access costs ~two orders of magnitude more energy than
//! on-chip SRAM (references [13], [14]), and the dot-product volume of a
//! DNN dominates mobile compute budgets. The model here captures exactly
//! those effects with literature constants (Horowitz-style 45 nm numbers,
//! as cited by Han et al.): it is a *relative-cost* model — absolute
//! numbers are indicative, orderings are what the experiments rely on.

use mdl_nn::LayerInfo;
use serde::{Deserialize, Serialize};

/// Energy/latency estimate of one inference (or transfer).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Wall-clock seconds.
    pub latency_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl CostEstimate {
    /// Component-wise sum.
    pub fn plus(self, other: CostEstimate) -> CostEstimate {
        CostEstimate {
            latency_s: self.latency_s + other.latency_s,
            energy_j: self.energy_j + other.energy_j,
        }
    }

    /// A zero-cost estimate.
    pub fn zero() -> CostEstimate {
        CostEstimate::default()
    }
}

/// Compute and memory profile of a device class.
///
/// # Examples
///
/// ```
/// use mdl_mobile::DeviceProfile;
/// use mdl_nn::LayerInfo;
///
/// let layer = LayerInfo { kind: "dense", in_dim: 64, out_dim: 32,
///                         params: 64 * 32 + 32, macs: 64 * 32 };
/// let cost = DeviceProfile::midrange_phone().inference_cost(&[layer], 4.0);
/// assert!(cost.latency_s > 0.0 && cost.energy_j > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Sustained multiply–accumulates per second.
    pub macs_per_sec: f64,
    /// Energy per MAC in joules (arithmetic only).
    pub energy_per_mac_j: f64,
    /// On-chip (SRAM/cache) capacity in bytes available for weights.
    pub on_chip_bytes: u64,
    /// Energy per byte read from on-chip memory.
    pub on_chip_j_per_byte: f64,
    /// Energy per byte read from off-chip DRAM (~2 orders of magnitude
    /// above on-chip — the key constant behind §I's memory argument).
    pub off_chip_j_per_byte: f64,
}

impl DeviceProfile {
    /// A flagship-class phone SoC (large cache, fast NPU-ish throughput).
    pub fn flagship_phone() -> Self {
        Self {
            name: "flagship-phone".into(),
            macs_per_sec: 2.0e10,
            energy_per_mac_j: 4.6e-12,
            on_chip_bytes: 8 * 1024 * 1024,
            on_chip_j_per_byte: 1.25e-12,
            off_chip_j_per_byte: 1.6e-10,
        }
    }

    /// A mid-range phone.
    pub fn midrange_phone() -> Self {
        Self {
            name: "midrange-phone".into(),
            macs_per_sec: 4.0e9,
            energy_per_mac_j: 6.0e-12,
            on_chip_bytes: 2 * 1024 * 1024,
            on_chip_j_per_byte: 1.25e-12,
            off_chip_j_per_byte: 1.6e-10,
        }
    }

    /// A wearable / embedded sensor node.
    pub fn wearable() -> Self {
        Self {
            name: "wearable".into(),
            macs_per_sec: 2.0e8,
            energy_per_mac_j: 1.0e-11,
            on_chip_bytes: 256 * 1024,
            on_chip_j_per_byte: 1.25e-12,
            off_chip_j_per_byte: 2.0e-10,
        }
    }

    /// A cloud server (effectively unconstrained for our model sizes);
    /// energy is billed to the provider so the device-side energy is zero.
    pub fn cloud_server() -> Self {
        Self {
            name: "cloud-server".into(),
            macs_per_sec: 2.0e12,
            energy_per_mac_j: 0.0,
            on_chip_bytes: u64::MAX,
            on_chip_j_per_byte: 0.0,
            off_chip_j_per_byte: 0.0,
        }
    }

    /// Estimates one forward pass over layers with `model_bytes` of weights.
    ///
    /// Weights that fit on-chip are read at SRAM cost; any overflow is
    /// charged at DRAM cost *per inference* (streamed weights cannot be
    /// cached — the paper's §I point about large models being pushed
    /// off-chip).
    pub fn inference_cost(&self, layers: &[LayerInfo], bytes_per_weight: f64) -> CostEstimate {
        let total_macs: u64 = layers.iter().map(|l| l.macs).sum();
        let total_params: u64 = layers.iter().map(|l| l.params as u64).sum();
        let model_bytes = total_params as f64 * bytes_per_weight;

        let latency = total_macs as f64 / self.macs_per_sec;
        let compute_energy = total_macs as f64 * self.energy_per_mac_j;
        let on_chip = model_bytes.min(self.on_chip_bytes as f64);
        let off_chip = (model_bytes - on_chip).max(0.0);
        let memory_energy = on_chip * self.on_chip_j_per_byte + off_chip * self.off_chip_j_per_byte;
        CostEstimate { latency_s: latency, energy_j: compute_energy + memory_energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(params: usize, macs: u64) -> LayerInfo {
        LayerInfo { kind: "dense", in_dim: 0, out_dim: 0, params, macs }
    }

    #[test]
    fn bigger_models_cost_more() {
        let dev = DeviceProfile::midrange_phone();
        let small = dev.inference_cost(&[layer(1000, 1000)], 4.0);
        let big = dev.inference_cost(&[layer(1_000_000, 1_000_000)], 4.0);
        assert!(big.latency_s > small.latency_s);
        assert!(big.energy_j > small.energy_j);
    }

    #[test]
    fn off_chip_spill_dominates_energy() {
        let dev = DeviceProfile::wearable(); // 256 KiB on-chip
                                             // 64 KiB model: fully on-chip
        let fits = dev.inference_cost(&[layer(16_384, 16_384)], 4.0);
        // 2.56 MiB model: 90% spills to DRAM, same MACs per weight
        let spills = dev.inference_cost(&[layer(655_360, 655_360)], 4.0);
        let fits_per_mac = fits.energy_j / 16_384.0;
        let spills_per_mac = spills.energy_j / 655_360.0;
        assert!(
            spills_per_mac > fits_per_mac * 5.0,
            "DRAM spill must dominate per-MAC energy: {spills_per_mac} vs {fits_per_mac}"
        );
    }

    #[test]
    fn compression_reduces_memory_energy() {
        let dev = DeviceProfile::wearable();
        let l = [layer(1_000_000, 1_000_000)];
        let fp32 = dev.inference_cost(&l, 4.0);
        let compressed = dev.inference_cost(&l, 0.4); // ~10x compressed
        assert!(compressed.energy_j < fp32.energy_j / 2.0);
    }

    #[test]
    fn device_ordering_is_sane() {
        let l = [layer(100_000, 100_000)];
        let flagship = DeviceProfile::flagship_phone().inference_cost(&l, 4.0);
        let mid = DeviceProfile::midrange_phone().inference_cost(&l, 4.0);
        let wear = DeviceProfile::wearable().inference_cost(&l, 4.0);
        assert!(flagship.latency_s < mid.latency_s);
        assert!(mid.latency_s < wear.latency_s);
        let cloud = DeviceProfile::cloud_server().inference_cost(&l, 4.0);
        assert_eq!(cloud.energy_j, 0.0);
    }

    #[test]
    fn cost_estimates_add() {
        let a = CostEstimate { latency_s: 1.0, energy_j: 2.0 };
        let b = CostEstimate { latency_s: 0.5, energy_j: 0.25 };
        let c = a.plus(b);
        assert_eq!(c.latency_s, 1.5);
        assert_eq!(c.energy_j, 2.25);
        assert_eq!(CostEstimate::zero(), CostEstimate::default());
    }
}
