//! # mdl-mobile
//!
//! Analytic mobile-hardware simulator standing in for the phones, radios
//! and batteries the paper's arguments are grounded in (§I, §III). The
//! model is deliberately simple — literature energy constants, bandwidth/
//! latency link profiles — because the paper's claims are *relative*:
//! off-chip memory ≫ on-chip, radio ≫ compute, and the placement
//! trade-offs of Figs. 2–3 follow from those orderings.
//!
//! - [`device`]: compute + memory-hierarchy cost of one inference;
//! - [`radio`]: Wi-Fi / LTE / 3G link profiles with per-byte energy;
//! - [`battery`]: drain accounting;
//! - [`offload`]: on-device vs cloud vs split placement comparison;
//! - [`availability`]: §II-B eligibility dwell-time dynamics (idle /
//!   charging / unmetered renewal processes) per device class.
//!
//! # Examples
//!
//! ```
//! use mdl_mobile::{DeviceProfile, NetworkProfile};
//!
//! let radio = NetworkProfile::lte().round_trip_cost(100_000, 40);
//! assert!(radio.energy_j > 0.0 && radio.latency_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod availability;
pub mod battery;
pub mod device;
pub mod offload;
pub mod radio;

pub use availability::AvailabilityProfile;
pub use battery::Battery;
pub use device::{CostEstimate, DeviceProfile};
pub use offload::{placement_cost, rank_placements, Placement, Scenario};
pub use radio::NetworkProfile;

#[cfg(test)]
mod proptests {
    use crate::device::DeviceProfile;
    use crate::radio::NetworkProfile;
    use mdl_nn::LayerInfo;
    use proptest::prelude::*;

    fn layer(params: usize, macs: u64) -> LayerInfo {
        LayerInfo { kind: "dense", in_dim: 0, out_dim: 0, params, macs }
    }

    proptest! {
        #[test]
        fn inference_cost_is_monotone_in_work(
            macs_a in 1u64..1_000_000,
            extra in 1u64..1_000_000,
            params in 1usize..1_000_000,
        ) {
            let dev = DeviceProfile::midrange_phone();
            let small = dev.inference_cost(&[layer(params, macs_a)], 4.0);
            let big = dev.inference_cost(&[layer(params, macs_a + extra)], 4.0);
            prop_assert!(big.latency_s > small.latency_s);
            prop_assert!(big.energy_j >= small.energy_j);
        }

        #[test]
        fn memory_energy_is_monotone_in_bytes_per_weight(
            params in 1usize..2_000_000,
            bpw_a in 1u32..32,
            bpw_b in 1u32..32,
        ) {
            let dev = DeviceProfile::wearable();
            let a = dev.inference_cost(&[layer(params, 1)], bpw_a as f64 / 8.0);
            let b = dev.inference_cost(&[layer(params, 1)], bpw_b as f64 / 8.0);
            if bpw_a <= bpw_b {
                prop_assert!(a.energy_j <= b.energy_j + 1e-18);
            }
        }

        #[test]
        fn radio_cost_is_monotone_in_payload(
            up in 0u64..10_000_000,
            extra in 1u64..1_000_000,
        ) {
            for net in [NetworkProfile::wifi(), NetworkProfile::lte(), NetworkProfile::cellular_3g()] {
                let small = net.round_trip_cost(up, 100);
                let big = net.round_trip_cost(up + extra, 100);
                prop_assert!(big.latency_s > small.latency_s);
                prop_assert!(big.energy_j > small.energy_j);
            }
        }
    }
}
