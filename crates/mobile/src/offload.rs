//! Execution-placement comparison: on-device vs cloud vs split inference
//! (§III, Figs. 2 and 3).

use crate::device::{CostEstimate, DeviceProfile};
use crate::radio::NetworkProfile;
use mdl_nn::LayerInfo;
use serde::{Deserialize, Serialize};

/// Where an inference executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Entire model on the device (Fig. 2's alternative).
    OnDevice,
    /// Raw input shipped to the cloud, result shipped back (Fig. 2).
    Cloud,
    /// First `local_layers` layers on the device, the rest in the cloud,
    /// transmitting the intermediate representation (Fig. 3).
    Split {
        /// Number of layers executed locally before the upload.
        local_layers: usize,
    },
}

/// Inputs to a placement evaluation.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Per-layer structure of the model.
    pub layers: Vec<LayerInfo>,
    /// Bytes of one raw input example.
    pub input_bytes: u64,
    /// Bytes of the returned result.
    pub result_bytes: u64,
    /// Bytes per weight on the device (4.0 = fp32; smaller after compression).
    pub bytes_per_weight: f64,
}

impl Scenario {
    /// Bytes of the activation crossing the network when splitting after
    /// `local_layers` (fp32 activations).
    pub fn representation_bytes(&self, local_layers: usize) -> u64 {
        if local_layers == 0 {
            return self.input_bytes;
        }
        let width = self.layers[local_layers - 1].out_dim;
        4 * width as u64
    }
}

/// Device-side cost of one inference under a placement.
///
/// Cloud compute time is included in latency (the user waits for it) but
/// cloud energy is not charged to the device.
///
/// # Panics
///
/// Panics if a split point exceeds the layer count.
pub fn placement_cost(
    placement: Placement,
    scenario: &Scenario,
    device: &DeviceProfile,
    cloud: &DeviceProfile,
    network: &NetworkProfile,
) -> CostEstimate {
    match placement {
        Placement::OnDevice => device.inference_cost(&scenario.layers, scenario.bytes_per_weight),
        Placement::Cloud => {
            let radio = network.round_trip_cost(scenario.input_bytes, scenario.result_bytes);
            let compute = cloud.inference_cost(&scenario.layers, 4.0);
            CostEstimate {
                latency_s: radio.latency_s + compute.latency_s,
                energy_j: radio.energy_j,
            }
        }
        Placement::Split { local_layers } => {
            assert!(local_layers <= scenario.layers.len(), "split point beyond network depth");
            let local =
                device.inference_cost(&scenario.layers[..local_layers], scenario.bytes_per_weight);
            let remote = cloud.inference_cost(&scenario.layers[local_layers..], 4.0);
            let radio = network.round_trip_cost(
                scenario.representation_bytes(local_layers),
                scenario.result_bytes,
            );
            CostEstimate {
                latency_s: local.latency_s + radio.latency_s + remote.latency_s,
                energy_j: local.energy_j + radio.energy_j,
            }
        }
    }
}

/// Evaluates all placements (every split point) and returns them sorted by
/// the chosen objective.
pub fn rank_placements(
    scenario: &Scenario,
    device: &DeviceProfile,
    cloud: &DeviceProfile,
    network: &NetworkProfile,
    by_energy: bool,
) -> Vec<(Placement, CostEstimate)> {
    let mut options = vec![Placement::OnDevice, Placement::Cloud];
    for at in 1..scenario.layers.len() {
        options.push(Placement::Split { local_layers: at });
    }
    let mut ranked: Vec<(Placement, CostEstimate)> = options
        .into_iter()
        .map(|p| (p, placement_cost(p, scenario, device, cloud, network)))
        .collect();
    ranked.sort_by(|a, b| {
        let ka = if by_energy { a.1.energy_j } else { a.1.latency_s };
        let kb = if by_energy { b.1.energy_j } else { b.1.latency_s };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp_scenario() -> Scenario {
        // 784 → 512 → 128 → 10 (bottlenecking widths: split sends less)
        let dims = [784usize, 512, 128, 10];
        let layers: Vec<LayerInfo> = dims
            .windows(2)
            .map(|w| LayerInfo {
                kind: "dense",
                in_dim: w[0],
                out_dim: w[1],
                params: w[0] * w[1] + w[1],
                macs: (w[0] * w[1]) as u64,
            })
            .collect();
        Scenario { layers, input_bytes: 4 * 784, result_bytes: 4 * 10, bytes_per_weight: 4.0 }
    }

    #[test]
    fn offline_forces_on_device() {
        let s = mlp_scenario();
        let ranked = rank_placements(
            &s,
            &DeviceProfile::midrange_phone(),
            &DeviceProfile::cloud_server(),
            &NetworkProfile::offline(),
            false,
        );
        assert_eq!(ranked[0].0, Placement::OnDevice);
        assert!(ranked[0].1.latency_s.is_finite());
        assert!(ranked[1].1.latency_s.is_infinite());
    }

    #[test]
    fn offline_forces_on_device_under_energy_objective() {
        // regression: offline round trips used to report 0 J, which made the
        // energy ranker place Cloud (no device compute, "free" radio) above
        // OnDevice even though the link cannot move a single byte
        let s = mlp_scenario();
        let ranked = rank_placements(
            &s,
            &DeviceProfile::midrange_phone(),
            &DeviceProfile::cloud_server(),
            &NetworkProfile::offline(),
            true,
        );
        assert_eq!(ranked[0].0, Placement::OnDevice, "ranked: {ranked:?}");
        assert!(ranked[0].1.energy_j.is_finite());
        for (placement, cost) in &ranked[1..] {
            assert!(
                cost.energy_j.is_infinite(),
                "{placement:?} must be infinitely expensive offline"
            );
        }
    }

    #[test]
    fn split_sends_fewer_bytes_than_cloud_after_bottleneck() {
        let s = mlp_scenario();
        // after layer 2 the representation is 128 floats < 784-float input
        assert!(s.representation_bytes(2) < s.input_bytes);
        assert_eq!(s.representation_bytes(2), 4 * 128);
        assert_eq!(s.representation_bytes(0), s.input_bytes);
    }

    fn big_scenario() -> Scenario {
        // a VGG-fc-sized stack: far beyond a wearable's budget
        let dims = [784usize, 4096, 4096, 4096, 10];
        let layers: Vec<LayerInfo> = dims
            .windows(2)
            .map(|w| LayerInfo {
                kind: "dense",
                in_dim: w[0],
                out_dim: w[1],
                params: w[0] * w[1] + w[1],
                macs: (w[0] * w[1]) as u64,
            })
            .collect();
        Scenario { layers, input_bytes: 4 * 784, result_bytes: 4 * 10, bytes_per_weight: 4.0 }
    }

    #[test]
    fn weak_device_prefers_cloud_on_wifi() {
        let s = big_scenario();
        let ranked = rank_placements(
            &s,
            &DeviceProfile::wearable(),
            &DeviceProfile::cloud_server(),
            &NetworkProfile::wifi(),
            false,
        );
        assert_ne!(ranked[0].0, Placement::OnDevice, "wearable should offload: {ranked:?}");
    }

    #[test]
    fn energy_ranking_counts_radio() {
        let s = mlp_scenario();
        let device = DeviceProfile::flagship_phone();
        let cloud = DeviceProfile::cloud_server();
        let net = NetworkProfile::cellular_3g();
        let on_device = placement_cost(Placement::OnDevice, &s, &device, &cloud, &net);
        let on_cloud = placement_cost(Placement::Cloud, &s, &device, &cloud, &net);
        // flagship local compute is cheap; 3G upload of the raw input is not
        assert!(on_device.energy_j < on_cloud.energy_j);
    }

    #[test]
    fn split_costs_compose() {
        let s = mlp_scenario();
        let device = DeviceProfile::midrange_phone();
        let cloud = DeviceProfile::cloud_server();
        let net = NetworkProfile::wifi();
        let full_split =
            placement_cost(Placement::Split { local_layers: 3 }, &s, &device, &cloud, &net);
        let on_device = placement_cost(Placement::OnDevice, &s, &device, &cloud, &net);
        // splitting after the last layer = on-device + shipping 10 floats
        assert!(full_split.latency_s >= on_device.latency_s);
        assert!(full_split.energy_j >= on_device.energy_j);
    }
}
