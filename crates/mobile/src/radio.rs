//! Radio model: bandwidth, round-trip latency and per-byte energy.
//!
//! Wireless transfer is the energy elephant of cloud inference (§III):
//! moving a byte over LTE costs orders of magnitude more energy than a MAC.

use crate::device::CostEstimate;
use serde::{Deserialize, Serialize};

/// A network link profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Human-readable name.
    pub name: String,
    /// Uplink bandwidth in bytes/second.
    pub up_bytes_per_sec: f64,
    /// Downlink bandwidth in bytes/second.
    pub down_bytes_per_sec: f64,
    /// One-way latency in seconds.
    pub one_way_latency_s: f64,
    /// Device energy per uplink byte (joules).
    pub tx_j_per_byte: f64,
    /// Device energy per downlink byte (joules).
    pub rx_j_per_byte: f64,
    /// Whether the link is metered (counts against the data plan —
    /// relevant to the §II-B eligibility policy).
    pub metered: bool,
}

impl NetworkProfile {
    /// Home/office Wi-Fi.
    pub fn wifi() -> Self {
        Self {
            name: "wifi".into(),
            up_bytes_per_sec: 6.0e6,
            down_bytes_per_sec: 12.0e6,
            one_way_latency_s: 0.01,
            tx_j_per_byte: 1.0e-7,
            rx_j_per_byte: 5.0e-8,
            metered: false,
        }
    }

    /// A good LTE connection.
    pub fn lte() -> Self {
        Self {
            name: "lte".into(),
            up_bytes_per_sec: 1.5e6,
            down_bytes_per_sec: 5.0e6,
            one_way_latency_s: 0.035,
            tx_j_per_byte: 6.0e-7,
            rx_j_per_byte: 2.5e-7,
            metered: true,
        }
    }

    /// A weak 3G connection.
    pub fn cellular_3g() -> Self {
        Self {
            name: "3g".into(),
            up_bytes_per_sec: 2.0e5,
            down_bytes_per_sec: 8.0e5,
            one_way_latency_s: 0.1,
            tx_j_per_byte: 2.0e-6,
            rx_j_per_byte: 8.0e-7,
            metered: true,
        }
    }

    /// No connectivity (cloud paths become impossible).
    pub fn offline() -> Self {
        Self {
            name: "offline".into(),
            up_bytes_per_sec: 0.0,
            down_bytes_per_sec: 0.0,
            one_way_latency_s: f64::INFINITY,
            tx_j_per_byte: 0.0,
            rx_j_per_byte: 0.0,
            metered: false,
        }
    }

    /// `true` when the link can move data at all.
    pub fn is_connected(&self) -> bool {
        self.up_bytes_per_sec > 0.0 && self.down_bytes_per_sec > 0.0
    }

    /// Device-side cost of a round trip uploading `up` bytes and
    /// downloading `down` bytes. Returns an infinite estimate (latency
    /// *and* energy) when offline, so that neither the latency- nor the
    /// energy-minimising objective can ever pick a network path — a zero
    /// energy cost here used to make offline cloud offload look free to
    /// the energy ranker.
    pub fn round_trip_cost(&self, up: u64, down: u64) -> CostEstimate {
        if !self.is_connected() {
            return CostEstimate { latency_s: f64::INFINITY, energy_j: f64::INFINITY };
        }
        let latency = 2.0 * self.one_way_latency_s
            + up as f64 / self.up_bytes_per_sec
            + down as f64 / self.down_bytes_per_sec;
        let energy = up as f64 * self.tx_j_per_byte + down as f64 * self.rx_j_per_byte;
        CostEstimate { latency_s: latency, energy_j: energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_beats_lte_beats_3g() {
        let up = 100_000u64;
        let wifi = NetworkProfile::wifi().round_trip_cost(up, 100);
        let lte = NetworkProfile::lte().round_trip_cost(up, 100);
        let g3 = NetworkProfile::cellular_3g().round_trip_cost(up, 100);
        assert!(wifi.latency_s < lte.latency_s && lte.latency_s < g3.latency_s);
        assert!(wifi.energy_j < lte.energy_j && lte.energy_j < g3.energy_j);
    }

    #[test]
    fn offline_is_unusable() {
        let off = NetworkProfile::offline();
        assert!(!off.is_connected());
        let cost = off.round_trip_cost(10, 10);
        assert!(cost.latency_s.is_infinite());
        assert!(
            cost.energy_j.is_infinite(),
            "offline transfers must not look free to the energy objective"
        );
    }

    #[test]
    fn radio_energy_dwarfs_compute_energy() {
        // the §III argument: sending 100 KB over LTE costs more device
        // energy than a million MACs of local compute
        let radio = NetworkProfile::lte().round_trip_cost(100_000, 0);
        let compute = 1_000_000.0 * 4.6e-12;
        assert!(radio.energy_j > compute * 100.0);
    }

    #[test]
    fn metering_flags() {
        assert!(!NetworkProfile::wifi().metered);
        assert!(NetworkProfile::lte().metered);
        assert!(NetworkProfile::cellular_3g().metered);
    }
}
