//! Typed transport errors — a faulty network fails loudly, never by
//! hanging or dividing by zero.

use std::fmt;

/// Why a send (or a whole round) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The link cannot move data at all (offline profile or an active
    /// partition window).
    Unreachable,
    /// The remote endpoint vanished mid-round (battery died, app killed).
    PeerDropped,
    /// Every attempt timed out and the retry budget is spent.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The per-round deadline expired before the transfer completed.
    DeadlineExceeded,
    /// The server could not assemble a quorum of client updates within the
    /// configured number of consecutive rounds.
    QuorumUnreachable {
        /// Round at which the server gave up.
        round: usize,
        /// Updates the quorum required.
        needed: usize,
        /// Updates actually delivered in the final attempted round.
        got: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable => write!(f, "link unreachable (offline or partitioned)"),
            NetError::PeerDropped => write!(f, "peer dropped out mid-round"),
            NetError::RetriesExhausted { attempts } => {
                write!(f, "retries exhausted after {attempts} attempts")
            }
            NetError::DeadlineExceeded => write!(f, "round deadline exceeded"),
            NetError::QuorumUnreachable { round, needed, got } => {
                write!(f, "quorum unreachable at round {round}: needed {needed}, got {got}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = NetError::QuorumUnreachable { round: 3, needed: 5, got: 1 };
        let s = e.to_string();
        assert!(s.contains("round 3") && s.contains("needed 5") && s.contains("got 1"));
        assert!(NetError::RetriesExhausted { attempts: 4 }.to_string().contains('4'));
    }
}
