//! The [`Fabric`]: one simulated transport for a whole cohort. Every byte
//! a federated round or a split-inference offload moves goes through a
//! per-client [`Link`], with faults drawn round-by-round from a single
//! seeded RNG — so a run is bit-reproducible end to end.

use crate::error::NetError;
use crate::fault::FaultPlan;
use crate::link::{Direction, Link, LinkConfig, LinkState, SendReceipt};
use crate::metrics::TransportMetrics;
use crate::retry::RetryPolicy;
use mdl_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything that shapes a fabric's behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Link model shared by every client (bandwidth, latency, loss, jitter).
    pub link: LinkConfig,
    /// Fault injection schedule.
    pub faults: FaultPlan,
    /// Retry policy every send follows.
    pub retry: RetryPolicy,
    /// Per-round deadline in simulated seconds; the server proceeds with
    /// whatever arrived by then.
    pub round_deadline_s: f64,
    /// Fraction of the *selected* cohort whose updates must arrive for a
    /// round to aggregate (`0.0` disables quorum checking).
    pub quorum_fraction: f64,
    /// Consecutive quorum misses tolerated before a run fails with
    /// [`NetError::QuorumUnreachable`].
    pub max_failed_rounds: usize,
}

impl FabricConfig {
    /// The perfect network the simulations assumed before `mdl-net`:
    /// clean Wi-Fi, no faults, no deadline, no quorum requirement.
    pub fn ideal() -> Self {
        Self {
            link: LinkConfig::ideal(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::no_retry(),
            round_deadline_s: f64::INFINITY,
            quorum_fraction: 0.0,
            max_failed_rounds: usize::MAX,
        }
    }

    /// A faulty mobile cohort over `link`: the [`FaultPlan::lossy_cohort`]
    /// schedule with a default retry policy and a majority quorum.
    pub fn faulty(link: LinkConfig) -> Self {
        Self {
            link,
            faults: FaultPlan::lossy_cohort(),
            retry: RetryPolicy::default(),
            round_deadline_s: 60.0,
            quorum_fraction: 0.5,
            max_failed_rounds: 5,
        }
    }
}

/// A cohort-wide simulated transport.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    links: Vec<Link>,
    rng: StdRng,
    round: usize,
    rounds_completed: u64,
    sim_clock_s: f64,
    obs: Option<Obs>,
}

impl Fabric {
    /// A fabric over `clients` identical links. Each link gets its own RNG
    /// stream derived from `seed`, and fault draws come from a separate
    /// stream, so per-link traffic and cohort-level faults never alias.
    pub fn new(clients: usize, config: FabricConfig, seed: u64) -> Self {
        let links = (0..clients)
            .map(|c| {
                let link_seed = seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Link::new(config.link.clone(), link_seed)
            })
            .collect();
        Self {
            config,
            links,
            rng: StdRng::seed_from_u64(seed.wrapping_add(0xFAB0_5EED)),
            round: 0,
            rounds_completed: 0,
            sim_clock_s: 0.0,
            obs: None,
        }
    }

    /// Attaches an observability session: every [`Fabric::end_round`]
    /// advances `obs`'s (sim) clock by the round's simulated duration and
    /// mirrors the aggregate [`TransportMetrics`] into `net.*` registry
    /// counters — making the registry the one bookkeeping path consumers
    /// read, derived from the same per-link counters as
    /// [`Fabric::metrics`].
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
        self.export_obs();
    }

    /// The attached observability session, if any.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// Mirrors the current aggregate counters into the attached registry.
    fn export_obs(&self) {
        let Some(obs) = &self.obs else { return };
        let m = self.metrics();
        let reg = obs.registry();
        reg.counter("net.attempts").store(m.attempts);
        reg.counter("net.retries").store(m.retries);
        reg.counter("net.timeouts").store(m.timeouts);
        reg.counter("net.drops").store(m.drops);
        reg.counter("net.messages_up").store(m.messages_up);
        reg.counter("net.messages_down").store(m.messages_down);
        reg.counter("net.bytes_up").store(m.bytes_up);
        reg.counter("net.bytes_down").store(m.bytes_down);
        // the one place total delivered traffic is computed; reports must
        // read this counter instead of re-summing up/down themselves
        reg.counter("net.delivered_bytes").store(m.bytes_up + m.bytes_down);
        reg.counter("net.wasted_bytes").store(m.wasted_bytes);
        reg.counter("net.rounds").store(m.rounds);
        reg.gauge("net.sim_clock_s").set(m.sim_clock_s);
        reg.gauge("net.failure_rate").set(m.failure_rate());
    }

    /// The perfect network: behaves exactly like no fabric at all.
    pub fn ideal(clients: usize) -> Self {
        Self::new(clients, FabricConfig::ideal(), 0)
    }

    /// Number of client links.
    pub fn clients(&self) -> usize {
        self.links.len()
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Starts a round: draws every client's fate (in client order, from the
    /// fabric RNG — callers' RNGs are never touched) and resets round
    /// clocks. Rounds are 1-based.
    pub fn begin_round(&mut self) {
        self.round += 1;
        let fates = if self.config.faults.is_quiet() {
            vec![crate::fault::RoundFate::healthy(); self.links.len()]
        } else {
            self.config.faults.draw_round(self.round, self.links.len(), &mut self.rng)
        };
        for (link, fate) in self.links.iter_mut().zip(fates) {
            link.begin_round(fate, self.config.round_deadline_s);
        }
    }

    /// Finishes a round: advances the simulated clock by the slowest
    /// client's elapsed time (clients transfer in parallel), capped by the
    /// round deadline.
    pub fn end_round(&mut self) {
        let slowest = self.links.iter().map(Link::round_elapsed_s).fold(0.0f64, f64::max);
        let deadline = self.config.round_deadline_s;
        let elapsed = if deadline.is_finite() { slowest.min(deadline) } else { slowest };
        self.sim_clock_s += elapsed;
        self.rounds_completed = self.rounds_completed.saturating_add(1);
        if let Some(obs) = &self.obs {
            obs.clock().advance_secs(elapsed);
        }
        self.export_obs();
    }

    /// Current 1-based round (0 before the first [`Fabric::begin_round`]).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether `client` vanished this round (known to the simulator, not
    /// to the server — the server only sees the missing upload). Callers
    /// can use it to skip simulating work a dead client would never finish.
    pub fn client_dropped(&self, client: usize) -> bool {
        !self.links[client].is_usable()
    }

    /// Coarse health of `client`'s link right now.
    pub fn link_state(&self, client: usize) -> LinkState {
        self.links[client].state()
    }

    /// Per-link counters.
    pub fn link_metrics(&self, client: usize) -> &TransportMetrics {
        self.links[client].metrics()
    }

    /// Client→server transfer of `bytes`.
    pub fn send_up(&mut self, client: usize, bytes: u64) -> Result<SendReceipt, NetError> {
        let retry = self.config.retry;
        self.links[client].send(bytes, Direction::Up, &retry)
    }

    /// Server→client transfer of `bytes`.
    pub fn send_down(&mut self, client: usize, bytes: u64) -> Result<SendReceipt, NetError> {
        let retry = self.config.retry;
        self.links[client].send(bytes, Direction::Down, &retry)
    }

    /// Minimum deliveries a round needs given `selected` participants.
    pub fn quorum_min(&self, selected: usize) -> usize {
        if self.config.quorum_fraction <= 0.0 || selected == 0 {
            return 0;
        }
        (((selected as f64) * self.config.quorum_fraction).ceil() as usize).clamp(1, selected)
    }

    /// Aggregate counters across every link plus fabric-level rounds and
    /// the simulated clock.
    pub fn metrics(&self) -> TransportMetrics {
        let mut total = TransportMetrics::new();
        for link in &self.links {
            total.merge(link.metrics());
        }
        total.rounds = self.rounds_completed;
        total.sim_clock_s = self.sim_clock_s;
        total
    }

    /// Draws a `u64` from the fabric RNG (for callers that need auxiliary
    /// seeded randomness tied to the fabric's reproducibility domain).
    pub fn gen_seed(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PartitionWindow;
    use mdl_mobile::NetworkProfile;

    #[test]
    fn ideal_fabric_counts_exact_bytes() {
        let mut fabric = Fabric::ideal(3);
        fabric.begin_round();
        for c in 0..3 {
            fabric.send_down(c, 100).expect("ideal download");
        }
        for c in 0..2 {
            fabric.send_up(c, 50).expect("ideal upload");
        }
        fabric.end_round();
        let m = fabric.metrics();
        assert_eq!(m.bytes_down, 300);
        assert_eq!(m.bytes_up, 100);
        assert_eq!(m.messages_down, 3);
        assert_eq!(m.messages_up, 2);
        assert_eq!(m.retries, 0);
        assert_eq!(m.timeouts, 0);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.ledger().total_bytes(), 400);
        assert!(m.sim_clock_s > 0.0, "even an ideal network takes time");
    }

    #[test]
    fn seeded_faulty_fabrics_are_bit_identical() {
        let cfg = FabricConfig::faulty(LinkConfig {
            loss_prob: 0.1,
            jitter_frac: 0.2,
            ..LinkConfig::clean(NetworkProfile::lte())
        });
        let run = |seed: u64| {
            let mut fabric = Fabric::new(8, cfg.clone(), seed);
            let mut outcomes = Vec::new();
            for _ in 0..5 {
                fabric.begin_round();
                for c in 0..8 {
                    outcomes.push(fabric.send_down(c, 4096).is_ok());
                    outcomes.push(fabric.send_up(c, 4096).is_ok());
                }
                fabric.end_round();
            }
            (outcomes, fabric.metrics())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn partition_makes_clients_unreachable_for_its_window() {
        let mut cfg = FabricConfig::ideal();
        cfg.faults.partitions =
            vec![PartitionWindow { from_round: 1, until_round: 2, clients: vec![0] }];
        let mut fabric = Fabric::new(2, cfg, 0);
        fabric.begin_round();
        assert_eq!(fabric.send_down(0, 10), Err(NetError::Unreachable));
        assert!(fabric.send_down(1, 10).is_ok());
        assert!(fabric.client_dropped(0));
        fabric.end_round();
        fabric.begin_round();
        assert!(fabric.send_down(0, 10).is_ok(), "partition healed in round 2");
    }

    #[test]
    fn quorum_min_rounds_up() {
        let mut cfg = FabricConfig::ideal();
        cfg.quorum_fraction = 0.5;
        let fabric = Fabric::new(4, cfg, 0);
        assert_eq!(fabric.quorum_min(0), 0);
        assert_eq!(fabric.quorum_min(1), 1);
        assert_eq!(fabric.quorum_min(5), 3);
        assert_eq!(Fabric::ideal(4).quorum_min(5), 0, "ideal fabric has no quorum");
    }

    #[test]
    fn attached_obs_mirrors_metrics_and_advances_sim_clock() {
        let cfg = FabricConfig::faulty(LinkConfig {
            loss_prob: 0.15,
            ..LinkConfig::clean(NetworkProfile::lte())
        });
        let obs = Obs::sim();
        let mut fabric = Fabric::new(4, cfg, 0xFA6);
        fabric.attach_obs(obs.clone());
        for _ in 0..3 {
            fabric.begin_round();
            for c in 0..4 {
                let _ = fabric.send_down(c, 2048);
                let _ = fabric.send_up(c, 2048);
            }
            fabric.end_round();
        }
        let m = fabric.metrics();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("net.bytes_up"), Some(m.bytes_up));
        assert_eq!(snap.counter("net.bytes_down"), Some(m.bytes_down));
        assert_eq!(snap.counter("net.retries"), Some(m.retries));
        assert_eq!(snap.counter("net.rounds"), Some(3));
        assert_eq!(snap.gauge("net.sim_clock_s"), Some(m.sim_clock_s));
        // ledger derives from the same metrics, so all three paths agree
        let ledger = m.ledger();
        assert_eq!(snap.counter("net.bytes_up"), Some(ledger.bytes_up));
        assert_eq!(snap.counter("net.bytes_down"), Some(ledger.bytes_down));
        // the obs clock advanced by the summed per-round durations
        let expected_ns = (m.sim_clock_s * 1e9).round() as i128;
        let drift = (snap.now_ns as i128 - expected_ns).abs();
        assert!(drift <= 3, "clock drifted {drift} ns (per-round rounding only)");
    }

    #[test]
    fn deadline_bounds_the_simulated_clock() {
        let mut cfg = FabricConfig::ideal();
        cfg.round_deadline_s = 0.001;
        let mut fabric = Fabric::new(1, cfg, 0);
        fabric.begin_round();
        // wifi moves ~6 KB in 1 ms; 60 MB cannot land before the deadline
        assert_eq!(fabric.send_up(0, 60_000_000), Err(NetError::DeadlineExceeded));
        fabric.end_round();
        let m = fabric.metrics();
        assert!((m.sim_clock_s - 0.001).abs() < 1e-12);
        assert_eq!(m.timeouts, 1);
    }
}
