//! Fault injection: the ways a mobile cohort actually fails — devices
//! dropping out mid-round, stragglers, transient partitions, and bursts of
//! radio loss. All draws come from a seeded RNG owned by the fabric, so a
//! faulty run is exactly as reproducible as a fault-free one.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A transient partition: the listed clients are unreachable for every
/// round in `[from_round, until_round)` (1-based rounds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First affected round (1-based, inclusive).
    pub from_round: usize,
    /// First round after the partition heals (exclusive).
    pub until_round: usize,
    /// Clients cut off; empty means *every* client.
    pub clients: Vec<usize>,
}

impl PartitionWindow {
    /// Whether `client` is cut off during `round`.
    pub fn covers(&self, round: usize, client: usize) -> bool {
        round >= self.from_round
            && round < self.until_round
            && (self.clients.is_empty() || self.clients.contains(&client))
    }
}

/// Per-round fault probabilities for a cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a client vanishes mid-round (never uploads; its
    /// in-flight traffic is abandoned).
    pub dropout_prob: f64,
    /// Probability a client is a straggler this round.
    pub straggler_prob: f64,
    /// Transfer-time multiplier applied to stragglers (≥ 1).
    pub straggler_slowdown: f64,
    /// Probability a client's radio goes flaky this round.
    pub flaky_prob: f64,
    /// Extra packet-loss probability while flaky (added to the link's
    /// base loss, clamped to `[0, 1]`).
    pub flaky_loss: f64,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// No faults at all — the idealised network every simulation assumed
    /// before `mdl-net` existed.
    pub fn none() -> Self {
        Self {
            dropout_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            flaky_prob: 0.0,
            flaky_loss: 0.0,
            partitions: Vec::new(),
        }
    }

    /// The acceptance scenario of the paper's deployment story: 20% of
    /// clients drop each round and a quarter straggle at half speed, with
    /// occasional flaky-radio bursts.
    pub fn lossy_cohort() -> Self {
        Self {
            dropout_prob: 0.2,
            straggler_prob: 0.25,
            straggler_slowdown: 2.0,
            flaky_prob: 0.15,
            flaky_loss: 0.3,
            partitions: Vec::new(),
        }
    }

    /// `true` when the plan can never perturb anything.
    pub fn is_quiet(&self) -> bool {
        self.dropout_prob <= 0.0
            && (self.straggler_prob <= 0.0 || self.straggler_slowdown <= 1.0)
            && (self.flaky_prob <= 0.0 || self.flaky_loss <= 0.0)
            && self.partitions.is_empty()
    }

    /// The fate of one client in one round, keyed by its **stable client
    /// id** rather than a dense cohort index.
    ///
    /// [`FaultPlan::draw_round`] walks one RNG stream across the cohort,
    /// so which physical client a fault lands on depends on the cohort's
    /// size and ordering — fine for a fixed client list, broken for
    /// population-scale simulation where each round samples a different
    /// cohort from 100k+ clients. Here every draw comes from a stateless
    /// hash of `(seed, round, client_id)`: the same seed faults the same
    /// clients no matter how many of their peers were sampled alongside
    /// them, and fates can be computed lazily for just the sampled cohort.
    pub fn fate_keyed(&self, seed: u64, round: usize, client_id: u64) -> RoundFate {
        let mut stream = crate::stream_u64(seed ^ 0xFA17_0000_0000_0000, round as u64, client_id);
        let mut draw = || {
            let x = stream();
            // 53 uniform bits, same convention as rand's f64 sampling
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let dropped = self.dropout_prob > 0.0 && draw() < self.dropout_prob;
        let straggles = self.straggler_prob > 0.0
            && self.straggler_slowdown > 1.0
            && draw() < self.straggler_prob;
        let flaky = self.flaky_prob > 0.0 && self.flaky_loss > 0.0 && draw() < self.flaky_prob;
        RoundFate {
            dropped,
            slowdown: if straggles { self.straggler_slowdown } else { 1.0 },
            loss_boost: if flaky { self.flaky_loss } else { 0.0 },
            partitioned: self.partitions.iter().any(|p| p.covers(round, client_id as usize)),
        }
    }

    /// Draws one round's fate for every client, in client order, from the
    /// fabric RNG. Drawing for the full cohort (not just the selected
    /// subset) keeps the RNG stream aligned no matter how the caller
    /// samples clients. Prefer [`FaultPlan::fate_keyed`] when clients have
    /// stable ids and cohorts are sampled from a larger population.
    pub fn draw_round(&self, round: usize, clients: usize, rng: &mut StdRng) -> Vec<RoundFate> {
        (0..clients)
            .map(|c| {
                let dropped = self.dropout_prob > 0.0 && rng.gen::<f64>() < self.dropout_prob;
                let straggles = self.straggler_prob > 0.0
                    && self.straggler_slowdown > 1.0
                    && rng.gen::<f64>() < self.straggler_prob;
                let flaky = self.flaky_prob > 0.0
                    && self.flaky_loss > 0.0
                    && rng.gen::<f64>() < self.flaky_prob;
                RoundFate {
                    dropped,
                    slowdown: if straggles { self.straggler_slowdown } else { 1.0 },
                    loss_boost: if flaky { self.flaky_loss } else { 0.0 },
                    partitioned: self.partitions.iter().any(|p| p.covers(round, c)),
                }
            })
            .collect()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// What the fault plan decided for one client in one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundFate {
    /// The client vanishes before uploading.
    pub dropped: bool,
    /// Transfer-time multiplier (1.0 = healthy).
    pub slowdown: f64,
    /// Extra loss probability this round.
    pub loss_boost: f64,
    /// The client sits behind an active partition window.
    pub partitioned: bool,
}

impl RoundFate {
    /// A healthy, reachable client.
    pub fn healthy() -> Self {
        Self { dropped: false, slowdown: 1.0, loss_boost: 0.0, partitioned: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quiet_plan_draws_healthy_fates() {
        let mut rng = StdRng::seed_from_u64(1);
        let fates = FaultPlan::none().draw_round(1, 8, &mut rng);
        assert_eq!(fates.len(), 8);
        assert!(fates.iter().all(|f| *f == RoundFate::healthy()));
        assert!(FaultPlan::none().is_quiet());
        assert!(!FaultPlan::lossy_cohort().is_quiet());
    }

    #[test]
    fn draws_are_seed_deterministic() {
        let plan = FaultPlan::lossy_cohort();
        let a: Vec<_> =
            (1..=5).map(|r| plan.draw_round(r, 20, &mut StdRng::seed_from_u64(9))).collect();
        let b: Vec<_> =
            (1..=5).map(|r| plan.draw_round(r, 20, &mut StdRng::seed_from_u64(9))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn dropout_rate_tracks_probability() {
        let plan = FaultPlan { dropout_prob: 0.2, ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(3);
        let mut dropped = 0usize;
        let trials = 50;
        for r in 1..=trials {
            dropped += plan.draw_round(r, 100, &mut rng).iter().filter(|f| f.dropped).count();
        }
        let rate = dropped as f64 / (100.0 * trials as f64);
        assert!((rate - 0.2).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn keyed_fates_are_stable_across_cohort_and_population_size() {
        let plan = FaultPlan::lossy_cohort();
        // the fate of client 12345 in round 7 is a pure function of
        // (seed, round, id) — no cohort, no population, no shared RNG
        let alone = plan.fate_keyed(99, 7, 12_345);
        let with_peers: Vec<RoundFate> =
            (0..10_000).map(|id| plan.fate_keyed(99, 7, id * 3 + 12)).collect();
        assert_eq!(alone, plan.fate_keyed(99, 7, 12_345));
        let _ = with_peers;
        // rates track the configured probabilities over many ids
        let n = 20_000u64;
        let dropped = (0..n).filter(|&id| plan.fate_keyed(5, 3, id).dropped).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - plan.dropout_prob).abs() < 0.02, "dropout rate {rate}");
        // different seeds / rounds / ids decorrelate
        assert_ne!(
            (0..64).map(|id| plan.fate_keyed(1, 1, id).dropped).collect::<Vec<_>>(),
            (0..64).map(|id| plan.fate_keyed(2, 1, id).dropped).collect::<Vec<_>>()
        );
        assert_ne!(
            (0..64).map(|id| plan.fate_keyed(1, 1, id).dropped).collect::<Vec<_>>(),
            (0..64).map(|id| plan.fate_keyed(1, 2, id).dropped).collect::<Vec<_>>()
        );
    }

    #[test]
    fn keyed_fates_respect_quiet_plans_and_partitions() {
        let quiet = FaultPlan::none();
        for id in [0u64, 7, 1 << 40] {
            assert_eq!(quiet.fate_keyed(3, 1, id), RoundFate::healthy());
        }
        let plan = FaultPlan {
            partitions: vec![PartitionWindow { from_round: 2, until_round: 4, clients: vec![9] }],
            ..FaultPlan::none()
        };
        assert!(plan.fate_keyed(0, 2, 9).partitioned);
        assert!(!plan.fate_keyed(0, 4, 9).partitioned);
        assert!(!plan.fate_keyed(0, 2, 8).partitioned);
    }

    #[test]
    fn partition_window_covers_listed_clients_in_range() {
        let w = PartitionWindow { from_round: 2, until_round: 4, clients: vec![1, 3] };
        assert!(w.covers(2, 1) && w.covers(3, 3));
        assert!(!w.covers(1, 1), "before the window");
        assert!(!w.covers(4, 1), "after the window");
        assert!(!w.covers(2, 0), "unlisted client");
        let all = PartitionWindow { from_round: 1, until_round: 100, clients: vec![] };
        assert!(all.covers(50, 7), "empty list means everyone");
        let plan = FaultPlan { partitions: vec![all], ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(plan.draw_round(10, 4, &mut rng).iter().all(|f| f.partitioned));
    }
}
