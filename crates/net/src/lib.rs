//! # mdl-net
//!
//! A deterministic, seedable simulated transport fabric — the unreliable
//! mobile network the paper's training (§II) and inference (§III) systems
//! actually live on. Before this crate the simulations assumed a perfect
//! network: `CommLedger` merely *counted* bytes after the fact, and no
//! client was ever lost, delayed or straggling. `mdl-net` makes every byte
//! flow through a per-client [`Link`] with bandwidth, latency, jitter and
//! packet loss, injects faults from a seeded [`FaultPlan`] (dropout,
//! stragglers, partitions, flaky-radio bursts), walks a [`RetryPolicy`]
//! with per-round deadlines, and reports it all as [`TransportMetrics`] —
//! from which the familiar [`CommLedger`] is now derived.
//!
//! Determinism is the design center: all fault and jitter draws come from
//! RNG streams owned by the [`Fabric`], separate from the caller's
//! training RNG, so (a) two runs with the same seeds are bit-identical,
//! and (b) a fault-free fabric perturbs nothing — simulations behave
//! exactly as they did before the fabric existed.
//!
//! # Examples
//!
//! ```
//! use mdl_net::{Fabric, FabricConfig, FaultPlan, LinkConfig};
//! use mdl_mobile::NetworkProfile;
//!
//! let config = FabricConfig {
//!     faults: FaultPlan { dropout_prob: 0.5, ..FaultPlan::none() },
//!     link: LinkConfig::clean(NetworkProfile::lte()),
//!     ..FabricConfig::faulty(LinkConfig::ideal())
//! };
//! let mut fabric = Fabric::new(8, config, 42);
//! fabric.begin_round();
//! let delivered = (0..8).filter(|&c| fabric.send_up(c, 1024).is_ok()).count();
//! fabric.end_round();
//! assert!(delivered < 8, "half the cohort drops out per round");
//! assert!(fabric.metrics().sim_clock_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod fabric;
pub mod fault;
pub mod link;
pub mod metrics;
pub mod retry;

pub use error::NetError;

/// SplitMix64 finalizer: a fast, high-quality 64-bit mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, stateless stream of `u64`s keyed by `(a, b, c)`.
///
/// Successive calls walk a SplitMix64 sequence whose starting point is a
/// mix of the three keys, so draws for different keys never alias and the
/// stream for a given key is identical on every run and platform. This is
/// the primitive behind stable-id fault injection
/// ([`FaultPlan::fate_keyed`]) and population-scale cohort sampling: no
/// shared RNG to keep aligned, no state to store per client.
pub fn stream_u64(a: u64, b: u64, c: u64) -> impl FnMut() -> u64 {
    let mut state = splitmix64(splitmix64(splitmix64(a) ^ b) ^ c);
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(state)
    }
}
pub use fabric::{Fabric, FabricConfig};
pub use fault::{FaultPlan, PartitionWindow, RoundFate};
pub use link::{Direction, Link, LinkConfig, LinkState, SendReceipt};
pub use metrics::{CommLedger, TransportMetrics};
pub use retry::RetryPolicy;

#[cfg(test)]
mod proptests {
    use crate::{Direction, Link, LinkConfig, RetryPolicy};
    use mdl_mobile::NetworkProfile;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Whatever the loss/jitter/seed, a send either delivers (bytes land
        // exactly once) or fails with a typed error (no delivered bytes) —
        // and the metrics always reconcile.
        #[test]
        fn sends_reconcile_with_metrics(
            seed in 0u64..500,
            loss_pct in 0u32..=100,
            jitter_pct in 0u32..=50,
            bytes in 1u64..1_000_000,
        ) {
            let cfg = LinkConfig {
                profile: NetworkProfile::lte(),
                loss_prob: loss_pct as f64 / 100.0,
                jitter_frac: jitter_pct as f64 / 100.0,
            };
            let mut link = Link::new(cfg, seed);
            let policy = RetryPolicy { timeout_s: 2.0, max_attempts: 3, ..Default::default() };
            let result = link.send(bytes, Direction::Up, &policy);
            let m = link.metrics();
            prop_assert!(m.attempts >= 1 && m.attempts <= 3);
            prop_assert_eq!(m.retries, m.attempts - 1);
            match result {
                Ok(receipt) => {
                    prop_assert_eq!(m.bytes_up, bytes);
                    prop_assert_eq!(m.messages_up, 1);
                    prop_assert_eq!(u64::from(receipt.attempts), m.attempts);
                    prop_assert!(receipt.elapsed_s.is_finite() && receipt.elapsed_s > 0.0);
                    prop_assert_eq!(m.wasted_bytes, m.timeouts * bytes);
                }
                Err(_) => {
                    prop_assert_eq!(m.bytes_up, 0);
                    prop_assert_eq!(m.messages_up, 0);
                    prop_assert!(m.timeouts + m.drops > 0);
                }
            }
        }

        // The derived ledger never disagrees with the metrics it came from.
        #[test]
        fn ledger_is_a_projection(
            up in 0u64..u64::MAX / 2,
            down in 0u64..u64::MAX / 2,
            wasted in 0u64..u64::MAX / 2,
        ) {
            let m = crate::TransportMetrics {
                bytes_up: up, bytes_down: down, wasted_bytes: wasted, ..Default::default()
            };
            let ledger = m.ledger();
            prop_assert_eq!(ledger.bytes_up, up);
            prop_assert_eq!(ledger.bytes_down, down);
            prop_assert_eq!(ledger.total_bytes(), up.saturating_add(down));
        }
    }
}
