//! Per-client link model: an `mdl-mobile` [`NetworkProfile`] plus packet
//! loss and jitter, simulated deterministically from a seeded RNG.
//!
//! A [`Link`] simulates *time*, not threads: every send computes how long
//! the transfer would have taken (bandwidth + latency + jitter + any
//! straggler slowdown), draws packet loss, and walks the retry policy —
//! accumulating [`TransportMetrics`] along the way. The caller decides
//! what to do with the elapsed simulated seconds.

use crate::error::NetError;
use crate::fault::RoundFate;
use crate::metrics::TransportMetrics;
use crate::retry::RetryPolicy;
use mdl_mobile::NetworkProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Static parameters of one link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Bandwidth / latency / energy profile (from `mdl-mobile`).
    pub profile: NetworkProfile,
    /// Base per-attempt packet-loss probability.
    pub loss_prob: f64,
    /// Uniform jitter as a fraction of the base transfer time
    /// (`0.2` = up to +20%).
    pub jitter_frac: f64,
}

impl LinkConfig {
    /// A loss-free, jitter-free link over `profile`.
    pub fn clean(profile: NetworkProfile) -> Self {
        Self { profile, loss_prob: 0.0, jitter_frac: 0.0 }
    }

    /// The ideal link the pre-`mdl-net` simulations implicitly assumed:
    /// Wi-Fi, no loss, no jitter.
    pub fn ideal() -> Self {
        Self::clean(NetworkProfile::wifi())
    }
}

/// Transfer direction over a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    Up,
    /// Server → client.
    Down,
}

/// Coarse health of a link, for consumers (like the serving router) that
/// only need to know "how broken", not "why".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkState {
    /// Healthy.
    Up,
    /// Reachable but slow and/or lossy.
    Degraded {
        /// Effective slowdown in percent (50 = transfers take 1.5×).
        slowdown_pct: u16,
    },
    /// Unreachable: offline profile, partition, or dropped peer.
    Down,
}

/// Proof of one delivered message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendReceipt {
    /// Attempts it took (1 = first try).
    pub attempts: u32,
    /// Simulated seconds from first attempt to delivery, including
    /// timeouts and backoff.
    pub elapsed_s: f64,
    /// Payload size.
    pub bytes: u64,
}

/// One simulated client↔server link.
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    rng: StdRng,
    metrics: TransportMetrics,
    fate: RoundFate,
    deadline_s: f64,
    round_elapsed_s: f64,
}

impl Link {
    /// A link with its own RNG stream seeded from `seed`.
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            metrics: TransportMetrics::new(),
            fate: RoundFate::healthy(),
            deadline_s: f64::INFINITY,
            round_elapsed_s: 0.0,
        }
    }

    /// Installs this round's fate and deadline and resets the round clock.
    pub fn begin_round(&mut self, fate: RoundFate, deadline_s: f64) {
        self.fate = fate;
        self.deadline_s = deadline_s;
        self.round_elapsed_s = 0.0;
    }

    /// Simulated seconds this link has spent in the current round.
    pub fn round_elapsed_s(&self) -> f64 {
        self.round_elapsed_s
    }

    /// Charges non-transfer simulated time (local compute between the
    /// download and the upload) against this round's clock, so a slow
    /// device eats into the same deadline budget its transfers do.
    /// Returns `false` — and pins the clock at the deadline — when the
    /// charge blows the remaining budget.
    pub fn charge_time(&mut self, secs: f64) -> bool {
        self.round_elapsed_s += secs.max(0.0);
        if self.round_elapsed_s >= self.deadline_s {
            self.round_elapsed_s = self.deadline_s;
            return false;
        }
        true
    }

    /// Whether the link can currently move data.
    pub fn is_usable(&self) -> bool {
        self.cfg.profile.is_connected() && !self.fate.partitioned && !self.fate.dropped
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn metrics(&self) -> &TransportMetrics {
        &self.metrics
    }

    /// Coarse health, combining configuration and the current fate.
    /// Loss folds into the effective slowdown as the expected number of
    /// transmissions per delivered packet, `1 / (1 - p)`.
    pub fn state(&self) -> LinkState {
        if !self.is_usable() {
            return LinkState::Down;
        }
        let loss = (self.cfg.loss_prob + self.fate.loss_boost).clamp(0.0, 0.99);
        let effective = self.fate.slowdown / (1.0 - loss);
        let pct = ((effective - 1.0) * 100.0).round();
        if pct < 1.0 {
            LinkState::Up
        } else {
            LinkState::Degraded { slowdown_pct: pct.min(u16::MAX as f64) as u16 }
        }
    }

    /// Base transfer time (latency + serialization), jittered and slowed by
    /// the round fate. Draws jitter from the link RNG only when configured,
    /// so a clean link consumes no randomness.
    fn transfer_time(&mut self, bytes: u64, dir: Direction) -> f64 {
        let bw = match dir {
            Direction::Up => self.cfg.profile.up_bytes_per_sec,
            Direction::Down => self.cfg.profile.down_bytes_per_sec,
        };
        let mut t = 2.0 * self.cfg.profile.one_way_latency_s + bytes as f64 / bw;
        if self.cfg.jitter_frac > 0.0 {
            t *= 1.0 + self.cfg.jitter_frac * self.rng.gen::<f64>();
        }
        t * self.fate.slowdown
    }

    /// Simulates sending `bytes` in `dir` under `retry`, charging all
    /// simulated time against the round deadline.
    pub fn send(
        &mut self,
        bytes: u64,
        dir: Direction,
        retry: &RetryPolicy,
    ) -> Result<SendReceipt, NetError> {
        if !self.cfg.profile.is_connected() || self.fate.partitioned {
            self.metrics.drops = self.metrics.drops.saturating_add(1);
            return Err(NetError::Unreachable);
        }
        if self.fate.dropped {
            self.metrics.drops = self.metrics.drops.saturating_add(1);
            return Err(NetError::PeerDropped);
        }

        let loss = (self.cfg.loss_prob + self.fate.loss_boost).clamp(0.0, 1.0);
        let deadline_left = self.deadline_s - self.round_elapsed_s;
        let mut elapsed = 0.0f64;
        let max_attempts = retry.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                self.metrics.retries = self.metrics.retries.saturating_add(1);
                elapsed += retry.backoff_s(attempt - 1);
            }
            if elapsed >= deadline_left {
                self.round_elapsed_s = self.deadline_s;
                return Err(NetError::DeadlineExceeded);
            }
            self.metrics.attempts = self.metrics.attempts.saturating_add(1);
            let t = self.transfer_time(bytes, dir);
            let too_slow = t > retry.timeout_s;
            let lost = !too_slow && loss > 0.0 && self.rng.gen::<f64>() < loss;
            if too_slow || lost {
                // the sender waits out the whole timeout before concluding
                // the attempt is dead
                elapsed += if retry.timeout_s.is_finite() { retry.timeout_s } else { t };
                self.metrics.timeouts = self.metrics.timeouts.saturating_add(1);
                self.metrics.wasted_bytes = self.metrics.wasted_bytes.saturating_add(bytes);
                if elapsed >= deadline_left {
                    self.round_elapsed_s = self.deadline_s;
                    return Err(NetError::DeadlineExceeded);
                }
                continue;
            }
            if elapsed + t > deadline_left {
                self.metrics.timeouts = self.metrics.timeouts.saturating_add(1);
                self.metrics.wasted_bytes = self.metrics.wasted_bytes.saturating_add(bytes);
                self.round_elapsed_s = self.deadline_s;
                return Err(NetError::DeadlineExceeded);
            }
            elapsed += t;
            self.round_elapsed_s += elapsed;
            match dir {
                Direction::Up => {
                    self.metrics.bytes_up = self.metrics.bytes_up.saturating_add(bytes);
                    self.metrics.messages_up = self.metrics.messages_up.saturating_add(1);
                }
                Direction::Down => {
                    self.metrics.bytes_down = self.metrics.bytes_down.saturating_add(bytes);
                    self.metrics.messages_down = self.metrics.messages_down.saturating_add(1);
                }
            }
            return Ok(SendReceipt { attempts: attempt, elapsed_s: elapsed, bytes });
        }
        self.round_elapsed_s = (self.round_elapsed_s + elapsed).min(self.deadline_s);
        Err(NetError::RetriesExhausted { attempts: max_attempts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> Link {
        Link::new(LinkConfig::clean(NetworkProfile::wifi()), 1)
    }

    #[test]
    fn clean_send_matches_profile_arithmetic() {
        let mut link = lossless();
        let r = link.send(6_000_000, Direction::Up, &RetryPolicy::no_retry()).expect("delivered");
        // wifi: 6 MB/s up, 10 ms one-way → 1 s serialize + 20 ms latency
        assert_eq!(r.attempts, 1);
        assert!((r.elapsed_s - 1.02).abs() < 1e-9, "elapsed {}", r.elapsed_s);
        assert_eq!(link.metrics().messages_up, 1);
        assert_eq!(link.metrics().bytes_up, 6_000_000);
        assert_eq!(link.metrics().retries, 0);
        assert_eq!(link.metrics().wasted_bytes, 0);
    }

    #[test]
    fn offline_profile_is_unreachable_not_a_hang() {
        let mut link = Link::new(LinkConfig::clean(NetworkProfile::offline()), 2);
        let err = link.send(10, Direction::Up, &RetryPolicy::default()).unwrap_err();
        assert_eq!(err, NetError::Unreachable);
        assert_eq!(link.metrics().drops, 1);
        assert_eq!(link.state(), LinkState::Down);
    }

    #[test]
    fn dropped_peer_rejects_sends() {
        let mut link = lossless();
        link.begin_round(RoundFate { dropped: true, ..RoundFate::healthy() }, 10.0);
        assert_eq!(
            link.send(10, Direction::Down, &RetryPolicy::default()),
            Err(NetError::PeerDropped)
        );
        assert_eq!(link.state(), LinkState::Down);
    }

    #[test]
    fn total_loss_exhausts_retries() {
        let cfg = LinkConfig { loss_prob: 1.0, ..LinkConfig::clean(NetworkProfile::wifi()) };
        let mut link = Link::new(cfg, 3);
        let policy = RetryPolicy { max_attempts: 3, timeout_s: 0.5, ..Default::default() };
        let err = link.send(100, Direction::Up, &policy).unwrap_err();
        assert_eq!(err, NetError::RetriesExhausted { attempts: 3 });
        assert_eq!(link.metrics().attempts, 3);
        assert_eq!(link.metrics().retries, 2);
        assert_eq!(link.metrics().timeouts, 3);
        assert_eq!(link.metrics().wasted_bytes, 300);
        assert_eq!(link.metrics().messages_up, 0);
    }

    #[test]
    fn straggler_slower_than_timeout_always_times_out() {
        let mut link = lossless();
        // healthy transfer ≈ 0.03 s; a 100× straggler blows a 1 s timeout
        link.begin_round(RoundFate { slowdown: 100.0, ..RoundFate::healthy() }, f64::INFINITY);
        let policy = RetryPolicy { timeout_s: 1.0, max_attempts: 2, ..Default::default() };
        let err = link.send(60_000, Direction::Up, &policy).unwrap_err();
        assert_eq!(err, NetError::RetriesExhausted { attempts: 2 });
        assert_eq!(link.metrics().timeouts, 2);
    }

    #[test]
    fn deadline_cuts_off_slow_transfers() {
        let mut link = lossless();
        link.begin_round(RoundFate::healthy(), 0.5);
        // 6 MB at 6 MB/s ≈ 1 s > 0.5 s deadline
        let err = link.send(6_000_000, Direction::Up, &RetryPolicy::no_retry()).unwrap_err();
        assert_eq!(err, NetError::DeadlineExceeded);
        assert!((link.round_elapsed_s() - 0.5).abs() < 1e-12, "clock pinned at the deadline");
    }

    #[test]
    fn compute_time_charges_against_the_deadline() {
        let mut link = lossless();
        link.begin_round(RoundFate::healthy(), 1.0);
        assert!(link.charge_time(0.4), "within budget");
        assert!((link.round_elapsed_s() - 0.4).abs() < 1e-12);
        // the remaining 0.6 s is not enough for a ~1 s transfer
        let err = link.send(6_000_000, Direction::Up, &RetryPolicy::no_retry()).unwrap_err();
        assert_eq!(err, NetError::DeadlineExceeded);
        // blowing the budget pins the clock at the deadline
        let mut slow = lossless();
        slow.begin_round(RoundFate::healthy(), 1.0);
        assert!(!slow.charge_time(5.0));
        assert!((slow.round_elapsed_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seeded_links_are_bit_identical() {
        let cfg = LinkConfig {
            loss_prob: 0.3,
            jitter_frac: 0.25,
            ..LinkConfig::clean(NetworkProfile::lte())
        };
        let run = |seed: u64| {
            let mut link = Link::new(cfg.clone(), seed);
            let policy = RetryPolicy { timeout_s: 1.0, max_attempts: 5, ..Default::default() };
            let outcomes: Vec<_> =
                (0..32).map(|i| link.send(1000 + i, Direction::Up, &policy)).collect();
            (outcomes, *link.metrics())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds take different paths");
    }

    #[test]
    fn degraded_state_reflects_slowdown_and_loss() {
        let mut link = lossless();
        assert_eq!(link.state(), LinkState::Up);
        link.begin_round(RoundFate { slowdown: 2.0, ..RoundFate::healthy() }, 10.0);
        assert_eq!(link.state(), LinkState::Degraded { slowdown_pct: 100 });
        link.begin_round(RoundFate { loss_boost: 0.5, ..RoundFate::healthy() }, 10.0);
        assert_eq!(link.state(), LinkState::Degraded { slowdown_pct: 100 });
        link.begin_round(RoundFate { partitioned: true, ..RoundFate::healthy() }, 10.0);
        assert_eq!(link.state(), LinkState::Down);
    }
}
