//! Transport accounting: the low-level [`TransportMetrics`] every link and
//! fabric accumulates, and the byte-level [`CommLedger`] the federated
//! simulations report. The ledger is *derived* from the metrics
//! ([`TransportMetrics::ledger`]) so byte accounting has one source of
//! truth: delivered traffic lives in the ledger, while attempts, retries,
//! timeouts and wasted bytes only exist at the transport layer.

use serde::{Deserialize, Serialize};

/// Running totals of bytes and messages exchanged with the server.
///
/// All counters use saturating arithmetic: a long-running simulation can
/// never wrap a ledger, only pin it at `u64::MAX`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommLedger {
    /// Bytes uploaded from clients to the server.
    pub bytes_up: u64,
    /// Bytes downloaded from the server to clients.
    pub bytes_down: u64,
    /// Client→server messages.
    pub messages_up: u64,
    /// Server→client messages.
    pub messages_down: u64,
    /// Completed federation rounds.
    pub rounds: u64,
}

impl CommLedger {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one client upload of `bytes`.
    pub fn record_upload(&mut self, bytes: u64) {
        self.bytes_up = self.bytes_up.saturating_add(bytes);
        self.messages_up = self.messages_up.saturating_add(1);
    }

    /// Records one server→client download of `bytes`.
    pub fn record_download(&mut self, bytes: u64) {
        self.bytes_down = self.bytes_down.saturating_add(bytes);
        self.messages_down = self.messages_down.saturating_add(1);
    }

    /// Marks a round complete.
    pub fn finish_round(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up.saturating_add(self.bytes_down)
    }

    /// Folds another ledger into this one (combining per-client ledgers
    /// into a cohort total). `rounds` saturate like every other counter;
    /// callers merging per-client ledgers of the *same* run should keep
    /// the round count from one of them instead.
    pub fn merge(&mut self, other: &Self) {
        self.bytes_up = self.bytes_up.saturating_add(other.bytes_up);
        self.bytes_down = self.bytes_down.saturating_add(other.bytes_down);
        self.messages_up = self.messages_up.saturating_add(other.messages_up);
        self.messages_down = self.messages_down.saturating_add(other.messages_down);
        self.rounds = self.rounds.saturating_add(other.rounds);
    }
}

/// Per-link (or aggregate) transport counters: everything the fabric
/// observed, including traffic that never arrived.
///
/// Two runs with identical seeds produce bit-identical metrics — including
/// the simulated clock, which is computed from the same deterministic
/// draws — so this struct doubles as the reproducibility witness of a
/// faulty run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportMetrics {
    /// Send attempts (first tries and retries alike).
    pub attempts: u64,
    /// Re-sends after a failed attempt.
    pub retries: u64,
    /// Attempts that timed out (packet lost, or the transfer was slower
    /// than the retry timeout).
    pub timeouts: u64,
    /// Sends abandoned outright: unreachable link, partitioned window, or
    /// a peer that dropped out mid-round.
    pub drops: u64,
    /// Delivered client→server messages.
    pub messages_up: u64,
    /// Delivered server→client messages.
    pub messages_down: u64,
    /// Delivered client→server bytes.
    pub bytes_up: u64,
    /// Delivered server→client bytes.
    pub bytes_down: u64,
    /// Bytes put on the wire by attempts that never completed.
    pub wasted_bytes: u64,
    /// Completed rounds.
    pub rounds: u64,
    /// Simulated wall-clock seconds (per round: the slowest client, capped
    /// by the round deadline; clients transfer in parallel).
    pub sim_clock_s: f64,
}

impl TransportMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another metrics block into this one (saturating).
    pub fn merge(&mut self, other: &Self) {
        self.attempts = self.attempts.saturating_add(other.attempts);
        self.retries = self.retries.saturating_add(other.retries);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.drops = self.drops.saturating_add(other.drops);
        self.messages_up = self.messages_up.saturating_add(other.messages_up);
        self.messages_down = self.messages_down.saturating_add(other.messages_down);
        self.bytes_up = self.bytes_up.saturating_add(other.bytes_up);
        self.bytes_down = self.bytes_down.saturating_add(other.bytes_down);
        self.wasted_bytes = self.wasted_bytes.saturating_add(other.wasted_bytes);
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.sim_clock_s += other.sim_clock_s;
    }

    /// The byte-accounting view: delivered traffic only. Retries, timeouts
    /// and wasted bytes stay at the transport layer.
    pub fn ledger(&self) -> CommLedger {
        CommLedger {
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            messages_up: self.messages_up,
            messages_down: self.messages_down,
            rounds: self.rounds,
        }
    }

    /// Fraction of attempts that failed (0.0 on a quiet link).
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        (self.timeouts.saturating_add(self.drops)) as f64 / self.attempts as f64
    }
}

impl From<&TransportMetrics> for CommLedger {
    fn from(m: &TransportMetrics) -> Self {
        m.ledger()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut l = CommLedger::new();
        l.record_upload(100);
        l.record_upload(50);
        l.record_download(200);
        l.finish_round();
        assert_eq!(l.bytes_up, 150);
        assert_eq!(l.bytes_down, 200);
        assert_eq!(l.messages_up, 2);
        assert_eq!(l.messages_down, 1);
        assert_eq!(l.rounds, 1);
        assert_eq!(l.total_bytes(), 350);
    }

    #[test]
    fn ledger_saturates_instead_of_wrapping() {
        let mut l =
            CommLedger { bytes_up: u64::MAX - 10, messages_up: u64::MAX, ..Default::default() };
        l.record_upload(100);
        assert_eq!(l.bytes_up, u64::MAX);
        assert_eq!(l.messages_up, u64::MAX);
        assert_eq!(l.total_bytes(), u64::MAX);
    }

    #[test]
    fn ledger_merge_combines_per_client_totals() {
        let mut a = CommLedger::new();
        a.record_upload(10);
        a.record_download(20);
        let mut b = CommLedger::new();
        b.record_upload(5);
        b.finish_round();
        a.merge(&b);
        assert_eq!(a.bytes_up, 15);
        assert_eq!(a.bytes_down, 20);
        assert_eq!(a.messages_up, 2);
        assert_eq!(a.rounds, 1);
    }

    #[test]
    fn metrics_derive_ledger() {
        let m = TransportMetrics {
            attempts: 9,
            retries: 3,
            timeouts: 3,
            messages_up: 4,
            messages_down: 2,
            bytes_up: 400,
            bytes_down: 100,
            wasted_bytes: 120,
            rounds: 2,
            ..Default::default()
        };
        let l = m.ledger();
        assert_eq!(l, CommLedger::from(&m));
        assert_eq!(l.bytes_up, 400);
        assert_eq!(l.bytes_down, 100);
        assert_eq!(l.messages_up, 4);
        assert_eq!(l.messages_down, 2);
        assert_eq!(l.rounds, 2);
        // wasted traffic never reaches the ledger
        assert_eq!(l.total_bytes(), 500);
        assert!((m.failure_rate() - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_merge_saturates() {
        let mut a =
            TransportMetrics { attempts: u64::MAX - 1, sim_clock_s: 1.5, ..Default::default() };
        let b = TransportMetrics { attempts: 10, sim_clock_s: 0.5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.attempts, u64::MAX);
        assert!((a.sim_clock_s - 2.0).abs() < 1e-12);
    }
}
