//! Retry policy: timeout + capped exponential backoff + bounded attempts.

use serde::{Deserialize, Serialize};

/// How a sender reacts to a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Seconds the sender waits for an acknowledgement before declaring an
    /// attempt dead. A transfer slower than this *always* times out.
    pub timeout_s: f64,
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            timeout_s: 5.0,
            max_attempts: 4,
            base_backoff_s: 0.25,
            backoff_multiplier: 2.0,
            max_backoff_s: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out — the ideal-network
    /// default wired into [`crate::Fabric::ideal`].
    pub fn no_retry() -> Self {
        Self {
            timeout_s: f64::INFINITY,
            max_attempts: 1,
            base_backoff_s: 0.0,
            backoff_multiplier: 1.0,
            max_backoff_s: 0.0,
        }
    }

    /// Backoff slept before retry number `retry` (1-based), capped.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        if retry == 0 || self.base_backoff_s <= 0.0 {
            return 0.0;
        }
        let grown = self.base_backoff_s * self.backoff_multiplier.powi(retry as i32 - 1);
        grown.min(self.max_backoff_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            base_backoff_s: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_s: 3.0,
            ..Default::default()
        };
        assert_eq!(p.backoff_s(0), 0.0);
        assert!((p.backoff_s(1) - 0.5).abs() < 1e-12);
        assert!((p.backoff_s(2) - 1.0).abs() < 1e-12);
        assert!((p.backoff_s(3) - 2.0).abs() < 1e-12);
        assert!((p.backoff_s(4) - 3.0).abs() < 1e-12, "capped");
        assert!((p.backoff_s(10) - 3.0).abs() < 1e-12, "stays capped");
    }

    #[test]
    fn no_retry_is_inert() {
        let p = RetryPolicy::no_retry();
        assert_eq!(p.max_attempts, 1);
        assert!(p.timeout_s.is_infinite());
        assert_eq!(p.backoff_s(1), 0.0);
    }
}
