//! Element-wise activation functions and their derivatives.

use mdl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Element-wise nonlinearity applied after a layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = max(alpha * x, x)`.
    LeakyRelu(
        /// Negative-side slope.
        f32,
    ),
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(a) => {
                if x >= 0.0 {
                    x
                } else {
                    a * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *pre-activation* input `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(a) => {
                if x > 0.0 {
                    1.0
                } else {
                    a
                }
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }

    /// Applies the activation element-wise to a matrix.
    pub fn apply_matrix(self, m: &Matrix) -> Matrix {
        m.map(|v| self.apply(v))
    }

    /// Element-wise derivative matrix evaluated at pre-activation `m`.
    pub fn derivative_matrix(self, m: &Matrix) -> Matrix {
        m.map(|v| self.derivative(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn leaky_relu_slope() {
        let a = Activation::LeakyRelu(0.1);
        assert!((a.apply(-2.0) + 0.2).abs() < 1e-6);
        assert_eq!(a.derivative(-2.0), 0.1);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(20.0) > 0.999 && s.apply(-20.0) < 0.001);
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu(0.05),
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            for &x in &[-1.7f32, -0.3, 0.4, 2.1] {
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let an = act.derivative(x);
                assert!((fd - an).abs() < 1e-2, "{act:?} at {x}: fd={fd} an={an}");
            }
        }
    }
}
