//! 2-D convolutions, including the depthwise-separable factorisation that
//! powers MobileNets (paper §III-B, reference [29]).
//!
//! Images travel through the [`crate::Layer`] interface as flattened rows:
//! one example per row, channel-major `C × H × W` layout. A [`Conv2d`] with
//! `groups == in_channels` is a depthwise convolution; [`SeparableConv2d`]
//! composes it with a 1×1 pointwise convolution — the streamlined block
//! that cuts a standard convolution's `k²·C_in·C_out` multiplies down to
//! `k²·C_in + C_in·C_out` per output position.

use crate::activation::Activation;
use crate::layer::{Layer, LayerInfo, Mode};
use mdl_tensor::{Init, Matrix};
use rand::Rng;

/// Shape of a channel-major image batch row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageShape {
    /// Channels.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl ImageShape {
    /// Creates a shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width }
    }

    /// Flattened feature width.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// `true` when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.height + y) * self.width + x
    }
}

/// A grouped 2-D convolution with "same" zero padding and stride 1.
///
/// `groups == 1` is a standard convolution; `groups == in_channels`
/// (with `out_channels == in_channels`) is a depthwise convolution.
pub struct Conv2d {
    input_shape: ImageShape,
    out_channels: usize,
    kernel: usize,
    groups: usize,
    /// `out_channels` filters, each `1 × (k·k·in_per_group)`.
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    activation: Activation,
    cache: Option<(Matrix, Matrix)>, // (input, pre-activation)
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d")
            .field("input", &self.input_shape)
            .field("out_channels", &self.out_channels)
            .field("kernel", &self.kernel)
            .field("groups", &self.groups)
            .finish()
    }
}

impl Conv2d {
    /// Creates a grouped convolution.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts, or the
    /// kernel is even (same-padding needs an odd kernel).
    pub fn new(
        input_shape: ImageShape,
        out_channels: usize,
        kernel: usize,
        groups: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel % 2 == 1, "same-padding convolution needs an odd kernel");
        assert!(groups >= 1, "need at least one group");
        assert_eq!(input_shape.channels % groups, 0, "groups must divide input channels");
        assert_eq!(out_channels % groups, 0, "groups must divide output channels");
        let in_per_group = input_shape.channels / groups;
        let fan_in = kernel * kernel * in_per_group;
        let std = (2.0 / fan_in as f32).sqrt();
        Self {
            input_shape,
            out_channels,
            kernel,
            groups,
            weight: Init::Normal { std }.sample(out_channels, fan_in, rng),
            bias: Matrix::zeros(1, out_channels),
            grad_weight: Matrix::zeros(out_channels, fan_in),
            grad_bias: Matrix::zeros(1, out_channels),
            activation,
            cache: None,
        }
    }

    /// A standard (dense) convolution.
    pub fn standard(
        input_shape: ImageShape,
        out_channels: usize,
        kernel: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(input_shape, out_channels, kernel, 1, activation, rng)
    }

    /// A depthwise convolution (one filter per channel).
    pub fn depthwise(
        input_shape: ImageShape,
        kernel: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let c = input_shape.channels;
        Self::new(input_shape, c, kernel, c, activation, rng)
    }

    /// Output image shape (same spatial size; `out_channels` channels).
    pub fn output_shape(&self) -> ImageShape {
        ImageShape::new(self.out_channels, self.input_shape.height, self.input_shape.width)
    }

    fn in_per_group(&self) -> usize {
        self.input_shape.channels / self.groups
    }

    fn out_per_group(&self) -> usize {
        self.out_channels / self.groups
    }

    /// Pre-activation feature maps for a batch.
    fn convolve(&self, x: &Matrix) -> Matrix {
        let shape = self.input_shape;
        assert_eq!(x.cols(), shape.len(), "conv input width mismatch");
        let out_shape = self.output_shape();
        let k = self.kernel as i32;
        let half = k / 2;
        let mut pre = Matrix::zeros(x.rows(), out_shape.len());

        for n in 0..x.rows() {
            let row = x.row(n);
            for oc in 0..self.out_channels {
                let g = oc / self.out_per_group();
                let filter = self.weight.row(oc);
                for oy in 0..shape.height {
                    for ox in 0..shape.width {
                        let mut acc = self.bias[(0, oc)];
                        let mut w_idx = 0usize;
                        for icg in 0..self.in_per_group() {
                            let ic = g * self.in_per_group() + icg;
                            for ky in -half..=half {
                                let y = oy as i32 + ky;
                                for kx in -half..=half {
                                    let xx = ox as i32 + kx;
                                    if y >= 0
                                        && (y as usize) < shape.height
                                        && xx >= 0
                                        && (xx as usize) < shape.width
                                    {
                                        acc += filter[w_idx]
                                            * row[shape.idx(ic, y as usize, xx as usize)];
                                    }
                                    w_idx += 1;
                                }
                            }
                        }
                        pre[(n, out_shape.idx(oc, oy, ox))] = acc;
                    }
                }
            }
        }
        pre
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Matrix, _mode: Mode) -> Matrix {
        let pre = self.convolve(x);
        let out = self.activation.apply_matrix(&pre);
        self.cache = Some((x.clone(), pre));
        out
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        self.activation.apply_matrix(&self.convolve(x))
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (input, pre) = self.cache.as_ref().expect("backward called before forward").clone();
        let shape = self.input_shape;
        let out_shape = self.output_shape();
        let k = self.kernel as i32;
        let half = k / 2;
        let dpre = grad_out.hadamard(&self.activation.derivative_matrix(&pre));
        let mut dx = Matrix::zeros(input.rows(), input.cols());

        for n in 0..input.rows() {
            let row = input.row(n);
            for oc in 0..self.out_channels {
                let g = oc / self.out_per_group();
                for oy in 0..shape.height {
                    for ox in 0..shape.width {
                        let d = dpre[(n, out_shape.idx(oc, oy, ox))];
                        if d == 0.0 {
                            continue;
                        }
                        self.grad_bias[(0, oc)] += d;
                        let mut w_idx = 0usize;
                        for icg in 0..self.in_per_group() {
                            let ic = g * self.in_per_group() + icg;
                            for ky in -half..=half {
                                let y = oy as i32 + ky;
                                for kx in -half..=half {
                                    let xx = ox as i32 + kx;
                                    if y >= 0
                                        && (y as usize) < shape.height
                                        && xx >= 0
                                        && (xx as usize) < shape.width
                                    {
                                        let in_idx = shape.idx(ic, y as usize, xx as usize);
                                        self.grad_weight[(oc, w_idx)] += d * row[in_idx];
                                        dx[(n, in_idx)] += d * self.weight[(oc, w_idx)];
                                    }
                                    w_idx += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn info(&self) -> LayerInfo {
        let fan_in = self.kernel * self.kernel * self.in_per_group();
        let positions = self.input_shape.height * self.input_shape.width;
        LayerInfo {
            kind: "conv2d",
            in_dim: self.input_shape.len(),
            out_dim: self.output_shape().len(),
            params: self.weight.len() + self.bias.len(),
            macs: (self.out_channels * positions * fan_in) as u64,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A depthwise-separable convolution: depthwise `k×k` followed by a 1×1
/// pointwise convolution — the MobileNets building block.
#[derive(Debug)]
pub struct SeparableConv2d {
    depthwise: Conv2d,
    pointwise: Conv2d,
}

impl SeparableConv2d {
    /// Creates the block. The nonlinearity sits after each stage, as in
    /// the MobileNets design.
    pub fn new(
        input_shape: ImageShape,
        out_channels: usize,
        kernel: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let depthwise = Conv2d::depthwise(input_shape, kernel, activation, rng);
        let mid_shape = depthwise.output_shape();
        let pointwise = Conv2d::standard(mid_shape, out_channels, 1, activation, rng);
        Self { depthwise, pointwise }
    }

    /// Output image shape.
    pub fn output_shape(&self) -> ImageShape {
        self.pointwise.output_shape()
    }
}

impl Layer for SeparableConv2d {
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let mid = self.depthwise.forward(x, mode);
        self.pointwise.forward(&mid, mode)
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        self.pointwise.forward_eval(&self.depthwise.forward_eval(x))
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let d_mid = self.pointwise.backward(grad_out);
        self.depthwise.backward(&d_mid)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.depthwise.visit_params(f);
        self.pointwise.visit_params(f);
    }

    fn info(&self) -> LayerInfo {
        let d = self.depthwise.info();
        let p = self.pointwise.info();
        LayerInfo {
            kind: "separable-conv2d",
            in_dim: d.in_dim,
            out_dim: p.out_dim,
            params: d.params + p.params,
            macs: d.macs + p.macs,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// 2×2 average pooling (stride 2), shrinking each spatial dimension by half.
#[derive(Debug)]
pub struct AvgPool2d {
    input_shape: ImageShape,
}

impl AvgPool2d {
    /// Creates the pool.
    ///
    /// # Panics
    ///
    /// Panics if either spatial dimension is odd.
    pub fn new(input_shape: ImageShape) -> Self {
        assert!(
            input_shape.height.is_multiple_of(2) && input_shape.width.is_multiple_of(2),
            "2×2 pooling needs even spatial dimensions"
        );
        Self { input_shape }
    }

    /// Output image shape.
    pub fn output_shape(&self) -> ImageShape {
        ImageShape::new(
            self.input_shape.channels,
            self.input_shape.height / 2,
            self.input_shape.width / 2,
        )
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Matrix, _mode: Mode) -> Matrix {
        self.forward_eval(x)
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let shape = self.input_shape;
        assert_eq!(x.cols(), shape.len(), "pool input width mismatch");
        let out_shape = self.output_shape();
        let mut out = Matrix::zeros(x.rows(), out_shape.len());
        for n in 0..x.rows() {
            let row = x.row(n);
            for c in 0..shape.channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let mut acc = 0.0f32;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                acc += row[shape.idx(c, 2 * oy + dy, 2 * ox + dx)];
                            }
                        }
                        out[(n, out_shape.idx(c, oy, ox))] = acc / 4.0;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let shape = self.input_shape;
        let out_shape = self.output_shape();
        let mut dx = Matrix::zeros(grad_out.rows(), shape.len());
        for n in 0..grad_out.rows() {
            for c in 0..shape.channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let d = grad_out[(n, out_shape.idx(c, oy, ox))] / 4.0;
                        for dy in 0..2 {
                            for dxx in 0..2 {
                                dx[(n, shape.idx(c, 2 * oy + dy, 2 * ox + dxx))] += d;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn info(&self) -> LayerInfo {
        LayerInfo {
            kind: "avgpool2d",
            in_dim: self.input_shape.len(),
            out_dim: self.output_shape().len(),
            params: 0,
            macs: self.input_shape.len() as u64,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grad_check(layer: &mut dyn Layer, x: &Matrix, picks: usize, tol: f32) {
        let base = layer.param_vector();
        layer.zero_grad();
        let _ = layer.forward(x, Mode::Train);
        let out = layer.forward(x, Mode::Train);
        layer.zero_grad();
        let dx = layer.backward(&Matrix::ones(out.rows(), out.cols()));
        let analytic = layer.grad_vector();

        let eps = 1e-3f32;
        let n = base.len();
        for i in 0..picks.min(n) {
            let k = i * n / picks.min(n).max(1);
            let mut plus = base.clone();
            plus[k] += eps;
            layer.set_param_vector(&plus);
            let lp = layer.forward(x, Mode::Eval).sum();
            let mut minus = base.clone();
            minus[k] -= eps;
            layer.set_param_vector(&minus);
            let lm = layer.forward(x, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < tol, "param {k}: fd={fd} vs {}", analytic[k]);
        }
        layer.set_param_vector(&base);
        // input gradient spot checks
        for k in [0usize, x.cols() / 2, x.cols() - 1] {
            let mut xp = x.clone();
            xp[(0, k)] += eps;
            let lp = layer.forward(&xp, Mode::Eval).sum();
            let mut xm = x.clone();
            xm[(0, k)] -= eps;
            let lm = layer.forward(&xm, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dx[(0, k)]).abs() < tol, "input {k}: fd={fd} vs {}", dx[(0, k)]);
        }
    }

    #[test]
    fn identity_kernel_preserves_image() {
        let mut rng = StdRng::seed_from_u64(700);
        let shape = ImageShape::new(1, 4, 4);
        let mut conv = Conv2d::standard(shape, 1, 3, Activation::Identity, &mut rng);
        // centre-tap identity kernel
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        w.push(0.0); // bias
        conv.set_param_vector(&w);
        let x = Matrix::from_fn(2, 16, |r, c| (r * 16 + c) as f32 * 0.1);
        let y = conv.forward(&x, Mode::Eval);
        assert!(y.approx_eq(&x, 1e-6), "identity kernel must pass the image through");
    }

    #[test]
    fn shift_kernel_moves_pixels() {
        let mut rng = StdRng::seed_from_u64(701);
        let shape = ImageShape::new(1, 3, 3);
        let mut conv = Conv2d::standard(shape, 1, 3, Activation::Identity, &mut rng);
        // kernel that picks the left neighbour: w[(1,0)] position
        let mut w = vec![0.0f32; 9];
        w[3] = 1.0; // row 1, col 0 of the 3×3 kernel
        w.push(0.0);
        conv.set_param_vector(&w);
        let mut img = Matrix::zeros(1, 9);
        img[(0, 4)] = 1.0; // centre pixel
        let y = conv.forward(&img, Mode::Eval);
        // centre pixel should move right by one
        assert_eq!(y[(0, 5)], 1.0, "{y:?}");
        assert_eq!(y[(0, 4)], 0.0);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = StdRng::seed_from_u64(702);
        let shape = ImageShape::new(2, 4, 4);
        let mut conv = Conv2d::standard(shape, 3, 3, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(2, shape.len(), |r, c| ((r * 31 + c) as f32 * 0.23).sin() * 0.5);
        grad_check(&mut conv, &x, 12, 2e-2);
    }

    #[test]
    fn depthwise_gradient_check_and_param_count() {
        let mut rng = StdRng::seed_from_u64(703);
        let shape = ImageShape::new(3, 4, 4);
        let mut conv = Conv2d::depthwise(shape, 3, Activation::Identity, &mut rng);
        assert_eq!(conv.info().params, 3 * 9 + 3, "one 3×3 filter per channel");
        let x = Matrix::from_fn(1, shape.len(), |_, c| ((c as f32) * 0.37).cos() * 0.5);
        grad_check(&mut conv, &x, 10, 2e-2);
    }

    #[test]
    fn separable_block_is_much_cheaper_than_standard() {
        let mut rng = StdRng::seed_from_u64(704);
        let shape = ImageShape::new(16, 8, 8);
        let standard = Conv2d::standard(shape, 32, 3, Activation::Relu, &mut rng);
        let separable = SeparableConv2d::new(shape, 32, 3, Activation::Relu, &mut rng);
        let s = standard.info();
        let p = separable.info();
        assert_eq!(s.out_dim, p.out_dim);
        assert!(
            p.params * 5 < s.params,
            "separable {} should be ≥5× smaller than standard {}",
            p.params,
            s.params
        );
        assert!(p.macs * 5 < s.macs, "and ≥5× fewer MACs: {} vs {}", p.macs, s.macs);
    }

    #[test]
    fn separable_gradient_check() {
        let mut rng = StdRng::seed_from_u64(705);
        let shape = ImageShape::new(2, 4, 4);
        let mut block = SeparableConv2d::new(shape, 3, 3, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(1, shape.len(), |_, c| ((c as f32) * 0.41).sin() * 0.4);
        grad_check(&mut block, &x, 12, 2e-2);
    }

    #[test]
    fn avgpool_halves_and_averages() {
        let shape = ImageShape::new(1, 4, 4);
        let mut pool = AvgPool2d::new(shape);
        let x = Matrix::from_fn(1, 16, |_, c| c as f32);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.cols(), 4);
        // top-left 2×2 block of [0,1;4,5] → 2.5
        assert_eq!(y[(0, 0)], 2.5);
        // backward distributes evenly
        let dx = pool.backward(&Matrix::ones(1, 4));
        assert!(dx.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn tiny_cnn_learns_digit_glyphs() {
        use crate::dense::Dense;
        use crate::optim::Adam;
        use crate::sequential::Sequential;
        use crate::trainer::{fit_classifier, TrainConfig};
        let mut rng = StdRng::seed_from_u64(706);
        let data = mdl_data::synthetic::synthetic_digits(600, 0.08, &mut rng);
        let (train, test) = data.split(0.75, &mut rng);

        let shape = ImageShape::new(1, 8, 8);
        let mut net = Sequential::new();
        let conv = Conv2d::standard(shape, 6, 3, Activation::Relu, &mut rng);
        let mid = conv.output_shape();
        net.push(conv);
        net.push(AvgPool2d::new(mid));
        net.push(Dense::new(6 * 4 * 4, 10, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &train.x,
            &train.y,
            &TrainConfig { epochs: 20, ..Default::default() },
            &mut rng,
        );
        let acc = net.accuracy(&test.x, &test.y);
        assert!(acc > 0.78, "tiny CNN accuracy {acc}");
    }
}
