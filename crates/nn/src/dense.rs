//! Fully connected (dense) layer and inverted dropout.

use crate::activation::Activation;
use crate::layer::{Layer, LayerInfo, Mode};
use mdl_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense layer: `y = act(x · W + b)` with `W: in × out`, `b: 1 × out`.
///
/// # Examples
///
/// ```
/// use mdl_nn::{Dense, Activation, Layer, Mode};
/// use mdl_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
/// let y = layer.forward(&Matrix::ones(4, 3), Mode::Eval);
/// assert_eq!(y.shape(), (4, 2));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    activation: Activation,
    #[serde(skip)]
    cache: Option<DenseCache>,
    /// Reused `dpre` buffer for backward; skipped in serde and clones.
    #[serde(skip)]
    scratch: Matrix,
}

#[derive(Clone, Default)]
struct DenseCache {
    input: Matrix,
    pre_activation: Matrix,
}

impl std::fmt::Debug for Dense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dense")
            .field("in_dim", &self.weight.rows())
            .field("out_dim", &self.weight.cols())
            .field("activation", &self.activation)
            .finish()
    }
}

impl Dense {
    /// Creates a dense layer with Xavier-initialised weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        Self::with_init(in_dim, out_dim, activation, Init::Xavier, rng)
    }

    /// Creates a dense layer with an explicit initialisation scheme.
    pub fn with_init(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            weight: init.sample(in_dim, out_dim, rng),
            bias: Matrix::zeros(1, out_dim),
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            activation,
            cache: None,
            scratch: Matrix::default(),
        }
    }

    /// Builds a dense layer directly from a weight matrix and bias vector.
    ///
    /// Used by the compression codecs to materialise reconstructed layers.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.cols(), "bias width must match weight columns");
        let (r, c) = weight.shape();
        Self {
            weight,
            bias,
            grad_weight: Matrix::zeros(r, c),
            grad_bias: Matrix::zeros(1, c),
            activation,
            cache: None,
            scratch: Matrix::default(),
        }
    }

    /// The weight matrix (`in × out`).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutable access to the weight matrix (used by pruning/quantization).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// The bias row vector (`1 × out`).
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Slice-level eval shared by [`Layer::forward_eval`] and the plan
    /// executor: `out = act(x · W + b)` with `x: rows × in`, `out: rows ×
    /// out`, no allocation. `fuse` selects the fused GEMM epilogue
    /// (activation applied inside the kernel drain) over the classic
    /// two-pass form; both produce bit-identical results.
    pub(crate) fn eval_slice_into(&self, rows: usize, x: &[f32], out: &mut [f32], fuse: bool) {
        let (in_dim, out_dim) = self.weight.shape();
        assert_eq!(x.len(), rows * in_dim, "dense eval input length mismatch");
        assert_eq!(out.len(), rows * out_dim, "dense eval output length mismatch");
        let (w, b) = (self.weight.as_slice(), self.bias.as_slice());
        let act = self.activation;
        if fuse {
            // One arm per activation so each epilogue monomorphizes with
            // the variant constant-folded: the kernel's per-element call
            // inlines to the bare max/exp, not a match.
            use mdl_tensor::kernel::{gemm_bias_act, NO_EPI};
            match act {
                Activation::Identity => gemm_bias_act(rows, out_dim, in_dim, x, w, b, NO_EPI, out),
                Activation::Relu => {
                    let epi = |v: f32| Activation::Relu.apply(v);
                    gemm_bias_act(rows, out_dim, in_dim, x, w, b, Some(&epi), out);
                }
                Activation::LeakyRelu(alpha) => {
                    let epi = move |v: f32| Activation::LeakyRelu(alpha).apply(v);
                    gemm_bias_act(rows, out_dim, in_dim, x, w, b, Some(&epi), out);
                }
                Activation::Sigmoid => {
                    let epi = |v: f32| Activation::Sigmoid.apply(v);
                    gemm_bias_act(rows, out_dim, in_dim, x, w, b, Some(&epi), out);
                }
                Activation::Tanh => {
                    let epi = |v: f32| Activation::Tanh.apply(v);
                    gemm_bias_act(rows, out_dim, in_dim, x, w, b, Some(&epi), out);
                }
            }
        } else {
            mdl_tensor::kernel::gemm_bias_act(
                rows,
                out_dim,
                in_dim,
                x,
                w,
                b,
                mdl_tensor::kernel::NO_EPI,
                out,
            );
            for v in out.iter_mut() {
                *v = act.apply(*v);
            }
        }
    }
}

impl Layer for Dense {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn forward(&mut self, x: &Matrix, _mode: Mode) -> Matrix {
        // take/restore the cache so its buffers are reused across steps:
        // the fused x·W + b lands straight in `pre_activation`.
        let mut cache = self.cache.take().unwrap_or_default();
        cache.input.copy_from(x);
        x.matmul_bias_into(&self.weight, &self.bias, &mut cache.pre_activation);
        let out = self.activation.apply_matrix(&cache.pre_activation);
        self.cache = Some(cache);
        out
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        out.resize_to(x.rows(), self.weight.cols());
        self.eval_slice_into(x.rows(), x.as_slice(), out.as_mut_slice(), false);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward called before forward");
        // dpre = grad_out ⊙ act'(pre), built in the reused scratch buffer
        let act = self.activation;
        let pre = &cache.pre_activation;
        assert_eq!(grad_out.shape(), pre.shape(), "Dense grad shape mismatch");
        self.scratch.resize_to(pre.rows(), pre.cols());
        for ((d, &g), &p) in
            self.scratch.as_mut_slice().iter_mut().zip(grad_out.as_slice()).zip(pre.as_slice())
        {
            *d = g * act.derivative(p);
        }
        cache.input.matmul_tn_acc(&self.scratch, &mut self.grad_weight);
        self.scratch.sum_rows_acc(&mut self.grad_bias);
        self.scratch.matmul_nt(&self.weight)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn info(&self) -> LayerInfo {
        let (in_dim, out_dim) = self.weight.shape();
        LayerInfo {
            kind: "dense",
            in_dim,
            out_dim,
            params: self.weight.len() + self.bias.len(),
            macs: (in_dim * out_dim) as u64,
        }
    }
}

/// Inverted dropout: scales kept units by `1 / keep_prob` during training so
/// evaluation needs no rescaling.
pub struct Dropout {
    drop_prob: f32,
    rng: StdRng,
    mask: Option<Matrix>,
    dim: usize,
}

impl std::fmt::Debug for Dropout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dropout").field("drop_prob", &self.drop_prob).finish()
    }
}

impl Dropout {
    /// Creates a dropout layer dropping units with probability `drop_prob`.
    ///
    /// `dim` is the feature width (reported by [`Layer::info`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= drop_prob < 1.0`.
    pub fn new(dim: usize, drop_prob: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop_prob must be in [0, 1)");
        Self { drop_prob, rng: StdRng::seed_from_u64(seed), mask: None, dim }
    }
}

impl Layer for Dropout {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        match mode {
            Mode::Eval => {
                self.mask = None;
                x.clone()
            }
            Mode::Train => {
                let keep = 1.0 - self.drop_prob;
                let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
                    if self.rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                });
                let out = x.hadamard(&mask);
                self.mask = Some(mask);
                out
            }
        }
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_out.hadamard(mask),
            None => grad_out.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn info(&self) -> LayerInfo {
        LayerInfo { kind: "dropout", in_dim: self.dim, out_dim: self.dim, params: 0, macs: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamVector;
    use rand::rngs::StdRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(3, 4, Activation::Identity, &mut rng);
        layer.set_param_vector(&[0.0; 12 + 4]);
        let y = layer.forward(&Matrix::ones(2, 3), Mode::Eval);
        assert_eq!(y.shape(), (2, 4));
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn identity_layer_passes_through() {
        let w = Matrix::identity(3);
        let b = Matrix::zeros(1, 3);
        let mut layer = Dense::from_parts(w, b, Activation::Identity);
        let x = Matrix::from_rows(&[&[1.0, -2.0, 3.0]]);
        assert_eq!(layer.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn param_vector_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 5, Activation::Relu, &mut rng);
        let v = layer.param_vector();
        assert_eq!(v.len(), 4 * 5 + 5);
        let mut v2 = v.clone();
        v2[0] = 42.0;
        layer.set_param_vector(&v2);
        assert_eq!(layer.param_vector()[0], 42.0);
        assert_eq!(layer.num_params(), 25);
    }

    #[test]
    fn backward_gradient_check() {
        // finite-difference check of dL/dW for L = sum(y) with tanh
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.8], &[-1.0, 0.3, 0.1]]);
        let base = layer.param_vector();

        layer.zero_grad();
        let _ = layer.forward(&x, Mode::Train);
        let grad_ones = Matrix::ones(2, 2);
        let _ = layer.backward(&grad_ones);
        let analytic = layer.grad_vector();

        let eps = 1e-3f32;
        for k in 0..base.len() {
            let mut plus = base.clone();
            plus[k] += eps;
            layer.set_param_vector(&plus);
            let lp = layer.forward(&x, Mode::Eval).sum();
            let mut minus = base.clone();
            minus[k] -= eps;
            layer.set_param_vector(&minus);
            let lm = layer.forward(&x, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < 1e-2, "param {k}: fd={fd} analytic={}", analytic[k]);
        }
    }

    #[test]
    fn backward_input_gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(3, 2, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.2, -0.3]]);
        let _ = layer.forward(&x, Mode::Train);
        let gin = layer.backward(&Matrix::ones(1, 2));
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut xp = x.clone();
            xp[(0, k)] += eps;
            let lp = layer.forward(&xp, Mode::Eval).sum();
            let mut xm = x.clone();
            xm[(0, k)] -= eps;
            let lm = layer.forward(&xm, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - gin[(0, k)]).abs() < 1e-3, "input {k}: fd={fd} vs {}", gin[(0, k)]);
        }
    }

    #[test]
    fn dropout_eval_is_identity_train_masks() {
        let mut d = Dropout::new(8, 0.5, 99);
        let x = Matrix::ones(16, 8);
        assert_eq!(d.forward(&x, Mode::Eval), x);
        let y = d.forward(&x, Mode::Train);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 10 && zeros < 120, "zeros={zeros}");
        // kept entries are scaled by 1/keep = 2.0
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(4, 0.5, 7);
        let x = Matrix::ones(2, 4);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Matrix::ones(2, 4));
        assert_eq!(y, g);
    }

    #[test]
    fn info_reports_macs() {
        let mut rng = StdRng::seed_from_u64(6);
        let layer = Dense::new(128, 64, Activation::Relu, &mut rng);
        let info = layer.info();
        assert_eq!(info.macs, 128 * 64);
        assert_eq!(info.params, 128 * 64 + 64);
        assert_eq!(info.kind, "dense");
    }
}
