//! Gated Recurrent Unit with full backpropagation through time.
//!
//! Follows the paper's Eq. (1) exactly:
//!
//! ```text
//! r_k = sigmoid(W_r x_k + U_r h_{k-1} + b_r)
//! z_k = sigmoid(W_z x_k + U_z h_{k-1} + b_z)
//! h̃_k = tanh(W x_k + U (r_k ⊙ h_{k-1}) + b)
//! h_k = z_k ⊙ h_{k-1} + (1 - z_k) ⊙ h̃_k
//! ```
//!
//! where the update gate `z` keeps the *previous* state — note this is the
//! paper's convention (some libraries swap `z` and `1 - z`).

use crate::layer::{Layer, LayerInfo, Mode};
use mdl_tensor::kernel::{self, Trans};
use mdl_tensor::{Init, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single-direction GRU over one sequence.
///
/// [`Layer::forward`] treats the input as a `T × input_dim` sequence and
/// returns all hidden states as `T × hidden_dim`; take the last row for a
/// sequence embedding.
///
/// # Examples
///
/// ```
/// use mdl_nn::{Gru, Layer, Mode};
/// use mdl_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut gru = Gru::new(3, 8, &mut rng);
/// let sequence = Matrix::ones(10, 3); // 10 timesteps, 3 features
/// let states = gru.forward(&sequence, Mode::Eval);
/// assert_eq!(states.shape(), (10, 8));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Gru {
    w_r: Matrix,
    w_z: Matrix,
    w_h: Matrix,
    u_r: Matrix,
    u_z: Matrix,
    u_h: Matrix,
    b_r: Matrix,
    b_z: Matrix,
    b_h: Matrix,
    g_w_r: Matrix,
    g_w_z: Matrix,
    g_w_h: Matrix,
    g_u_r: Matrix,
    g_u_z: Matrix,
    g_u_h: Matrix,
    g_b_r: Matrix,
    g_b_z: Matrix,
    g_b_h: Matrix,
    #[serde(skip)]
    cache: Option<GruCache>,
    #[serde(skip)]
    scratch: GruScratch,
}

#[derive(Clone, Default)]
pub(crate) struct GruCache {
    /// Sequence length of the last scan. The plan path scans straight from
    /// a borrowed slice without copying into `input`, so the length is
    /// recorded here rather than read off `input.rows()`.
    t_len: usize,
    input: Matrix,
    /// Hidden states including the initial zero state: `(T+1) × h`.
    hidden: Matrix,
    r: Matrix,
    z: Matrix,
    hc: Matrix,
    /// Per-step reset-gated states `r_k ⊙ h_{k-1}` as `T × h`, kept for the
    /// batched `g_U` gradient product.
    rh: Matrix,
}

/// Reusable workspace for the BPTT sweep; persists across calls so the
/// training loop's steady state performs no per-step allocation.
#[derive(Clone, Default)]
struct GruScratch {
    dh: Vec<f32>,
    carry: Vec<f32>,
    drh: Vec<f32>,
    da_r: Matrix,
    da_z: Matrix,
    da_h: Matrix,
}

impl std::fmt::Debug for Gru {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gru")
            .field("input_dim", &self.w_r.rows())
            .field("hidden_dim", &self.w_r.cols())
            .finish()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Gru {
    /// Creates a GRU with Xavier-initialised kernels and zero biases.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w_r: Init::Xavier.sample(input_dim, hidden_dim, rng),
            w_z: Init::Xavier.sample(input_dim, hidden_dim, rng),
            w_h: Init::Xavier.sample(input_dim, hidden_dim, rng),
            u_r: Init::Xavier.sample(hidden_dim, hidden_dim, rng),
            u_z: Init::Xavier.sample(hidden_dim, hidden_dim, rng),
            u_h: Init::Xavier.sample(hidden_dim, hidden_dim, rng),
            b_r: Matrix::zeros(1, hidden_dim),
            b_z: Matrix::zeros(1, hidden_dim),
            b_h: Matrix::zeros(1, hidden_dim),
            g_w_r: Matrix::zeros(input_dim, hidden_dim),
            g_w_z: Matrix::zeros(input_dim, hidden_dim),
            g_w_h: Matrix::zeros(input_dim, hidden_dim),
            g_u_r: Matrix::zeros(hidden_dim, hidden_dim),
            g_u_z: Matrix::zeros(hidden_dim, hidden_dim),
            g_u_h: Matrix::zeros(hidden_dim, hidden_dim),
            g_b_r: Matrix::zeros(1, hidden_dim),
            g_b_z: Matrix::zeros(1, hidden_dim),
            g_b_h: Matrix::zeros(1, hidden_dim),
            cache: None,
            scratch: GruScratch::default(),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.w_r.rows()
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.w_r.cols()
    }

    /// Input kernels `[W_r, W_z, W_h]`, each `input_dim × hidden_dim`
    /// (read-only — used by the quantized-path builder).
    pub fn input_kernels(&self) -> [&Matrix; 3] {
        [&self.w_r, &self.w_z, &self.w_h]
    }

    /// Recurrent kernels `[U_r, U_z, U_h]`, each `hidden_dim × hidden_dim`.
    pub fn recurrent_kernels(&self) -> [&Matrix; 3] {
        [&self.u_r, &self.u_z, &self.u_h]
    }

    /// Gate biases `[b_r, b_z, b_h]`, each `1 × hidden_dim`.
    pub fn biases(&self) -> [&Matrix; 3] {
        [&self.b_r, &self.b_z, &self.b_h]
    }

    /// Runs the sequence and returns only the final hidden state (`1 × h`).
    pub fn encode(&mut self, seq: &Matrix) -> Matrix {
        let states = self.forward(seq, Mode::Eval);
        let last = states.rows() - 1;
        Matrix::row_vector(states.row(last))
    }

    /// Runs the recurrence into `cache`, reusing its buffers across calls.
    ///
    /// The input projections for all three gates are evaluated as fused
    /// whole-sequence `X·W + b` products up front; the sequential part is
    /// then three `1 × h` recurrent accumulations per step, activated in
    /// place, with no per-step allocation.
    fn scan_into(&self, x: &Matrix, cache: &mut GruCache) {
        assert_eq!(x.cols(), self.input_dim(), "GRU input width mismatch");
        cache.input.copy_from(x);
        self.scan_slice_into(x.rows(), x.as_slice(), cache);
    }

    /// [`Gru::scan_into`] without the input copy: runs the recurrence over a
    /// borrowed `t_len × input_dim` slice, reusing the cache buffers. This is
    /// the path the plan executor calls — `cache.input` is left untouched, so
    /// only [`Gru::backward`] (which goes through `scan_into`) may rely on it.
    pub(crate) fn scan_slice_into(&self, t_len: usize, x: &[f32], cache: &mut GruCache) {
        let d = self.input_dim();
        let h = self.hidden_dim();
        assert_eq!(x.len(), t_len * d, "GRU input length mismatch");
        assert!(t_len > 0, "GRU requires a non-empty sequence");

        cache.t_len = t_len;
        cache.hidden.resize_to(t_len + 1, h);
        cache.hidden.fill(0.0);
        cache.rh.resize_to(t_len, h);
        cache.r.resize_to(t_len, h);
        cache.z.resize_to(t_len, h);
        cache.hc.resize_to(t_len, h);

        // fused x·W + b for every timestep at once (bit-identical to
        // `matmul_bias_into`: bias-seeded accumulate, same dispatch)
        kernel::gemm_bias_act(
            t_len,
            h,
            d,
            x,
            self.w_r.as_slice(),
            self.b_r.as_slice(),
            kernel::NO_EPI,
            cache.r.as_mut_slice(),
        );
        kernel::gemm_bias_act(
            t_len,
            h,
            d,
            x,
            self.w_z.as_slice(),
            self.b_z.as_slice(),
            kernel::NO_EPI,
            cache.z.as_mut_slice(),
        );
        kernel::gemm_bias_act(
            t_len,
            h,
            d,
            x,
            self.w_h.as_slice(),
            self.b_h.as_slice(),
            kernel::NO_EPI,
            cache.hc.as_mut_slice(),
        );

        for k in 0..t_len {
            let (head, tail) = cache.hidden.as_mut_slice().split_at_mut((k + 1) * h);
            let h_prev = &head[k * h..];
            let h_next = &mut tail[..h];

            let r_row = cache.r.row_mut(k);
            kernel::gemm(Trans::N, Trans::N, 1, h, h, h_prev, self.u_r.as_slice(), r_row, true);
            for v in r_row.iter_mut() {
                *v = sigmoid(*v);
            }
            let z_row = cache.z.row_mut(k);
            kernel::gemm(Trans::N, Trans::N, 1, h, h, h_prev, self.u_z.as_slice(), z_row, true);
            for v in z_row.iter_mut() {
                *v = sigmoid(*v);
            }

            let rh_row = cache.rh.row_mut(k);
            for ((rh, &r), &hp) in rh_row.iter_mut().zip(cache.r.row(k)).zip(h_prev) {
                *rh = r * hp;
            }
            let hc_row = cache.hc.row_mut(k);
            kernel::gemm(
                Trans::N,
                Trans::N,
                1,
                h,
                h,
                cache.rh.row(k),
                self.u_h.as_slice(),
                hc_row,
                true,
            );
            for v in hc_row.iter_mut() {
                *v = v.tanh();
            }

            let z_row = cache.z.row(k);
            let hc_row = cache.hc.row(k);
            for j in 0..h {
                h_next[j] = z_row[j] * h_prev[j] + (1.0 - z_row[j]) * hc_row[j];
            }
        }
    }

    /// Copies hidden states `1..=T` (contiguous in the `(T+1) × h` buffer)
    /// into the `T × h` output layout.
    fn states_output(cache: &GruCache) -> Matrix {
        let t_len = cache.t_len;
        let h = cache.hidden.cols();
        Matrix::from_vec(t_len, h, cache.hidden.as_slice()[h..(t_len + 1) * h].to_vec())
    }

    /// Copies hidden states `1..=T` into a caller-provided `T × h` slice —
    /// the allocation-free sibling of [`Gru::states_output`].
    pub(crate) fn states_into(cache: &GruCache, out: &mut [f32]) {
        let t_len = cache.t_len;
        let h = cache.hidden.cols();
        out.copy_from_slice(&cache.hidden.as_slice()[h..(t_len + 1) * h]);
    }

    /// A cache with every buffer pre-sized for `t_len`-step scans, so the
    /// first [`Gru::scan_slice_into`] already runs allocation-free.
    pub(crate) fn plan_cache(&self, t_len: usize) -> GruCache {
        let h = self.hidden_dim();
        let mut cache = GruCache { t_len, ..GruCache::default() };
        cache.hidden.resize_to(t_len + 1, h);
        cache.rh.resize_to(t_len, h);
        cache.r.resize_to(t_len, h);
        cache.z.resize_to(t_len, h);
        cache.hc.resize_to(t_len, h);
        cache
    }
}

impl Layer for Gru {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn forward(&mut self, x: &Matrix, _mode: Mode) -> Matrix {
        // take/restore rather than clone: the cache buffers are reused
        // across forward calls and handed to backward without copying.
        let mut cache = self.cache.take().unwrap_or_default();
        self.scan_into(x, &mut cache);
        let out = Self::states_output(&cache);
        self.cache = Some(cache);
        out
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut cache = GruCache::default();
        self.scan_into(x, &mut cache);
        Self::states_output(&cache)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("backward called before forward");
        let mut scratch = std::mem::take(&mut self.scratch);
        let t_len = cache.input.rows();
        let h = self.hidden_dim();
        let d = self.input_dim();
        assert_eq!(grad_out.shape(), (t_len, h), "GRU grad shape mismatch");

        // The sequential sweep only resolves the recurrent couplings: it
        // fills per-step pre-activation gradients dA_r/dA_z/dA_h and the
        // carried dh. All parameter gradients then come from whole-sequence
        // products below, where the GEMM kernel (not a per-step loop) does
        // the heavy lifting.
        scratch.da_r.resize_to(t_len, h);
        scratch.da_z.resize_to(t_len, h);
        scratch.da_h.resize_to(t_len, h);
        scratch.dh.clear();
        scratch.dh.resize(h, 0.0);
        scratch.carry.clear();
        scratch.carry.resize(h, 0.0);
        scratch.drh.clear();
        scratch.drh.resize(h, 0.0);

        for k in (0..t_len).rev() {
            let h_prev = cache.hidden.row(k);
            let r = cache.r.row(k);
            let z = cache.z.row(k);
            let hc = cache.hc.row(k);

            // total gradient flowing into h_k
            for (dh, (&c, &g)) in
                scratch.dh.iter_mut().zip(scratch.carry.iter().zip(grad_out.row(k)))
            {
                *dh = c + g;
            }

            // h_k = z ⊙ h_prev + (1 - z) ⊙ hc, then through each gate's
            // nonlinearity to the pre-activation gradients
            let da_h = scratch.da_h.row_mut(k);
            let da_z = scratch.da_z.row_mut(k);
            for j in 0..h {
                let dh = scratch.dh[j];
                let dhc = dh * (1.0 - z[j]);
                da_h[j] = dhc * (1.0 - hc[j] * hc[j]);
                let dz = dh * (h_prev[j] - hc[j]);
                da_z[j] = dz * z[j] * (1.0 - z[j]);
                scratch.carry[j] = dh * z[j];
            }

            // candidate path: d(r ⊙ h_prev) = dA_h · U_hᵀ
            kernel::gemm(
                Trans::N,
                Trans::T,
                1,
                h,
                h,
                da_h,
                self.u_h.as_slice(),
                &mut scratch.drh,
                false,
            );
            let da_r = scratch.da_r.row_mut(k);
            for j in 0..h {
                let dr = scratch.drh[j] * h_prev[j];
                da_r[j] = dr * r[j] * (1.0 - r[j]);
                scratch.carry[j] += scratch.drh[j] * r[j];
            }

            // recurrent contributions to dh_{k-1}
            kernel::gemm(
                Trans::N,
                Trans::T,
                1,
                h,
                h,
                da_r,
                self.u_r.as_slice(),
                &mut scratch.carry,
                true,
            );
            kernel::gemm(
                Trans::N,
                Trans::T,
                1,
                h,
                h,
                da_z,
                self.u_z.as_slice(),
                &mut scratch.carry,
                true,
            );
        }

        // batched parameter gradients: g_W += Xᵀ·DA, g_U += H_prevᵀ·DA
        // (hidden rows 0..T are the predecessors, a prefix of the buffer)
        let h_prev_all = &cache.hidden.as_slice()[..t_len * h];
        cache.input.matmul_tn_acc(&scratch.da_r, &mut self.g_w_r);
        cache.input.matmul_tn_acc(&scratch.da_z, &mut self.g_w_z);
        cache.input.matmul_tn_acc(&scratch.da_h, &mut self.g_w_h);
        kernel::gemm(
            Trans::T,
            Trans::N,
            h,
            h,
            t_len,
            h_prev_all,
            scratch.da_r.as_slice(),
            self.g_u_r.as_mut_slice(),
            true,
        );
        kernel::gemm(
            Trans::T,
            Trans::N,
            h,
            h,
            t_len,
            h_prev_all,
            scratch.da_z.as_slice(),
            self.g_u_z.as_mut_slice(),
            true,
        );
        cache.rh.matmul_tn_acc(&scratch.da_h, &mut self.g_u_h);
        scratch.da_r.sum_rows_acc(&mut self.g_b_r);
        scratch.da_z.sum_rows_acc(&mut self.g_b_z);
        scratch.da_h.sum_rows_acc(&mut self.g_b_h);

        // input gradient: dX = DA_h·W_hᵀ + DA_r·W_rᵀ + DA_z·W_zᵀ
        let mut dx = Matrix::zeros(t_len, d);
        scratch.da_h.matmul_nt_acc(&self.w_h, &mut dx);
        scratch.da_r.matmul_nt_acc(&self.w_r, &mut dx);
        scratch.da_z.matmul_nt_acc(&self.w_z, &mut dx);

        self.scratch = scratch;
        self.cache = Some(cache);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w_r, &mut self.g_w_r);
        f(&mut self.w_z, &mut self.g_w_z);
        f(&mut self.w_h, &mut self.g_w_h);
        f(&mut self.u_r, &mut self.g_u_r);
        f(&mut self.u_z, &mut self.g_u_z);
        f(&mut self.u_h, &mut self.g_u_h);
        f(&mut self.b_r, &mut self.g_b_r);
        f(&mut self.b_z, &mut self.g_b_z);
        f(&mut self.b_h, &mut self.g_b_h);
    }

    fn info(&self) -> LayerInfo {
        let d = self.input_dim();
        let h = self.hidden_dim();
        LayerInfo {
            kind: "gru",
            in_dim: d,
            out_dim: h,
            params: 3 * (d * h + h * h + h),
            // per timestep: three input and three recurrent matvecs
            macs: (3 * (d * h + h * h)) as u64,
        }
    }
}

/// Bidirectional GRU: concatenates a forward pass and a reversed-input pass,
/// giving `T × 2h` outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiGru {
    fwd: Gru,
    bwd: Gru,
}

impl BiGru {
    /// Creates a bidirectional GRU with `hidden_dim` units per direction.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            fwd: Gru::new(input_dim, hidden_dim, rng),
            bwd: Gru::new(input_dim, hidden_dim, rng),
        }
    }

    /// Hidden width per direction (total output width is twice this).
    pub fn hidden_dim(&self) -> usize {
        self.fwd.hidden_dim()
    }

    /// Final fused state: `[h_fwd(T); h_bwd(T)]` as `1 × 2h`.
    pub fn encode(&mut self, seq: &Matrix) -> Matrix {
        let states = self.forward(seq, Mode::Eval);
        let last = states.rows() - 1;
        let h = self.hidden_dim();
        let mut out = Matrix::zeros(1, 2 * h);
        // forward state is best at the last step, backward at the first row
        out.row_mut(0)[..h].copy_from_slice(&states.row(last)[..h]);
        out.row_mut(0)[h..].copy_from_slice(&states.row(0)[h..]);
        out
    }
}

fn reverse_rows(m: &Matrix) -> Matrix {
    let t = m.rows();
    Matrix::from_fn(t, m.cols(), |r, c| m[(t - 1 - r, c)])
}

impl Layer for BiGru {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let f = self.fwd.forward(x, mode);
        let b_rev = self.bwd.forward(&reverse_rows(x), mode);
        let b = reverse_rows(&b_rev);
        f.hstack(&b)
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let f = self.fwd.forward_eval(x);
        let b = reverse_rows(&self.bwd.forward_eval(&reverse_rows(x)));
        f.hstack(&b)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let h = self.hidden_dim();
        let t = grad_out.rows();
        let gf = Matrix::from_fn(t, h, |r, c| grad_out[(r, c)]);
        let gb = Matrix::from_fn(t, h, |r, c| grad_out[(r, c + h)]);
        let mut dx = self.fwd.backward(&gf);
        let dxb_rev = self.bwd.backward(&reverse_rows(&gb));
        dx.add_assign(&reverse_rows(&dxb_rev));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.fwd.visit_params(f);
        self.bwd.visit_params(f);
    }

    fn info(&self) -> LayerInfo {
        let fi = self.fwd.info();
        LayerInfo {
            kind: "bigru",
            in_dim: fi.in_dim,
            out_dim: 2 * fi.out_dim,
            params: 2 * fi.params,
            macs: 2 * fi.macs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss_last_state_sum(gru: &mut Gru, x: &Matrix) -> f32 {
        let states = gru.forward(x, Mode::Eval);
        states.row(states.rows() - 1).iter().sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut gru = Gru::new(5, 7, &mut rng);
        let x = Matrix::ones(4, 5);
        let y = gru.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (4, 7));
        assert!(y.all_finite());
        assert!(y.max_abs() <= 1.0 + 1e-5, "GRU states bounded by tanh");
    }

    #[test]
    fn initial_state_is_zero_influences_first_step() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut gru = Gru::new(2, 3, &mut rng);
        let x = Matrix::zeros(3, 2);
        // with zero input, zero h0 and zero biases, state stays exactly zero
        let y = gru.forward(&x, Mode::Eval);
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn bptt_gradient_check_params() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut gru = Gru::new(3, 4, &mut rng);
        let x = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.7).sin() * 0.5);
        let base = gru.param_vector();

        gru.zero_grad();
        let states = gru.forward(&x, Mode::Train);
        // L = sum of last hidden state
        let mut gout = Matrix::zeros(5, 4);
        for j in 0..4 {
            gout[(4, j)] = 1.0;
        }
        let _ = gru.backward(&gout);
        let analytic = gru.grad_vector();
        assert!(states.all_finite());

        let eps = 1e-3f32;
        // spot-check a spread of parameters (full check is slow)
        let n = base.len();
        let picks: Vec<usize> = (0..12).map(|i| i * (n / 12)).chain([n - 1, n - 2]).collect();
        for k in picks {
            let mut plus = base.clone();
            plus[k] += eps;
            gru.set_param_vector(&plus);
            let lp = loss_last_state_sum(&mut gru, &x);
            let mut minus = base.clone();
            minus[k] -= eps;
            gru.set_param_vector(&minus);
            let lm = loss_last_state_sum(&mut gru, &x);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < 2e-2, "param {k}: fd={fd} analytic={}", analytic[k]);
        }
    }

    #[test]
    fn bptt_gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut gru = Gru::new(2, 3, &mut rng);
        let x = Matrix::from_fn(4, 2, |r, c| ((r + c) as f32 * 0.9).cos() * 0.4);
        let _ = gru.forward(&x, Mode::Train);
        let mut gout = Matrix::zeros(4, 3);
        for j in 0..3 {
            gout[(3, j)] = 1.0;
        }
        let dx = gru.backward(&gout);
        let eps = 1e-3f32;
        for r in 0..4 {
            for c in 0..2 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let lp = loss_last_state_sum(&mut gru, &xp);
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lm = loss_last_state_sum(&mut gru, &xm);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 5e-3,
                    "input ({r},{c}): fd={fd} analytic={}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn encode_returns_last_state() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut gru = Gru::new(2, 3, &mut rng);
        let x = Matrix::from_fn(6, 2, |r, c| (r as f32 - c as f32) * 0.1);
        let states = gru.forward(&x, Mode::Eval);
        let enc = gru.encode(&x);
        assert_eq!(enc.row(0), states.row(5));
    }

    #[test]
    fn bigru_shapes_and_gradcheck() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut big = BiGru::new(2, 3, &mut rng);
        let x = Matrix::from_fn(4, 2, |r, c| ((r * 2 + c) as f32).sin() * 0.3);
        let y = big.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (4, 6));

        let base = big.param_vector();
        big.zero_grad();
        let _ = big.forward(&x, Mode::Train);
        let _ = big.backward(&Matrix::ones(4, 6));
        let analytic = big.grad_vector();

        let eps = 1e-3f32;
        let n = base.len();
        for k in [0, n / 3, n / 2, 2 * n / 3, n - 1] {
            let mut plus = base.clone();
            plus[k] += eps;
            big.set_param_vector(&plus);
            let lp = big.forward(&x, Mode::Eval).sum();
            let mut minus = base.clone();
            minus[k] -= eps;
            big.set_param_vector(&minus);
            let lm = big.forward(&x, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < 2e-2, "param {k}: fd={fd} analytic={}", analytic[k]);
        }
    }

    #[test]
    fn gru_param_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut gru = Gru::new(8, 16, &mut rng);
        assert_eq!(gru.num_params(), 3 * (8 * 16 + 16 * 16 + 16));
        assert_eq!(gru.info().params, gru.num_params());
    }
}
