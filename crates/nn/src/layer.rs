//! The [`Layer`] trait: manual forward/backward with cached state.

use mdl_tensor::Matrix;

/// Whether a forward pass is part of training (enables dropout etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training-time forward pass.
    Train,
    /// Inference-time forward pass.
    Eval,
}

/// Static description of a layer, used by cost models and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Human-readable layer kind, e.g. `"dense"` or `"gru"`.
    pub kind: &'static str,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
    /// Number of trainable parameters.
    pub params: usize,
    /// Multiply–accumulate operations per example.
    pub macs: u64,
}

/// A differentiable layer with explicit forward and backward passes.
///
/// Layers cache whatever they need during [`Layer::forward`] so that
/// [`Layer::backward`] can compute input gradients and *accumulate* parameter
/// gradients. Call [`Layer::zero_grad`] before accumulating a new batch.
///
/// The `Sync` bound plus [`Layer::forward_eval`] let a frozen model serve
/// concurrent inference behind an `Arc` without cloning per thread.
pub trait Layer: Send + Sync {
    /// Computes outputs for a batch (`rows = examples`).
    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix;

    /// Computes outputs like [`Layer::forward`] in [`Mode::Eval`], but
    /// without mutating the layer: nothing is cached for backward, and
    /// stochastic layers (dropout) act as identity. Safe to call from many
    /// threads on a shared reference.
    fn forward_eval(&self, x: &Matrix) -> Matrix;

    /// Propagates `grad_out` (∂L/∂output) back, returning ∂L/∂input and
    /// accumulating parameter gradients internally.
    ///
    /// Must be called after a matching [`Layer::forward`].
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits each `(value, gradient)` parameter pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Resets accumulated gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill(0.0));
    }

    /// Structural description for cost models.
    fn info(&self) -> LayerInfo;

    /// Installs (`Some`) or removes (`None`) a per-layer profiler; see
    /// [`crate::profile::LayerProfiler`]. The default does nothing —
    /// only containers like [`crate::Sequential`] have per-layer timing
    /// to report, and callers may hand any `Layer` a profiler without
    /// caring.
    fn set_profiler(&mut self, _profiler: Option<std::sync::Arc<crate::profile::LayerProfiler>>) {}

    /// Runtime downcasting hook, used by the compression passes to reach
    /// concrete layer types inside a [`crate::Sequential`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Shared-reference downcasting hook, used by the plan compiler
    /// ([`crate::plan`]) to specialize ops for concrete layer types
    /// behind an `Arc` (where `as_any_mut` is unreachable). Layers the
    /// planner supports override this to return `Some(self)`; the
    /// default `None` makes the planner report the layer as unsupported,
    /// so callers fall back to the dynamic eval path.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Extension helpers shared by everything that owns parameters.
pub trait ParamVector {
    /// Flattens all parameter values into one vector (stable order).
    fn param_vector(&mut self) -> Vec<f32>;
    /// Flattens all parameter gradients into one vector (stable order).
    fn grad_vector(&mut self) -> Vec<f32>;
    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat` has the wrong length.
    fn set_param_vector(&mut self, flat: &[f32]);
    /// Total number of scalar parameters.
    fn num_params(&mut self) -> usize;
}

impl<L: Layer + ?Sized> ParamVector for L {
    fn param_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |v, _| out.extend_from_slice(v.as_slice()));
        out
    }

    fn grad_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |_, g| out.extend_from_slice(g.as_slice()));
        out
    }

    fn set_param_vector(&mut self, flat: &[f32]) {
        let mut offset = 0usize;
        self.visit_params(&mut |v, _| {
            let n = v.len();
            assert!(offset + n <= flat.len(), "parameter vector too short");
            v.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
        assert_eq!(offset, flat.len(), "parameter vector too long: {} > {offset}", flat.len());
    }

    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |v, _| n += v.len());
        n
    }
}
