//! # mdl-nn
//!
//! Neural-network substrate for the `mobile-dl` workspace: layers with
//! explicit (manual) backpropagation, losses, and the optimizer family the
//! paper references ([10]–[12]) — enough to express every model the paper
//! evaluates: MLP classifiers, GRU/BiGRU sequence encoders (Eq. 1) and the
//! DeepMood fusion heads built on top in `mdl-deepmood`.
//!
//! Design notes:
//!
//! - No autograd tape. Each [`Layer`] caches its forward state and implements
//!   `backward` analytically; everything is verified against finite
//!   differences in the test suite.
//! - Parameters are visited in a stable order (`visit_params`), which gives
//!   free flatten/unflatten ([`ParamVector`]) — the transport format used by
//!   the federated and privacy crates.
//!
//! # Examples
//!
//! ```
//! use mdl_nn::{Sequential, Dense, Activation, Adam, fit_classifier, TrainConfig};
//! use mdl_tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(2, 8, Activation::Relu, &mut rng));
//! net.push(Dense::new(8, 2, Activation::Identity, &mut rng));
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
//! let mut opt = Adam::new(0.01);
//! let stats = fit_classifier(&mut net, &mut opt, &x, &[0, 1],
//!     &TrainConfig { epochs: 5, ..Default::default() }, &mut rng);
//! assert_eq!(stats.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod dense;
pub mod gru;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod optim;
pub mod plan;
pub mod profile;
pub mod quantized;
pub mod saved;
pub mod sequential;
pub mod trainer;

pub use activation::Activation;
pub use conv::{AvgPool2d, Conv2d, ImageShape, SeparableConv2d};
pub use dense::{Dense, Dropout};
pub use gru::{BiGru, Gru};
pub use layer::{Layer, LayerInfo, Mode, ParamVector};
pub use lstm::Lstm;
pub use optim::{AdaGrad, Adam, Optimizer, RmsProp, Sgd};
pub use plan::{
    negotiated_rows, Plan, PlanCache, PlanError, PlanLookup, PlanModel, PlanOptions, PlanStats,
};
pub use profile::LayerProfiler;
pub use quantized::QuantizedModel;
pub use saved::{load_model, save_model, LoadModelError};
pub use sequential::Sequential;
pub use trainer::{clip_gradients, fit_classifier, EpochStats, TrainConfig};

#[cfg(test)]
mod proptests {
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::layer::{Layer, Mode, ParamVector};
    use crate::loss::softmax_cross_entropy;
    use mdl_tensor::Matrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_f32() -> impl Strategy<Value = f32> {
        (-50i32..=50).prop_map(|v| v as f32 / 25.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn identity_dense_is_linear(
            x1 in prop::collection::vec(small_f32(), 3),
            x2 in prop::collection::vec(small_f32(), 3),
            seed in 0u64..100,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut layer = Dense::new(3, 4, Activation::Identity, &mut rng);
            let a = Matrix::row_vector(&x1);
            let b = Matrix::row_vector(&x2);
            let sum = a.add(&b);
            let ya = layer.forward(&a, Mode::Eval);
            let yb = layer.forward(&b, Mode::Eval);
            let ysum = layer.forward(&sum, Mode::Eval);
            // affine: f(a+b) = f(a) + f(b) − f(0)
            let zero = layer.forward(&Matrix::zeros(1, 3), Mode::Eval);
            let lhs = ysum.add(&zero);
            let rhs = ya.add(&yb);
            prop_assert!(lhs.approx_eq(&rhs, 1e-3));
        }

        #[test]
        fn softmax_ce_gradient_rows_sum_to_zero(
            logits in prop::collection::vec(-10f32..10.0, 8),
            label in 0usize..4,
        ) {
            let m = Matrix::from_vec(2, 4, logits);
            let (_, grad) = softmax_cross_entropy(&m, &[label, (label + 1) % 4]);
            for r in 0..2 {
                let s: f32 = grad.row(r).iter().sum();
                prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
            }
        }

        #[test]
        fn param_vector_round_trip_is_identity(
            seed in 0u64..100,
            scale in 1u32..5,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
            let v: Vec<f32> = layer.param_vector().iter().map(|p| p * scale as f32).collect();
            layer.set_param_vector(&v);
            prop_assert_eq!(layer.param_vector(), v);
        }

        #[test]
        fn saved_model_round_trips_any_dense_stack(
            seed in 0u64..50,
            hidden in 1usize..12,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = crate::sequential::Sequential::new();
            net.push(Dense::new(5, hidden, Activation::Relu, &mut rng));
            net.push(Dense::new(hidden, 2, Activation::Identity, &mut rng));
            let x = Matrix::from_fn(3, 5, |r, c| ((r * 5 + c) as f32 * 0.3).sin());
            let before = net.forward(&x, Mode::Eval);
            let bytes = crate::saved::save_model(&mut net).expect("saveable");
            let mut back = crate::saved::load_model(&bytes).expect("loadable");
            prop_assert!(back.forward(&x, Mode::Eval).approx_eq(&before, 0.0));
        }

        #[test]
        fn load_model_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = crate::saved::load_model(&data);
        }
    }
}
