//! Loss functions returning `(loss, gradient-wrt-input)` pairs.

use mdl_tensor::stats::{log_softmax_rows, softmax_rows};
use mdl_tensor::Matrix;

/// Softmax cross-entropy over logits with integer class labels.
///
/// Returns the mean loss over the batch and `∂L/∂logits`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "one label per logit row required");
    let n = labels.len() as f32;
    let log_p = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < logits.cols(), "label {y} out of range");
        loss -= log_p[(r, y)];
    }
    loss /= n;

    let mut grad = softmax_rows(logits);
    for (r, &y) in labels.iter().enumerate() {
        grad[(r, y)] -= 1.0;
    }
    grad.scale_mut(1.0 / n);
    (loss, grad)
}

/// Mean squared error `mean((pred - target)²)` and its gradient.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse requires matching shapes");
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Multi-class hinge loss (Crammer–Singer style, margin 1) and gradient.
///
/// # Panics
///
/// Panics if `labels.len() != scores.rows()`.
pub fn multiclass_hinge(scores: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), scores.rows(), "one label per score row required");
    let n = labels.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(scores.rows(), scores.cols());
    for (r, &y) in labels.iter().enumerate() {
        let sy = scores[(r, y)];
        for c in 0..scores.cols() {
            if c == y {
                continue;
            }
            let margin = scores[(r, c)] - sy + 1.0;
            if margin > 0.0 {
                loss += margin;
                grad[(r, c)] += 1.0;
                grad[(r, y)] -= 1.0;
            }
        }
    }
    grad.scale_mut(1.0 / n);
    (loss / n, grad)
}

/// Knowledge-distillation loss (Hinton et al., paper reference [37]).
///
/// Cross-entropy between the student's temperature-softened predictions and
/// the teacher's temperature-softened probabilities, scaled by `T²` so the
/// gradient magnitude is comparable to the hard-label loss.
///
/// # Panics
///
/// Panics if shapes differ or `temperature <= 0`.
pub fn distillation(
    student_logits: &Matrix,
    teacher_logits: &Matrix,
    temperature: f32,
) -> (f32, Matrix) {
    assert_eq!(student_logits.shape(), teacher_logits.shape(), "logit shapes must match");
    assert!(temperature > 0.0, "temperature must be positive");
    let t = temperature;
    let n = student_logits.rows() as f32;
    let p_teacher = softmax_rows(&teacher_logits.scale(1.0 / t));
    let log_q = log_softmax_rows(&student_logits.scale(1.0 / t));

    let mut loss = 0.0f32;
    for r in 0..student_logits.rows() {
        for c in 0..student_logits.cols() {
            loss -= p_teacher[(r, c)] * log_q[(r, c)];
        }
    }
    loss = loss * t * t / n;

    // d/ds [T² · CE(p, softmax(s/T))] = T · (softmax(s/T) - p)
    let q = softmax_rows(&student_logits.scale(1.0 / t));
    let grad = q.sub(&p_teacher).scale(t / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(loss_fn: impl Fn(&Matrix) -> (f32, Matrix), x: &Matrix, tol: f32) {
        let (_, grad) = loss_fn(x);
        let eps = 1e-3f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let (lp, _) = loss_fn(&xp);
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let (lm, _) = loss_fn(&xm);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad[(r, c)]).abs() < tol,
                    "({r},{c}): fd={fd} analytic={}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Matrix::zeros(3, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Matrix::from_rows(&[&[0.3, -0.8, 1.2], &[2.0, 0.1, -0.5]]);
        grad_check(|x| softmax_cross_entropy(x, &[2, 0]), &logits, 1e-3);
    }

    #[test]
    fn mse_gradient_check() {
        let pred = Matrix::from_rows(&[&[0.5, -0.7], &[1.2, 0.3]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        grad_check(|x| mse(x, &target), &pred, 1e-3);
        let (loss, _) = mse(&target, &target);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn hinge_zero_when_margin_satisfied() {
        let scores = Matrix::from_rows(&[&[5.0, 0.0, 0.0]]);
        let (loss, grad) = multiclass_hinge(&scores, &[0]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn hinge_gradient_check_active_margins() {
        let scores = Matrix::from_rows(&[&[0.2, 0.5, -0.1], &[1.5, 1.4, 1.45]]);
        grad_check(|x| multiclass_hinge(x, &[0, 1]), &scores, 1e-3);
    }

    #[test]
    fn distillation_zero_when_student_matches_teacher() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let (_, grad) = distillation(&logits, &logits, 2.0);
        assert!(grad.max_abs() < 1e-6);
    }

    #[test]
    fn distillation_gradient_check() {
        let student = Matrix::from_rows(&[&[0.1, -0.4, 0.8], &[1.0, 0.0, -1.0]]);
        let teacher = Matrix::from_rows(&[&[2.0, 0.5, -0.5], &[0.0, 1.0, 0.5]]);
        grad_check(|x| distillation(x, &teacher, 3.0), &student, 5e-3);
    }

    #[test]
    fn distillation_temperature_softens() {
        // When student == teacher the per-T² loss equals the entropy of the
        // softened teacher distribution, which grows with temperature.
        let teacher = Matrix::from_rows(&[&[4.0, 0.0]]);
        let (l_t1, _) = distillation(&teacher, &teacher, 1.0);
        let (l_t10, _) = distillation(&teacher, &teacher, 10.0);
        assert!(
            l_t10 / 100.0 > l_t1,
            "softened entropy should grow with T: {l_t1} vs {}",
            l_t10 / 100.0
        );
    }
}
