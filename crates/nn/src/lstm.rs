//! Long Short-Term Memory (paper reference [42]) with full BPTT.
//!
//! The paper introduces the GRU as "a simplified version of Long
//! Short-Term Memory"; this module provides the original for the
//! GRU-vs-LSTM ablation:
//!
//! ```text
//! i_t = sigmoid(W_i x_t + U_i h_{t-1} + b_i)
//! f_t = sigmoid(W_f x_t + U_f h_{t-1} + b_f)
//! o_t = sigmoid(W_o x_t + U_o h_{t-1} + b_o)
//! g_t = tanh   (W_g x_t + U_g h_{t-1} + b_g)
//! c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//! h_t = o_t ⊙ tanh(c_t)
//! ```

use crate::layer::{Layer, LayerInfo, Mode};
use mdl_tensor::kernel::{self, Trans};
use mdl_tensor::{Init, Matrix};
use rand::Rng;

/// A single-direction LSTM over one sequence (`T × input_dim` in,
/// `T × hidden_dim` of hidden states out).
///
/// # Examples
///
/// ```
/// use mdl_nn::{Lstm, Layer, Mode};
/// use mdl_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut lstm = Lstm::new(2, 4, &mut rng);
/// let states = lstm.forward(&Matrix::ones(6, 2), Mode::Eval);
/// assert_eq!(states.shape(), (6, 4));
/// ```
pub struct Lstm {
    w: [Matrix; 4], // input kernels i, f, o, g
    u: [Matrix; 4], // recurrent kernels
    b: [Matrix; 4],
    g_w: [Matrix; 4],
    g_u: [Matrix; 4],
    g_b: [Matrix; 4],
    cache: Option<LstmCache>,
    scratch: LstmScratch,
}

#[derive(Default)]
pub(crate) struct LstmCache {
    /// Sequence length of the last scan (the plan path scans from a
    /// borrowed slice without filling `input`, so the length lives here).
    t_len: usize,
    input: Matrix,
    /// hidden states incl. initial zeros, `(T+1) × h`
    h: Matrix,
    /// cell states incl. initial zeros, `(T+1) × h`
    c: Matrix,
    gates: [Matrix; 4], // i, f, o, g per timestep, each `T × h`
}

/// Reusable BPTT workspace, kept across calls so the training loop's
/// steady state performs no per-step allocation.
#[derive(Default)]
struct LstmScratch {
    /// per-step pre-activation gradients, one `T × h` matrix per gate
    da: [Matrix; 4],
    dh: Vec<f32>,
    dc: Vec<f32>,
}

impl std::fmt::Debug for Lstm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lstm")
            .field("input_dim", &self.input_dim())
            .field("hidden_dim", &self.hidden_dim())
            .finish()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM; the forget-gate bias starts at 1 (the standard
    /// trick that keeps early gradients flowing).
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        let mk_w = |rng: &mut dyn rand::RngCore| {
            Init::Xavier.sample(input_dim, hidden_dim, &mut &mut *rng)
        };
        let mk_u = |rng: &mut dyn rand::RngCore| {
            Init::Xavier.sample(hidden_dim, hidden_dim, &mut &mut *rng)
        };
        let w = [mk_w(rng), mk_w(rng), mk_w(rng), mk_w(rng)];
        let u = [mk_u(rng), mk_u(rng), mk_u(rng), mk_u(rng)];
        let mut b = [
            Matrix::zeros(1, hidden_dim),
            Matrix::zeros(1, hidden_dim),
            Matrix::zeros(1, hidden_dim),
            Matrix::zeros(1, hidden_dim),
        ];
        b[1].map_mut(|_| 1.0); // forget-gate bias
        let zeros_w = || Matrix::zeros(input_dim, hidden_dim);
        let zeros_u = || Matrix::zeros(hidden_dim, hidden_dim);
        let zeros_b = || Matrix::zeros(1, hidden_dim);
        Self {
            w,
            u,
            b,
            g_w: [zeros_w(), zeros_w(), zeros_w(), zeros_w()],
            g_u: [zeros_u(), zeros_u(), zeros_u(), zeros_u()],
            g_b: [zeros_b(), zeros_b(), zeros_b(), zeros_b()],
            cache: None,
            scratch: LstmScratch::default(),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.w[0].rows()
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.w[0].cols()
    }

    /// Input kernels in gate order `[i, f, o, g]`, each
    /// `input_dim × hidden_dim` (read-only — used by the quantized-path
    /// builder).
    pub fn input_kernels(&self) -> [&Matrix; 4] {
        [&self.w[0], &self.w[1], &self.w[2], &self.w[3]]
    }

    /// Recurrent kernels in gate order `[i, f, o, g]`, each
    /// `hidden_dim × hidden_dim`.
    pub fn recurrent_kernels(&self) -> [&Matrix; 4] {
        [&self.u[0], &self.u[1], &self.u[2], &self.u[3]]
    }

    /// Gate biases in gate order `[i, f, o, g]`, each `1 × hidden_dim`.
    pub fn biases(&self) -> [&Matrix; 4] {
        [&self.b[0], &self.b[1], &self.b[2], &self.b[3]]
    }

    /// Runs the sequence and returns only the final hidden state (`1 × h`).
    pub fn encode(&mut self, seq: &Matrix) -> Matrix {
        let states = self.forward(seq, Mode::Eval);
        Matrix::row_vector(states.row(states.rows() - 1))
    }

    /// Runs the recurrence into `cache`, reusing its buffers across calls.
    ///
    /// All four gates' input projections `X·W + b` are evaluated as fused
    /// whole-sequence products up front; the sequential part is four
    /// `1 × h` recurrent accumulations per step, activated in place, with
    /// no per-step allocation.
    fn scan_into(&self, x: &Matrix, cache: &mut LstmCache) {
        assert_eq!(x.cols(), self.input_dim(), "LSTM input width mismatch");
        cache.input.copy_from(x);
        self.scan_slice_into(x.rows(), x.as_slice(), cache);
    }

    /// [`Lstm::scan_into`] without the input copy: runs the recurrence over
    /// a borrowed `t_len × input_dim` slice, reusing the cache buffers.
    /// This is the path the plan executor calls — `cache.input` is left
    /// untouched, so only [`Layer::backward`] (reached via `scan_into`) may
    /// rely on it.
    pub(crate) fn scan_slice_into(&self, t_len: usize, x: &[f32], cache: &mut LstmCache) {
        let d = self.input_dim();
        let h_dim = self.hidden_dim();
        assert_eq!(x.len(), t_len * d, "LSTM input length mismatch");
        assert!(t_len > 0, "LSTM requires a non-empty sequence");

        cache.t_len = t_len;
        cache.h.resize_to(t_len + 1, h_dim);
        cache.h.fill(0.0);
        cache.c.resize_to(t_len + 1, h_dim);
        cache.c.fill(0.0);
        for k in 0..4 {
            cache.gates[k].resize_to(t_len, h_dim);
            // bit-identical to `matmul_bias_into`: bias-seeded accumulate
            kernel::gemm_bias_act(
                t_len,
                h_dim,
                d,
                x,
                self.w[k].as_slice(),
                self.b[k].as_slice(),
                kernel::NO_EPI,
                cache.gates[k].as_mut_slice(),
            );
        }

        for t in 0..t_len {
            let (head, tail) = cache.h.as_mut_slice().split_at_mut((t + 1) * h_dim);
            let h_prev = &head[t * h_dim..];
            let h_next = &mut tail[..h_dim];
            for k in 0..4 {
                kernel::gemm(
                    Trans::N,
                    Trans::N,
                    1,
                    h_dim,
                    h_dim,
                    h_prev,
                    self.u[k].as_slice(),
                    cache.gates[k].row_mut(t),
                    true,
                );
            }
            let (chead, ctail) = cache.c.as_mut_slice().split_at_mut((t + 1) * h_dim);
            let c_prev = &chead[t * h_dim..];
            let c_next = &mut ctail[..h_dim];
            let [gi, gf, go, gg] = &mut cache.gates;
            let (gi, gf) = (gi.row_mut(t), gf.row_mut(t));
            let (go, gg) = (go.row_mut(t), gg.row_mut(t));
            for j in 0..h_dim {
                let i = sigmoid(gi[j]);
                let f = sigmoid(gf[j]);
                let o = sigmoid(go[j]);
                let g = gg[j].tanh();
                gi[j] = i;
                gf[j] = f;
                go[j] = o;
                gg[j] = g;
                let c_t = f * c_prev[j] + i * g;
                c_next[j] = c_t;
                h_next[j] = o * c_t.tanh();
            }
        }
    }

    /// Copies hidden states `1..=T` (contiguous in the `(T+1) × h` buffer)
    /// into the `T × h` output layout.
    fn states_output(cache: &LstmCache) -> Matrix {
        let t_len = cache.t_len;
        let h_dim = cache.h.cols();
        Matrix::from_vec(t_len, h_dim, cache.h.as_slice()[h_dim..(t_len + 1) * h_dim].to_vec())
    }

    /// Copies hidden states `1..=T` into a caller-provided `T × h` slice —
    /// the allocation-free sibling of [`Lstm::states_output`].
    pub(crate) fn states_into(cache: &LstmCache, out: &mut [f32]) {
        let t_len = cache.t_len;
        let h_dim = cache.h.cols();
        out.copy_from_slice(&cache.h.as_slice()[h_dim..(t_len + 1) * h_dim]);
    }

    /// A cache with every buffer pre-sized for `t_len`-step scans, so the
    /// first [`Lstm::scan_slice_into`] already runs allocation-free.
    pub(crate) fn plan_cache(&self, t_len: usize) -> LstmCache {
        let h_dim = self.hidden_dim();
        let mut cache = LstmCache { t_len, ..LstmCache::default() };
        cache.h.resize_to(t_len + 1, h_dim);
        cache.c.resize_to(t_len + 1, h_dim);
        for g in &mut cache.gates {
            g.resize_to(t_len, h_dim);
        }
        cache
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Matrix, _mode: Mode) -> Matrix {
        // take/restore rather than reallocate: the cache buffers are
        // reused across forward calls and handed to backward uncloned.
        let mut cache = self.cache.take().unwrap_or_default();
        self.scan_into(x, &mut cache);
        let out = Self::states_output(&cache);
        self.cache = Some(cache);
        out
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut cache = LstmCache::default();
        self.scan_into(x, &mut cache);
        Self::states_output(&cache)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("backward called before forward");
        let mut scratch = std::mem::take(&mut self.scratch);
        let t_len = cache.input.rows();
        let h_dim = self.hidden_dim();
        let d_in = self.input_dim();
        assert_eq!(grad_out.shape(), (t_len, h_dim), "LSTM grad shape mismatch");

        // The sequential sweep only resolves the recurrent couplings: it
        // fills the per-step pre-activation gradients dA and carries
        // dh/dc. Parameter gradients come from the whole-sequence GEMMs
        // below.
        for da in &mut scratch.da {
            da.resize_to(t_len, h_dim);
        }
        scratch.dh.clear();
        scratch.dh.resize(h_dim, 0.0);
        scratch.dc.clear();
        scratch.dc.resize(h_dim, 0.0);

        for t in (0..t_len).rev() {
            let c_prev = cache.c.row(t);
            let c_now = cache.c.row(t + 1);
            let [gi, gf, go, gg] = &cache.gates;
            let (gi, gf, go, gg) = (gi.row(t), gf.row(t), go.row(t), gg.row(t));
            let [da_i, da_f, da_o, da_g] = &mut scratch.da;
            let (da_i, da_f) = (da_i.row_mut(t), da_f.row_mut(t));
            let (da_o, da_g) = (da_o.row_mut(t), da_g.row_mut(t));

            for j in 0..h_dim {
                // dL/dh_t from above + from later timesteps
                let dh = grad_out[(t, j)] + scratch.dh[j];
                let (i, f, o, g) = (gi[j], gf[j], go[j], gg[j]);
                let tanh_c = c_now[j].tanh();

                // h = o · tanh(c)
                let do_ = dh * tanh_c;
                let mut dc = dh * o * (1.0 - tanh_c * tanh_c) + scratch.dc[j];

                // c = f·c_prev + i·g
                let df = dc * c_prev[j];
                let di = dc * g;
                let dg = dc * i;
                dc *= f;
                scratch.dc[j] = dc;

                da_i[j] = di * i * (1.0 - i);
                da_f[j] = df * f * (1.0 - f);
                da_o[j] = do_ * o * (1.0 - o);
                da_g[j] = dg * (1.0 - g * g);
            }

            // dh_{t-1} = Σ_k dA_k · U_kᵀ
            scratch.dh.fill(0.0);
            for k in 0..4 {
                kernel::gemm(
                    Trans::N,
                    Trans::T,
                    1,
                    h_dim,
                    h_dim,
                    scratch.da[k].row(t),
                    self.u[k].as_slice(),
                    &mut scratch.dh,
                    true,
                );
            }
        }

        // batched parameter gradients: g_W += Xᵀ·DA, g_U += H_prevᵀ·DA
        // (hidden rows 0..T are the predecessors, a prefix of the buffer)
        let h_prev_all = &cache.h.as_slice()[..t_len * h_dim];
        let mut dx = Matrix::zeros(t_len, d_in);
        for k in 0..4 {
            cache.input.matmul_tn_acc(&scratch.da[k], &mut self.g_w[k]);
            kernel::gemm(
                Trans::T,
                Trans::N,
                h_dim,
                h_dim,
                t_len,
                h_prev_all,
                scratch.da[k].as_slice(),
                self.g_u[k].as_mut_slice(),
                true,
            );
            scratch.da[k].sum_rows_acc(&mut self.g_b[k]);
            scratch.da[k].matmul_nt_acc(&self.w[k], &mut dx);
        }

        self.scratch = scratch;
        self.cache = Some(cache);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for k in 0..4 {
            f(&mut self.w[k], &mut self.g_w[k]);
        }
        for k in 0..4 {
            f(&mut self.u[k], &mut self.g_u[k]);
        }
        for k in 0..4 {
            f(&mut self.b[k], &mut self.g_b[k]);
        }
    }

    fn info(&self) -> LayerInfo {
        let d = self.input_dim();
        let h = self.hidden_dim();
        LayerInfo {
            kind: "lstm",
            in_dim: d,
            out_dim: h,
            params: 4 * (d * h + h * h + h),
            macs: (4 * (d * h + h * h)) as u64,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn loss(lstm: &mut Lstm, x: &Matrix) -> f32 {
        let states = lstm.forward(x, Mode::Eval);
        states.row(states.rows() - 1).iter().sum()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(710);
        let mut lstm = Lstm::new(4, 6, &mut rng);
        let x = Matrix::from_fn(5, 4, |r, c| ((r + c) as f32 * 0.6).sin());
        let y = lstm.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (5, 6));
        assert!(y.all_finite());
        assert!(y.max_abs() <= 1.0 + 1e-5, "h = o·tanh(c) is bounded by 1");
    }

    #[test]
    fn param_count_is_4x_gates() {
        let mut rng = StdRng::seed_from_u64(711);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        assert_eq!(lstm.num_params(), 4 * (3 * 5 + 5 * 5 + 5));
        assert_eq!(lstm.info().params, lstm.num_params());
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = StdRng::seed_from_u64(712);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let v = lstm.param_vector();
        // layout: 4 W kernels, 4 U kernels, then biases i, f, o, g
        let bias_start = 4 * (2 * 3) + 4 * (3 * 3);
        let b_f = &v[bias_start + 3..bias_start + 6];
        assert!(b_f.iter().all(|&x| x == 1.0), "forget bias {b_f:?}");
    }

    #[test]
    fn bptt_gradient_check_params() {
        let mut rng = StdRng::seed_from_u64(713);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let x = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.7).sin() * 0.5);
        let base = lstm.param_vector();

        lstm.zero_grad();
        let _ = lstm.forward(&x, Mode::Train);
        let mut gout = Matrix::zeros(5, 4);
        for j in 0..4 {
            gout[(4, j)] = 1.0;
        }
        let _ = lstm.backward(&gout);
        let analytic = lstm.grad_vector();

        let eps = 1e-3f32;
        let n = base.len();
        let picks: Vec<usize> = (0..14).map(|i| i * (n / 14)).chain([n - 1]).collect();
        for k in picks {
            let mut plus = base.clone();
            plus[k] += eps;
            lstm.set_param_vector(&plus);
            let lp = loss(&mut lstm, &x);
            let mut minus = base.clone();
            minus[k] -= eps;
            lstm.set_param_vector(&minus);
            let lm = loss(&mut lstm, &x);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < 2e-2, "param {k}: fd={fd} analytic={}", analytic[k]);
        }
    }

    #[test]
    fn bptt_gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(714);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x = Matrix::from_fn(4, 2, |r, c| ((r + c) as f32 * 0.9).cos() * 0.4);
        let _ = lstm.forward(&x, Mode::Train);
        let mut gout = Matrix::zeros(4, 3);
        for j in 0..3 {
            gout[(3, j)] = 1.0;
        }
        let dx = lstm.backward(&gout);
        let eps = 1e-3f32;
        for r in 0..4 {
            for c in 0..2 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let lp = loss(&mut lstm, &xp);
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lm = loss(&mut lstm, &xm);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 5e-3,
                    "input ({r},{c}): fd={fd} analytic={}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn lstm_learns_a_memory_task() {
        // classify sequences by their FIRST element — requires carrying
        // information across the whole sequence
        use crate::activation::Activation;
        use crate::dense::Dense;
        use crate::loss::softmax_cross_entropy;
        use crate::optim::{Adam, Optimizer};
        use mdl_tensor::init::gaussian;

        let mut rng = StdRng::seed_from_u64(715);
        let make = |rng: &mut StdRng| -> (Matrix, usize) {
            let label = (rng.gen::<f32>() < 0.5) as usize;
            let first = if label == 0 { -1.0 } else { 1.0 };
            let x = Matrix::from_fn(8, 2, |r, c| {
                if r == 0 {
                    first
                } else {
                    gaussian(rng) * 0.3 + c as f32 * 0.1
                }
            });
            (x, label)
        };
        let mut lstm = Lstm::new(2, 6, &mut rng);
        let mut head = Dense::new(6, 2, Activation::Identity, &mut rng);
        // separate optimizers: Adam state is positional per model
        let mut opt_lstm = Adam::new(0.02);
        let mut opt_head = Adam::new(0.02);

        for _ in 0..300 {
            let (x, y) = make(&mut rng);
            lstm.zero_grad();
            head.zero_grad();
            let states = lstm.forward(&x, Mode::Train);
            let last = Matrix::row_vector(states.row(states.rows() - 1));
            let logits = head.forward(&last, Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &[y]);
            let d_last = head.backward(&grad);
            let mut gout = Matrix::zeros(states.rows(), 6);
            gout.row_mut(states.rows() - 1).copy_from_slice(d_last.row(0));
            let _ = lstm.backward(&gout);
            opt_lstm.step(&mut lstm);
            opt_head.step(&mut head);
        }
        let mut correct = 0;
        for _ in 0..100 {
            let (x, y) = make(&mut rng);
            let enc = lstm.encode(&x);
            let pred = head.forward(&enc, Mode::Eval).argmax_rows()[0];
            correct += usize::from(pred == y);
        }
        assert!(correct > 85, "LSTM should remember the first token: {correct}/100");
    }
}
