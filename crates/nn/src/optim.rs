//! First-order optimizers (paper references [10]–[12]).
//!
//! Optimizers are driven through [`crate::Layer::visit_params`]: each call to
//! [`Optimizer::step`] walks the model's parameters in their stable visiting
//! order, so per-parameter state (Adam moments etc.) is matched positionally.

use crate::layer::Layer;
use mdl_tensor::Matrix;

/// A stateful first-order optimizer.
pub trait Optimizer: Send {
    /// Applies one update to every parameter of `model` using the gradients
    /// accumulated since the last [`Layer::zero_grad`].
    fn step(&mut self, model: &mut dyn Layer);

    /// Current base learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the base learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent, optionally with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// SGD with the given learning rate, no momentum.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds decoupled L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |value, grad| {
            if wd > 0.0 {
                value.scale_mut(1.0 - lr * wd);
            }
            if momentum > 0.0 {
                if velocity.len() <= idx {
                    velocity.push(Matrix::zeros(value.rows(), value.cols()));
                }
                let v = &mut velocity[idx];
                v.scale_mut(momentum);
                v.add_scaled(-lr, grad);
                value.add_assign(v);
            } else {
                value.add_scaled(-lr, grad);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, paper reference [10]).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard hyper-parameters `β₁=0.9, β₂=0.999, ε=1e-8`.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Custom betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Self { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let (b1, b2, eps, lr, t) = (self.beta1, self.beta2, self.eps, self.lr, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let mut idx = 0usize;
        let m_all = &mut self.m;
        let v_all = &mut self.v;
        model.visit_params(&mut |value, grad| {
            if m_all.len() <= idx {
                m_all.push(Matrix::zeros(value.rows(), value.cols()));
                v_all.push(Matrix::zeros(value.rows(), value.cols()));
            }
            let m = &mut m_all[idx];
            let v = &mut v_all[idx];
            for ((mv, vv), (&g, val)) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(grad.as_slice().iter().zip(value.as_mut_slice().iter_mut()))
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *val -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad (Duchi et al., paper reference [11]).
#[derive(Debug, Clone)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: Vec<Matrix>,
}

impl AdaGrad {
    /// AdaGrad with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr, eps: 1e-8, accum: Vec::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, model: &mut dyn Layer) {
        let (lr, eps) = (self.lr, self.eps);
        let mut idx = 0usize;
        let accum = &mut self.accum;
        model.visit_params(&mut |value, grad| {
            if accum.len() <= idx {
                accum.push(Matrix::zeros(value.rows(), value.cols()));
            }
            let a = &mut accum[idx];
            for ((av, &g), val) in a
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice().iter())
                .zip(value.as_mut_slice().iter_mut())
            {
                *av += g * g;
                *val -= lr * g / (av.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp (Tieleman & Hinton, paper reference [12]).
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    mean_sq: Vec<Matrix>,
}

impl RmsProp {
    /// RMSProp with decay `0.9`.
    pub fn new(lr: f32) -> Self {
        Self { lr, decay: 0.9, eps: 1e-8, mean_sq: Vec::new() }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, model: &mut dyn Layer) {
        let (lr, decay, eps) = (self.lr, self.decay, self.eps);
        let mut idx = 0usize;
        let mean_sq = &mut self.mean_sq;
        model.visit_params(&mut |value, grad| {
            if mean_sq.len() <= idx {
                mean_sq.push(Matrix::zeros(value.rows(), value.cols()));
            }
            let s = &mut mean_sq[idx];
            for ((sv, &g), val) in s
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice().iter())
                .zip(value.as_mut_slice().iter_mut())
            {
                *sv = decay * *sv + (1.0 - decay) * g * g;
                *val -= lr * g / (sv.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::layer::{Mode, ParamVector};
    use mdl_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One quadratic-bowl step: minimise sum((W·1 - 0)²) style objective by
    /// driving a 1-layer model's output toward zero.
    fn loss_and_step(opt: &mut dyn Optimizer, steps: usize) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(30);
        let mut layer = Dense::new(4, 3, Activation::Identity, &mut rng);
        let x = Matrix::ones(8, 4);
        let target = Matrix::zeros(8, 3);
        let initial = {
            let y = layer.forward(&x, Mode::Eval);
            crate::loss::mse(&y, &target).0
        };
        let mut last = initial;
        for _ in 0..steps {
            layer.zero_grad();
            let y = layer.forward(&x, Mode::Train);
            let (l, g) = crate::loss::mse(&y, &target);
            last = l;
            let _ = layer.backward(&g);
            opt.step(&mut layer);
        }
        (initial, last)
    }

    #[test]
    fn sgd_decreases_loss() {
        let (initial, last) = loss_and_step(&mut Sgd::new(0.05), 50);
        assert!(last < initial * 0.1, "initial={initial} last={last}");
    }

    #[test]
    fn momentum_decreases_loss() {
        let (initial, last) = loss_and_step(&mut Sgd::with_momentum(0.02, 0.9), 50);
        assert!(last < initial * 0.1, "initial={initial} last={last}");
    }

    #[test]
    fn adam_decreases_loss() {
        let (initial, last) = loss_and_step(&mut Adam::new(0.05), 80);
        assert!(last < initial * 0.1, "initial={initial} last={last}");
    }

    #[test]
    fn adagrad_decreases_loss() {
        let (initial, last) = loss_and_step(&mut AdaGrad::new(0.5), 80);
        assert!(last < initial * 0.2, "initial={initial} last={last}");
    }

    #[test]
    fn rmsprop_decreases_loss() {
        let (initial, last) = loss_and_step(&mut RmsProp::new(0.01), 120);
        assert!(last < initial * 0.2, "initial={initial} last={last}");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut layer = Dense::new(4, 4, Activation::Identity, &mut rng);
        let before: f32 = layer.param_vector().iter().map(|v| v.abs()).sum();
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        layer.zero_grad();
        opt.step(&mut layer);
        let after: f32 = layer.param_vector().iter().map(|v| v.abs()).sum();
        assert!(after < before, "decay should shrink weights: {before} -> {after}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
