//! Shape-specialized execution plans: compile once, run many.
//!
//! The dynamic eval paths ([`Sequential::forward_eval`],
//! [`QuantizedModel::forward_eval`]) re-derive every shape and allocate
//! every temporary on each call. On a serving hot path the same model
//! runs the same batch shape thousands of times, so all of that work is
//! invariant. A [`Plan`] hoists it to *compile* time, once per
//! `(model, rows, width, precision)`:
//!
//! - the layer walk is specialized into a flat op list (one downcast per
//!   op per run, no virtual dispatch through `Box<dyn Layer>`);
//! - every inter-layer activation is laid into a shared
//!   [`mdl_tensor::Arena`] by buffer liveness (first-fit with reuse), so
//!   steady-state runs perform **zero heap allocation**;
//! - GEMM + bias + activation collapse into fused kernels: the f32 path
//!   uses [`mdl_tensor::kernel::gemm_bias_act`]'s epilogue hook, the
//!   int8 path folds bias, dequantize and activation into the
//!   accumulator drain ([`mdl_tensor::quant::Int8Matrix::gemm_row_drain`])
//!   so no full-size `i32` accumulator exists;
//! - recurrent layers scan through plan-owned pre-sliced workspaces
//!   (the same code the dynamic path runs, minus the per-call
//!   allocation and input copy).
//!
//! Planned results are bit-identical to the dynamic path for both
//! precisions, any layer stack and any thread count — the fused epilogue
//! applies the same activation to the same accumulated values in the
//! same order, and the int8 drain replays the exact integer
//! accumulation. Fusion can be disabled via [`PlanOptions`] to measure
//! its contribution in isolation.
//!
//! # Examples
//!
//! ```
//! use mdl_nn::{Activation, Dense, Layer, Sequential};
//! use mdl_nn::plan::{Plan, PlanModel, PlanOptions};
//! use mdl_tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut net = Sequential::new();
//! net.push(Dense::new(6, 16, Activation::Relu, &mut rng));
//! net.push(Dense::new(16, 3, Activation::Identity, &mut rng));
//!
//! let x = Matrix::ones(4, 6);
//! let mut plan = Plan::compile(PlanModel::F32(&net), 4, 6, PlanOptions::default()).unwrap();
//! let mut out = Matrix::default();
//! plan.run(PlanModel::F32(&net), &x, &mut out);
//! assert_eq!(out, net.forward_eval(&x));
//! ```

use crate::dense::{Dense, Dropout};
use crate::gru::{Gru, GruCache};
use crate::lstm::{Lstm, LstmCache};
use crate::quantized::{QGruWs, QLayer, QLstmWs, QuantizedModel, H_SCALE};
use crate::sequential::Sequential;
use mdl_tensor::quant::{quantize_value, symmetric_scale};
use mdl_tensor::{Arena, ArenaBuilder, BufferId, Matrix};

/// A borrowed model to compile against or execute with. The plan never
/// owns the weights: the same plan serves every clone of a model version
/// as long as the architecture matches what it was compiled from.
#[derive(Clone, Copy)]
pub enum PlanModel<'a> {
    /// The f32 eval path over a [`Sequential`].
    F32(&'a Sequential),
    /// The int8 quantized path over a [`QuantizedModel`].
    Int8(&'a QuantizedModel),
}

/// Compile-time knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Fuse bias + activation into the GEMM kernels (f32 epilogue hook /
    /// int8 accumulator drain). On by default; turn off to measure the
    /// fusion win — results are bit-identical either way.
    pub fuse: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self { fuse: true }
    }
}

/// Why a model can't be planned. All cases leave the dynamic path as the
/// correct fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The model has no layers.
    Empty,
    /// A layer kind the planner doesn't specialize (e.g. `bigru`, or a
    /// custom layer without an `as_any` override).
    Unsupported(&'static str),
    /// A layer's expected input width doesn't match what the previous
    /// layer produces (or the requested input width).
    Shape {
        /// Index of the offending layer.
        layer: usize,
        /// Width the layer expects.
        expected: usize,
        /// Width the plan would feed it.
        got: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Empty => write!(f, "cannot plan an empty model"),
            PlanError::Unsupported(kind) => write!(f, "unsupported layer kind: {kind}"),
            PlanError::Shape { layer, expected, got } => {
                write!(f, "layer {layer} expects width {expected}, plan feeds {got}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Compile-time facts about a plan, surfaced to observability.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanStats {
    /// Executable ops in the plan (including the int8 input quantize).
    pub ops: usize,
    /// Ops running a fused kernel (0 when compiled with `fuse: false`).
    pub fused_ops: usize,
    /// Bytes of shared arena backing all inter-layer activations.
    pub arena_bytes: usize,
}

/// Where an op reads from / writes to.
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// The caller's input matrix (first op only — never copied).
    Input,
    /// A span in the shared arena.
    Buf(BufferId),
    /// The caller's output matrix (last op only).
    Output,
}

enum OpF32 {
    /// `dst = act(src · W + b)` for the `Dense` at `layer`.
    Dense { layer: usize, src: Loc, dst: Loc },
    /// Whole-sequence GRU scan through a plan-owned cache.
    Gru { layer: usize, src: Loc, dst: Loc, cache: GruCache },
    /// Whole-sequence LSTM scan through a plan-owned cache.
    Lstm { layer: usize, src: Loc, dst: Loc, cache: LstmCache },
    /// Plain copy (a trailing eval-mode dropout is the identity).
    Copy { src: Loc, dst: Loc },
}

enum OpI8 {
    /// Dynamic-scale input quantization into the arena; writes `slot`.
    Quantize { dst: BufferId, slot: usize },
    /// Mid-stack quantized dense: int8 in, int8 out (+ fresh scale).
    Dense {
        layer: usize,
        src: BufferId,
        dst: BufferId,
        sin: usize,
        sout: usize,
        /// Accumulator-domain bias, refilled each run from the input scale.
        bq: Vec<i32>,
        /// Full `rows × out` integer accumulator.
        acc: Vec<i32>,
        /// Fused mode's single-pass value buffer (`rows × out`).
        values: Vec<f32>,
    },
    /// Final quantized dense: int8 in, f32 logits out.
    DenseLast { layer: usize, src: BufferId, sin: usize, bq: Vec<i32>, acc: Vec<i32> },
    /// Quantized GRU scan; `dst: None` means the f32 states are the
    /// model output (last layer), otherwise the int8 states feed onward
    /// through `(buffer, scale slot)`.
    Gru { layer: usize, src: BufferId, sin: usize, dst: Option<(BufferId, usize)>, ws: QGruWs },
    /// Quantized LSTM scan (same output convention as `Gru`).
    Lstm { layer: usize, src: BufferId, sin: usize, dst: Option<(BufferId, usize)>, ws: QLstmWs },
}

enum Body {
    F32 { ops: Vec<OpF32>, arena: Arena<f32> },
    Int8 { ops: Vec<OpI8>, arena: Arena<i8>, scales: Vec<f32> },
}

/// A compiled, shape-specialized execution plan. See the module docs.
///
/// A plan is tied to the architecture and shape it was compiled from:
/// [`Plan::run`] panics if handed a model of a different structure or an
/// input of a different shape (callers key plan caches by model version
/// and batch shape, so a mismatch is a caller bug, not a data error).
pub struct Plan {
    rows: usize,
    in_cols: usize,
    out_cols: usize,
    fuse: bool,
    body: Body,
    stats: PlanStats,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("rows", &self.rows)
            .field("in_cols", &self.in_cols)
            .field("out_cols", &self.out_cols)
            .field("fuse", &self.fuse)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Plan {
    /// Compiles a plan for `rows × cols` inputs against `model`.
    ///
    /// Walks the layer stack once, checks shapes, sizes every recurrent
    /// workspace, and lays all inter-layer activations into one shared
    /// arena by liveness. The f32 path supports Dense, Dropout
    /// (eval-mode identity), GRU and LSTM; anything else (e.g. `BiGru`,
    /// nested containers) returns [`PlanError::Unsupported`] and the
    /// caller keeps the dynamic path.
    pub fn compile(
        model: PlanModel<'_>,
        rows: usize,
        cols: usize,
        opts: PlanOptions,
    ) -> Result<Plan, PlanError> {
        assert!(rows > 0 && cols > 0, "plan shape must be non-empty");
        match model {
            PlanModel::F32(seq) => Self::compile_f32(seq, rows, cols, opts),
            PlanModel::Int8(q) => Self::compile_i8(q, rows, cols, opts),
        }
    }

    fn compile_f32(
        seq: &Sequential,
        rows: usize,
        cols: usize,
        opts: PlanOptions,
    ) -> Result<Plan, PlanError> {
        let layers = seq.layers();
        if layers.is_empty() {
            return Err(PlanError::Empty);
        }
        let mut b = ArenaBuilder::new();
        let mut ops = Vec::new();
        let mut fused_ops = 0usize;
        let mut cur = Loc::Input;
        let mut cur_cols = cols;
        for (i, layer) in layers.iter().enumerate() {
            let last = i + 1 == layers.len();
            let info = layer.info();
            let any = layer.as_any().ok_or(PlanError::Unsupported(info.kind))?;
            if any.downcast_ref::<Dropout>().is_some() {
                // eval-mode identity: alias the location, no op recorded
                continue;
            }
            if info.in_dim != cur_cols {
                return Err(PlanError::Shape { layer: i, expected: info.in_dim, got: cur_cols });
            }
            let dst = if last { Loc::Output } else { Loc::Buf(b.alloc(rows * info.out_dim)) };
            if any.downcast_ref::<Dense>().is_some() {
                if opts.fuse {
                    fused_ops += 1;
                }
                ops.push(OpF32::Dense { layer: i, src: cur, dst });
            } else if let Some(g) = any.downcast_ref::<Gru>() {
                ops.push(OpF32::Gru { layer: i, src: cur, dst, cache: g.plan_cache(rows) });
            } else if let Some(l) = any.downcast_ref::<Lstm>() {
                ops.push(OpF32::Lstm { layer: i, src: cur, dst, cache: l.plan_cache(rows) });
            } else {
                return Err(PlanError::Unsupported(info.kind));
            }
            if let Loc::Buf(id) = cur {
                b.release(id);
            }
            cur = dst;
            cur_cols = info.out_dim;
        }
        // a trailing (or sole) dropout leaves the chain short of Output
        if !matches!(cur, Loc::Output) {
            ops.push(OpF32::Copy { src: cur, dst: Loc::Output });
        }
        let arena = b.build::<f32>();
        let stats = PlanStats { ops: ops.len(), fused_ops, arena_bytes: arena.size_bytes() };
        Ok(Plan {
            rows,
            in_cols: cols,
            out_cols: cur_cols,
            fuse: opts.fuse,
            body: Body::F32 { ops, arena },
            stats,
        })
    }

    fn compile_i8(
        q: &QuantizedModel,
        rows: usize,
        cols: usize,
        opts: PlanOptions,
    ) -> Result<Plan, PlanError> {
        let layers = q.layers();
        if layers.is_empty() {
            return Err(PlanError::Empty);
        }
        let first = layers[0].info();
        if first.in_dim != cols {
            return Err(PlanError::Shape { layer: 0, expected: first.in_dim, got: cols });
        }
        let mut b = ArenaBuilder::new();
        let mut ops = Vec::new();
        let mut fused_ops = 0usize;
        let mut slots = 0usize;
        let mut next_slot = || {
            slots += 1;
            slots - 1
        };

        let input = b.alloc(rows * cols);
        ops.push(OpI8::Quantize { dst: input, slot: next_slot() });
        let mut cur = input;
        let mut cur_slot = 0usize;
        let mut cur_cols = cols;
        for (i, layer) in layers.iter().enumerate() {
            let last = i + 1 == layers.len();
            let info = layer.info();
            if info.in_dim != cur_cols {
                return Err(PlanError::Shape { layer: i, expected: info.in_dim, got: cur_cols });
            }
            let out_dim = info.out_dim;
            match layer {
                QLayer::Dense(_) => {
                    let bq = vec![0i32; out_dim];
                    let acc = vec![0i32; rows * out_dim];
                    if opts.fuse {
                        fused_ops += 1;
                    }
                    if last {
                        ops.push(OpI8::DenseLast { layer: i, src: cur, sin: cur_slot, bq, acc });
                    } else {
                        // size only the buffers the compiled mode touches
                        let values =
                            if opts.fuse { vec![0.0f32; rows * out_dim] } else { Vec::new() };
                        let dst = b.alloc(rows * out_dim);
                        let sout = next_slot();
                        ops.push(OpI8::Dense {
                            layer: i,
                            src: cur,
                            dst,
                            sin: cur_slot,
                            sout,
                            bq,
                            acc,
                            values,
                        });
                        b.release(cur);
                        cur = dst;
                        cur_slot = sout;
                    }
                }
                QLayer::Gru(g) => {
                    let ws = g.make_ws(rows);
                    if last {
                        ops.push(OpI8::Gru { layer: i, src: cur, sin: cur_slot, dst: None, ws });
                    } else {
                        let dst = b.alloc(rows * out_dim);
                        let sout = next_slot();
                        ops.push(OpI8::Gru {
                            layer: i,
                            src: cur,
                            sin: cur_slot,
                            dst: Some((dst, sout)),
                            ws,
                        });
                        b.release(cur);
                        cur = dst;
                        cur_slot = sout;
                    }
                }
                QLayer::Lstm(l) => {
                    let ws = l.make_ws(rows);
                    if last {
                        ops.push(OpI8::Lstm { layer: i, src: cur, sin: cur_slot, dst: None, ws });
                    } else {
                        let dst = b.alloc(rows * out_dim);
                        let sout = next_slot();
                        ops.push(OpI8::Lstm {
                            layer: i,
                            src: cur,
                            sin: cur_slot,
                            dst: Some((dst, sout)),
                            ws,
                        });
                        b.release(cur);
                        cur = dst;
                        cur_slot = sout;
                    }
                }
            }
            cur_cols = out_dim;
        }
        let arena = b.build::<i8>();
        let stats = PlanStats { ops: ops.len(), fused_ops, arena_bytes: arena.size_bytes() };
        Ok(Plan {
            rows,
            in_cols: cols,
            out_cols: cur_cols,
            fuse: opts.fuse,
            body: Body::Int8 { ops, arena, scales: vec![0.0; slots] },
            stats,
        })
    }

    /// Rows (batch size / sequence length) the plan was compiled for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input width the plan was compiled for.
    pub fn in_cols(&self) -> usize {
        self.in_cols
    }

    /// Output width the plan produces.
    pub fn out_cols(&self) -> usize {
        self.out_cols
    }

    /// Compile-time stats (op counts, fused-op count, arena footprint).
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// Executes the plan: `out` becomes exactly what the dynamic path
    /// (`forward_eval`) would return for `x`, bit for bit. Steady-state
    /// calls perform no heap allocation (`out` is resized on first use
    /// and reused after).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not the compiled `rows × in_cols` shape, if the
    /// model's precision doesn't match the compiled body, or if the
    /// layer stack differs structurally from compile time.
    pub fn run(&mut self, model: PlanModel<'_>, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            x.shape(),
            (self.rows, self.in_cols),
            "plan compiled for a different input shape"
        );
        out.resize_to(self.rows, self.out_cols);
        match (&mut self.body, model) {
            (Body::F32 { ops, arena }, PlanModel::F32(seq)) => {
                run_f32(ops, arena, seq, self.rows, self.fuse, x, out);
            }
            (Body::Int8 { ops, arena, scales }, PlanModel::Int8(q)) => {
                run_i8(ops, arena, scales, q, self.rows, self.fuse, x, out);
            }
            _ => panic!("plan precision does not match the model"),
        }
    }
}

/// Resolves an op's read/write pair against the arena and the caller's
/// input/output buffers.
fn rw<'a>(
    arena: &'a mut Arena<f32>,
    x: &'a [f32],
    out: &'a mut [f32],
    src: Loc,
    dst: Loc,
) -> (&'a [f32], &'a mut [f32]) {
    match (src, dst) {
        (Loc::Input, Loc::Buf(d)) => (x, arena.slice_mut(d)),
        (Loc::Input, Loc::Output) => (x, out),
        (Loc::Buf(s), Loc::Buf(d)) => arena.read_write(s, d),
        (Loc::Buf(s), Loc::Output) => (arena.slice(s), out),
        _ => unreachable!("plan op reads Output or writes Input"),
    }
}

fn expect_layer<'a, T: 'static>(seq: &'a Sequential, idx: usize, kind: &str) -> &'a T {
    seq.layers()[idx]
        .as_any()
        .and_then(|any| any.downcast_ref::<T>())
        .unwrap_or_else(|| panic!("plan expects layer {idx} to be {kind}"))
}

fn run_f32(
    ops: &mut [OpF32],
    arena: &mut Arena<f32>,
    seq: &Sequential,
    rows: usize,
    fuse: bool,
    x: &Matrix,
    out: &mut Matrix,
) {
    for op in ops.iter_mut() {
        match op {
            OpF32::Dense { layer, src, dst } => {
                let d: &Dense = expect_layer(seq, *layer, "dense");
                let (xs, os) = rw(arena, x.as_slice(), out.as_mut_slice(), *src, *dst);
                d.eval_slice_into(rows, xs, os, fuse);
            }
            OpF32::Gru { layer, src, dst, cache } => {
                let g: &Gru = expect_layer(seq, *layer, "gru");
                let (xs, os) = rw(arena, x.as_slice(), out.as_mut_slice(), *src, *dst);
                g.scan_slice_into(rows, xs, cache);
                Gru::states_into(cache, os);
            }
            OpF32::Lstm { layer, src, dst, cache } => {
                let l: &Lstm = expect_layer(seq, *layer, "lstm");
                let (xs, os) = rw(arena, x.as_slice(), out.as_mut_slice(), *src, *dst);
                l.scan_slice_into(rows, xs, cache);
                Lstm::states_into(cache, os);
            }
            OpF32::Copy { src, dst } => {
                let (xs, os) = rw(arena, x.as_slice(), out.as_mut_slice(), *src, *dst);
                os.copy_from_slice(xs);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_i8(
    ops: &mut [OpI8],
    arena: &mut Arena<i8>,
    scales: &mut [f32],
    q: &QuantizedModel,
    rows: usize,
    fuse: bool,
    x: &Matrix,
    out: &mut Matrix,
) {
    let layers = q.layers();
    let dense_at = |idx: usize| match &layers[idx] {
        QLayer::Dense(d) => d,
        _ => panic!("plan expects layer {idx} to be dense"),
    };
    for op in ops.iter_mut() {
        match op {
            OpI8::Quantize { dst, slot } => {
                // same arithmetic as the dynamic path's QAct::quantize
                let scale = symmetric_scale(x.max_abs());
                scales[*slot] = scale;
                for (b, &v) in arena.slice_mut(*dst).iter_mut().zip(x.as_slice()) {
                    *b = quantize_value(v, scale);
                }
            }
            OpI8::Dense { layer, src, dst, sin, sout, bq, acc, values } => {
                let d = dense_at(*layer);
                let x_scale = scales[*sin];
                d.fill_bias_acc(x_scale, bq);
                let (xs, os) = arena.read_write(*src, *dst);
                scales[*sout] = if fuse {
                    d.forward_q_fused(rows, xs, x_scale, bq, acc, values, os)
                } else {
                    d.forward_q_into(rows, xs, x_scale, bq, acc, os)
                };
            }
            OpI8::DenseLast { layer, src, sin, bq, acc } => {
                let d = dense_at(*layer);
                let x_scale = scales[*sin];
                d.fill_bias_acc(x_scale, bq);
                let xs = arena.slice(*src);
                if fuse {
                    d.forward_f32_fused(rows, xs, x_scale, bq, acc, out.as_mut_slice());
                } else {
                    d.forward_f32_into(rows, xs, x_scale, bq, acc, out.as_mut_slice());
                }
            }
            OpI8::Gru { layer, src, sin, dst, ws } => {
                let g = match &layers[*layer] {
                    QLayer::Gru(g) => g,
                    _ => panic!("plan expects layer {layer} to be gru"),
                };
                let x_scale = scales[*sin];
                match dst {
                    Some((d, sout)) => {
                        let (xs, os) = arena.read_write(*src, *d);
                        g.scan_ws(rows, xs, x_scale, ws, None, Some(os));
                        // hidden states always carry the fixed scale
                        scales[*sout] = H_SCALE;
                    }
                    None => {
                        let xs = arena.slice(*src);
                        g.scan_ws(rows, xs, x_scale, ws, Some(out.as_mut_slice()), None);
                    }
                }
            }
            OpI8::Lstm { layer, src, sin, dst, ws } => {
                let l = match &layers[*layer] {
                    QLayer::Lstm(l) => l,
                    _ => panic!("plan expects layer {layer} to be lstm"),
                };
                let x_scale = scales[*sin];
                match dst {
                    Some((d, sout)) => {
                        let (xs, os) = arena.read_write(*src, *d);
                        l.scan_ws(rows, xs, x_scale, ws, None, Some(os));
                        scales[*sout] = H_SCALE;
                    }
                    None => {
                        let xs = arena.slice(*src);
                        l.scan_ws(rows, xs, x_scale, ws, Some(out.as_mut_slice()), None);
                    }
                }
            }
        }
    }
}

/// Picks the batch shape a continuous batcher should dispatch for a
/// backlog of `backlog` waiting requests under a `max_batch` cap.
///
/// The negotiated shape is the largest power of two that fits both the
/// backlog and the cap (a full `max_batch` is used as-is even when it is
/// not a power of two). Restricting dispatch to this ladder keeps the
/// number of distinct `(version, shape)` plan-cache keys logarithmic in
/// `max_batch`, so after warm-up every refill lands on an already
/// compiled, zero-allocation plan instead of forcing a fresh compile for
/// each odd batch size the queue happens to produce.
///
/// Returns 0 when the backlog is empty.
///
/// # Examples
///
/// ```
/// use mdl_nn::plan::negotiated_rows;
/// assert_eq!(negotiated_rows(13, 8), 8);  // cap wins
/// assert_eq!(negotiated_rows(5, 8), 4);   // rounds down to the ladder
/// assert_eq!(negotiated_rows(3, 8), 2);
/// assert_eq!(negotiated_rows(1, 8), 1);
/// assert_eq!(negotiated_rows(0, 8), 0);   // nothing waiting
/// assert_eq!(negotiated_rows(7, 6), 6);   // full batches keep the cap
/// ```
pub fn negotiated_rows(backlog: usize, max_batch: usize) -> usize {
    let cap = max_batch.max(1);
    if backlog == 0 {
        return 0;
    }
    if backlog >= cap {
        return cap;
    }
    // largest power of two <= backlog (backlog >= 1 here)
    1 << (usize::BITS - 1 - backlog.leading_zeros())
}

/// What a [`PlanCache`] lookup did, so callers can account cache
/// hits/misses without re-deriving them.
#[derive(Debug, Clone, Copy)]
pub enum PlanLookup {
    /// Ran on an already-cached plan.
    Hit,
    /// Compiled, cached and ran a fresh plan for this key.
    Compiled(PlanStats),
    /// The model can't be planned for this shape. `fresh` is true the
    /// first time the rejection is seen (and cached); later lookups of
    /// the same key report `fresh: false` and cost one hash probe.
    Rejected {
        /// Whether this rejection was just discovered (vs replayed).
        fresh: bool,
    },
}

impl PlanLookup {
    /// Whether the lookup executed the plan (hit or fresh compile).
    pub fn ran(&self) -> bool {
        matches!(self, PlanLookup::Hit | PlanLookup::Compiled(_))
    }
}

/// A capped cache of compiled [`Plan`]s keyed by
/// `(model version, rows, cols)`.
///
/// Rejections are cached too, so an unplannable model costs one compile
/// attempt per key — not one per batch. When the cache is full, the
/// caller-supplied retain predicate decides which versions survive
/// (serving keeps the current and pinned-rollback versions); per-version
/// keying means a hot swap invalidates exactly the swapped version's
/// plans and nothing else.
#[derive(Debug, Default)]
pub struct PlanCache {
    cap: usize,
    plans: std::collections::HashMap<(u64, usize, usize), Option<Plan>>,
}

impl PlanCache {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Self { cap: cap.max(1), plans: std::collections::HashMap::new() }
    }

    /// Number of cached entries (including cached rejections).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Whether a plan (or rejection) is cached for this key.
    pub fn contains(&self, version: u64, rows: usize, cols: usize) -> bool {
        self.plans.contains_key(&(version, rows, cols))
    }

    /// The cached batch shapes (rows) compiled for `version` at input
    /// width `cols`, unordered. Continuous batchers consult this to stay
    /// on already-compiled shapes (see [`negotiated_rows`]).
    pub fn shapes_for(&self, version: u64, cols: usize) -> Vec<usize> {
        self.plans
            .iter()
            .filter(|(&(v, _, c), plan)| v == version && c == cols && plan.is_some())
            .map(|(&(_, rows, _), _)| rows)
            .collect()
    }

    /// Runs `x` through the cached plan for `(version, x.shape())`,
    /// compiling one on first sight. Returns what happened; on
    /// [`PlanLookup::Rejected`] nothing ran and the caller falls back to
    /// the dynamic path. `retain` is consulted only on eviction: entries
    /// whose version it rejects are dropped to make room.
    pub fn run(
        &mut self,
        version: u64,
        model: PlanModel<'_>,
        x: &Matrix,
        out: &mut Matrix,
        opts: PlanOptions,
        retain: impl Fn(u64) -> bool,
    ) -> PlanLookup {
        let key = (version, x.rows(), x.cols());
        if let Some(cached) = self.plans.get_mut(&key) {
            return match cached {
                Some(plan) => {
                    plan.run(model, x, out);
                    PlanLookup::Hit
                }
                None => PlanLookup::Rejected { fresh: false },
            };
        }
        if self.plans.len() >= self.cap {
            self.plans.retain(|&(v, _, _), _| v == version || retain(v));
        }
        let compiled = Plan::compile(model, x.rows(), x.cols(), opts).ok();
        match self.plans.entry(key).or_insert(compiled) {
            Some(plan) => {
                plan.run(model, x, out);
                PlanLookup::Compiled(plan.stats())
            }
            None => PlanLookup::Rejected { fresh: true },
        }
    }
}
