//! Per-layer profiling: forward/backward time and FLOP counts for every
//! layer of a [`crate::Sequential`], published into an observability
//! registry.
//!
//! A [`LayerProfiler`] is created from an [`Obs`] handle and installed
//! with [`crate::Layer::set_profiler`] (a no-op for layers that don't
//! support it). At attach time the [`crate::Sequential`] resolves one set
//! of counter handles per layer, so recording on the hot path is pure
//! atomic adds — no locks, no allocation, no name formatting.
//!
//! Counter naming: `nn.layer.<index>.<kind>.{fwd_calls, bwd_calls,
//! fwd_ns, bwd_ns, flops}` — e.g. `nn.layer.0.gru.fwd_ns`. Times come
//! from the shared [`Clock`], so under a sim clock they are a pure
//! function of the simulation (zero unless the sim advances mid-pass)
//! and profiled runs stay bit-reproducible.

use crate::layer::LayerInfo;
use mdl_obs::{Clock, Counter, Obs};
use std::sync::Arc;

/// Factory for per-layer counters, shared by everything profiling into
/// the same observability session.
pub struct LayerProfiler {
    clock: Clock,
    registry: mdl_obs::MetricsRegistry,
}

impl std::fmt::Debug for LayerProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LayerProfiler({:?})", self.clock)
    }
}

impl LayerProfiler {
    /// A profiler publishing into `obs`'s registry, timed by its clock.
    pub fn new(obs: &Obs) -> Arc<Self> {
        Arc::new(Self { clock: obs.clock().clone(), registry: obs.registry().clone() })
    }

    /// Current clock reading.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Resolves the counter handles for one model's layer stack.
    pub(crate) fn handles_for(&self, infos: &[LayerInfo]) -> Vec<LayerHandles> {
        infos
            .iter()
            .enumerate()
            .map(|(i, info)| {
                let name = |field: &str| format!("nn.layer.{i}.{}.{field}", info.kind);
                LayerHandles {
                    fwd_calls: self.registry.counter(&name("fwd_calls")),
                    bwd_calls: self.registry.counter(&name("bwd_calls")),
                    fwd_ns: self.registry.counter(&name("fwd_ns")),
                    bwd_ns: self.registry.counter(&name("bwd_ns")),
                    flops: self.registry.counter(&name("flops")),
                    macs: info.macs,
                }
            })
            .collect()
    }
}

/// The resolved counters of one layer; see [`LayerProfiler`].
pub(crate) struct LayerHandles {
    fwd_calls: Counter,
    bwd_calls: Counter,
    fwd_ns: Counter,
    bwd_ns: Counter,
    flops: Counter,
    macs: u64,
}

impl LayerHandles {
    /// Records one forward pass over `rows` examples.
    pub(crate) fn record_fwd(&self, rows: usize, elapsed_ns: u64) {
        self.fwd_calls.inc();
        self.fwd_ns.add(elapsed_ns);
        // one multiply–accumulate = 2 FLOPs, macs is per example
        self.flops.add(2 * self.macs * rows as u64);
    }

    /// Records one backward pass.
    pub(crate) fn record_bwd(&self, elapsed_ns: u64) {
        self.bwd_calls.inc();
        self.bwd_ns.add(elapsed_ns);
    }
}

/// A profiler attached to one [`crate::Sequential`]: the shared clock
/// plus one handle set per layer.
pub(crate) struct Attached {
    pub(crate) profiler: Arc<LayerProfiler>,
    pub(crate) handles: Vec<LayerHandles>,
}

impl Attached {
    pub(crate) fn new(profiler: Arc<LayerProfiler>, infos: &[LayerInfo]) -> Self {
        let handles = profiler.handles_for(infos);
        Self { profiler, handles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::layer::{Layer, Mode};
    use crate::sequential::Sequential;
    use mdl_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profiled_net(obs: &Obs) -> Sequential {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, Activation::Tanh, &mut rng));
        net.push(Dense::new(5, 2, Activation::Identity, &mut rng));
        net.set_profiler(Some(LayerProfiler::new(obs)));
        net
    }

    #[test]
    fn counts_calls_and_flops_per_layer() {
        let obs = Obs::sim();
        let mut net = profiled_net(&obs);
        let x = Matrix::ones(4, 3);
        let _ = net.forward(&x, Mode::Train);
        let _ = net.backward(&Matrix::ones(4, 2));
        let _ = net.forward_eval(&x);

        let snap = obs.snapshot();
        assert_eq!(snap.counter("nn.layer.0.dense.fwd_calls"), Some(2));
        assert_eq!(snap.counter("nn.layer.0.dense.bwd_calls"), Some(1));
        // dense 3→5: 15 macs/example × 2 flops × 4 rows × 2 passes
        assert_eq!(snap.counter("nn.layer.0.dense.flops"), Some(2 * 15 * 4 * 2));
        assert_eq!(snap.counter("nn.layer.1.dense.flops"), Some(2 * 10 * 4 * 2));
        // sim clock never advanced mid-pass, so recorded times are zero
        assert_eq!(snap.counter("nn.layer.0.dense.fwd_ns"), Some(0));
    }

    #[test]
    fn detaching_stops_recording() {
        let obs = Obs::sim();
        let mut net = profiled_net(&obs);
        net.set_profiler(None);
        let _ = net.forward(&Matrix::ones(2, 3), Mode::Eval);
        assert_eq!(obs.snapshot().counter("nn.layer.0.dense.fwd_calls"), Some(0));
    }

    #[test]
    fn profiled_forward_matches_unprofiled() {
        let obs = Obs::sim();
        let mut rng = StdRng::seed_from_u64(9);
        let mut plain = Sequential::new();
        plain.push(Dense::new(3, 4, Activation::Relu, &mut rng));
        let mut rng = StdRng::seed_from_u64(9);
        let mut profiled = Sequential::new();
        profiled.push(Dense::new(3, 4, Activation::Relu, &mut rng));
        profiled.set_profiler(Some(LayerProfiler::new(&obs)));

        let x = Matrix::from_rows(&[&[0.3, -1.0, 0.5]]);
        assert!(profiled.forward_eval(&x).approx_eq(&plain.forward_eval(&x), 0.0));
        let a = profiled.forward(&x, Mode::Train);
        let b = plain.forward(&x, Mode::Train);
        assert!(a.approx_eq(&b, 0.0));
        assert!(profiled
            .backward(&Matrix::ones(1, 4))
            .approx_eq(&plain.backward(&Matrix::ones(1, 4)), 0.0));
    }
}
