//! Quantized inference: int8 Dense/GRU/LSTM forward passes that run the
//! [`mdl_tensor::kernel::int8`] GEMM end-to-end — integer weights,
//! integer activations, integer accumulation — with **no f32 round-trip**
//! of any matrix product.
//!
//! # Execution scheme
//!
//! Weights carry per-output-channel scales ([`Int8Matrix`]); activations
//! carry one per-tensor scale, chosen dynamically (calibration-free) from
//! the tensor that actually flows through. Between layers the activation
//! tensor stays int8: each layer reads quantized bytes, accumulates in
//! `i32`, folds the bias into the accumulator domain
//! (`round(b_j / (s_x · s_w_j))`), applies its nonlinearity in scalar
//! f32 on the rescaled accumulator values, and saturating-requantizes
//! the result for the next layer. Only the final layer emits f32 logits.
//!
//! Recurrent layers exploit the bounded hidden state: GRU and LSTM
//! hidden vectors satisfy `|h| ≤ 1` by construction (convex combination
//! of `tanh` outputs; `o ⊙ tanh(c)`), so `h` quantizes at the fixed
//! scale `1/127` with no dynamic pass. The whole-sequence input
//! projections `X·W` run as one int8 GEMM up front; each timestep then
//! performs only int8 recurrent matvecs plus scalar f32 gate math. The
//! LSTM cell state `c` is unbounded and stays f32 (it never enters a
//! matrix product). Gate biases likewise stay f32 for the recurrent
//! layers: a gate pre-activation mixes two accumulator domains (input
//! scale × weight scale vs. hidden scale × recurrent scale), so there is
//! no single integer domain to fold the bias into.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::gru::Gru;
use crate::layer::LayerInfo;
use crate::lstm::Lstm;
use crate::sequential::Sequential;
use mdl_tensor::quant::{quantize_value, symmetric_scale, Int8Matrix};
use mdl_tensor::stats::softmax_rows;
use mdl_tensor::Matrix;

/// Fixed quantization scale for recurrent hidden states (`|h| ≤ 1`).
pub(crate) const H_SCALE: f32 = 1.0 / 127.0;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A per-tensor-quantized activation flowing between quantized layers.
pub(crate) struct QAct {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: f32,
}

impl QAct {
    fn quantize(x: &Matrix) -> Self {
        let scale = symmetric_scale(x.max_abs());
        let data = x.as_slice().iter().map(|&v| quantize_value(v, scale)).collect();
        Self { rows: x.rows(), cols: x.cols(), data, scale }
    }
}

/// One pass over freshly-drained integer accumulators: folds the
/// accumulator-domain bias, dequantizes through `x_scale` and the
/// per-channel weight scales, applies the (monomorphized) activation
/// into `values`, and returns the running max-abs — exactly the
/// per-element chain of [`QDense::forward_q_into`]'s two passes, done
/// once, in the same row-major order.
fn drain_values<F: Fn(f32) -> f32>(
    acc: &[i32],
    bq: &[i32],
    scales: &[f32],
    x_scale: f32,
    out_dim: usize,
    values: &mut [f32],
    act: F,
) -> f32 {
    let mut max_abs = 0.0f32;
    for (row, vrow) in acc.chunks_exact(out_dim).zip(values.chunks_exact_mut(out_dim)) {
        for (((&a, v), &bqj), &sj) in row.iter().zip(vrow).zip(bq).zip(scales) {
            let val = act(a.saturating_add(bqj) as f32 * x_scale * sj);
            *v = val;
            max_abs = max_abs.max(val.abs());
        }
    }
    max_abs
}

/// Quantized fully-connected layer: int8 weights, accumulator-domain
/// integer bias, dynamic output requantization.
pub(crate) struct QDense {
    w: Int8Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl QDense {
    fn from_dense(d: &Dense) -> Self {
        Self {
            w: Int8Matrix::quantize(d.weight()),
            bias: d.bias().as_slice().to_vec(),
            activation: d.activation(),
        }
    }

    /// Folds the f32 bias into the accumulator domain for an input scale:
    /// `bq_j = round(b_j / (s_x · s_w_j))`. `bq` must be `out_dim` long.
    pub(crate) fn fill_bias_acc(&self, x_scale: f32, bq: &mut [i32]) {
        for ((slot, &b), &sw) in bq.iter_mut().zip(&self.bias).zip(self.w.scales()) {
            *slot = (b / (x_scale * sw)).round() as i32;
        }
    }

    /// Integer accumulators with the bias already folded in:
    /// `acc[i][j] = Σ_t xq · wq + bq_j`, so the value domain is recovered
    /// as `acc · s_x · s_w_j`.
    fn accumulate_into(&self, rows: usize, x: &[i8], bq: &[i32], acc: &mut [i32]) {
        let out_dim = self.w.out_dim();
        self.w.gemm_into(rows, x, acc, false);
        for row in acc.chunks_mut(out_dim) {
            for (slot, &b) in row.iter_mut().zip(bq) {
                *slot = slot.saturating_add(b);
            }
        }
    }

    #[inline]
    fn value(&self, acc: i32, j: usize, x_scale: f32) -> f32 {
        self.activation.apply(acc as f32 * x_scale * self.w.scales()[j])
    }

    /// Unfused quantized forward over raw slices: full GEMM into `acc`,
    /// then two value passes (scale search, then saturated bytes into
    /// `out`). Returns the output's dynamic scale. Bit-identical to the
    /// historical two-pass path; the plan's unfused mode and
    /// [`QDense::forward_q`] both route here.
    pub(crate) fn forward_q_into(
        &self,
        rows: usize,
        x: &[i8],
        x_scale: f32,
        bq: &[i32],
        acc: &mut [i32],
        out: &mut [i8],
    ) -> f32 {
        let out_dim = self.w.out_dim();
        self.accumulate_into(rows, x, bq, acc);
        let mut max_abs = 0.0f32;
        for (idx, &a) in acc.iter().enumerate() {
            max_abs = max_abs.max(self.value(a, idx % out_dim, x_scale).abs());
        }
        let scale = symmetric_scale(max_abs);
        for ((slot, &a), idx) in out.iter_mut().zip(acc.iter()).zip(0..) {
            *slot = quantize_value(self.value(a, idx % out_dim, x_scale), scale);
        }
        scale
    }

    /// Fused quantized forward: one dispatched GEMM fills the integer
    /// accumulators, then a single monomorphized drain pass folds the
    /// bias, dequantizes, applies the activation and tracks the running
    /// max — the dequant+activation happen in the accumulator drain, with
    /// no separate bias pass and no value recompute. Bit-identical to
    /// [`QDense::forward_q_into`]: identical integer accumulation,
    /// identical f32 value chain, identical row-major max fold.
    #[allow(clippy::too_many_arguments)] // mirrors `forward_q_into` plus the drain buffer
    pub(crate) fn forward_q_fused(
        &self,
        rows: usize,
        x: &[i8],
        x_scale: f32,
        bq: &[i32],
        acc: &mut [i32],
        values: &mut [f32],
        out: &mut [i8],
    ) -> f32 {
        let out_dim = self.w.out_dim();
        self.w.gemm_into(rows, x, acc, false);
        // one arm per activation so the per-element apply constant-folds
        let max_abs = match self.activation {
            Activation::Identity => {
                drain_values(acc, bq, self.w.scales(), x_scale, out_dim, values, |v| v)
            }
            Activation::Relu => {
                drain_values(acc, bq, self.w.scales(), x_scale, out_dim, values, |v| {
                    Activation::Relu.apply(v)
                })
            }
            Activation::LeakyRelu(alpha) => {
                drain_values(acc, bq, self.w.scales(), x_scale, out_dim, values, move |v| {
                    Activation::LeakyRelu(alpha).apply(v)
                })
            }
            Activation::Sigmoid => {
                drain_values(acc, bq, self.w.scales(), x_scale, out_dim, values, |v| {
                    Activation::Sigmoid.apply(v)
                })
            }
            Activation::Tanh => {
                drain_values(acc, bq, self.w.scales(), x_scale, out_dim, values, |v| {
                    Activation::Tanh.apply(v)
                })
            }
        };
        let scale = symmetric_scale(max_abs);
        for (slot, &v) in out.iter_mut().zip(values.iter()) {
            *slot = quantize_value(v, scale);
        }
        scale
    }

    /// Unfused final-layer forward: rescales straight to f32 logits.
    pub(crate) fn forward_f32_into(
        &self,
        rows: usize,
        x: &[i8],
        x_scale: f32,
        bq: &[i32],
        acc: &mut [i32],
        out: &mut [f32],
    ) {
        let out_dim = self.w.out_dim();
        self.accumulate_into(rows, x, bq, acc);
        for ((slot, &a), idx) in out.iter_mut().zip(acc.iter()).zip(0..) {
            *slot = self.value(a, idx % out_dim, x_scale);
        }
    }

    /// Fused final-layer forward: one dispatched GEMM, then a single
    /// drain pass writes dequantized, activated logits straight into
    /// `out` — no separate bias pass, no second value pass.
    pub(crate) fn forward_f32_fused(
        &self,
        rows: usize,
        x: &[i8],
        x_scale: f32,
        bq: &[i32],
        acc: &mut [i32],
        out: &mut [f32],
    ) {
        let out_dim = self.w.out_dim();
        self.w.gemm_into(rows, x, acc, false);
        for (row, orow) in acc.chunks_exact(out_dim).zip(out.chunks_exact_mut(out_dim)) {
            for ((&a, o), (&bqj, j)) in row.iter().zip(orow).zip(bq.iter().zip(0..)) {
                *o = self.value(a.saturating_add(bqj), j, x_scale);
            }
        }
    }

    /// Two passes over the accumulators: pass 1 finds the output's
    /// dynamic scale, pass 2 writes the saturated bytes. No f32 matrix
    /// is ever materialized.
    fn forward_q(&self, x: &QAct) -> QAct {
        assert_eq!(x.cols, self.w.in_dim(), "quantized dense input width mismatch");
        let out_dim = self.w.out_dim();
        let mut bq = vec![0i32; out_dim];
        self.fill_bias_acc(x.scale, &mut bq);
        let mut acc = vec![0i32; x.rows * out_dim];
        let mut data = vec![0i8; x.rows * out_dim];
        let scale = self.forward_q_into(x.rows, &x.data, x.scale, &bq, &mut acc, &mut data);
        QAct { rows: x.rows, cols: out_dim, data, scale }
    }

    /// Final-layer variant: rescales straight to f32 logits.
    fn forward_f32(&self, x: &QAct) -> Matrix {
        assert_eq!(x.cols, self.w.in_dim(), "quantized dense input width mismatch");
        let out_dim = self.w.out_dim();
        let mut bq = vec![0i32; out_dim];
        self.fill_bias_acc(x.scale, &mut bq);
        let mut acc = vec![0i32; x.rows * out_dim];
        let mut out = Matrix::zeros(x.rows, out_dim);
        self.forward_f32_into(x.rows, &x.data, x.scale, &bq, &mut acc, out.as_mut_slice());
        out
    }

    fn info(&self) -> LayerInfo {
        let (in_dim, out_dim) = (self.w.in_dim(), self.w.out_dim());
        LayerInfo {
            kind: "dense",
            in_dim,
            out_dim,
            params: in_dim * out_dim + out_dim,
            macs: (in_dim * out_dim) as u64,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.w.storage_bytes() + 4 * self.bias.len()
    }
}

/// Reusable workspace for [`QGru::scan_ws`]: the pre-sliced per-sequence
/// buffers the recurrence runs in, owned by the caller (the dynamic path
/// allocates one per call, the plan executor keeps one per op).
#[derive(Default)]
pub(crate) struct QGruWs {
    /// Whole-sequence gate bases `[r, z, h̃]`, each `T × h`.
    a: [Vec<f32>; 3],
    /// Integer scratch for the whole-sequence input GEMMs (`T × h`).
    acc: Vec<i32>,
    h: Vec<f32>,
    h_q: Vec<i8>,
    rh_q: Vec<i8>,
    rec: Vec<i32>,
    r: Vec<f32>,
    z: Vec<f32>,
}

impl QGruWs {
    /// Sizes every buffer for a `t_len × h_dim` scan and resets the
    /// hidden state to zero. No-op on the heap once capacities fit.
    fn prepare(&mut self, t_len: usize, h_dim: usize) {
        for a in &mut self.a {
            a.resize(t_len * h_dim, 0.0);
        }
        self.acc.resize(t_len * h_dim, 0);
        self.h.clear();
        self.h.resize(h_dim, 0.0);
        self.h_q.clear();
        self.h_q.resize(h_dim, 0);
        self.rh_q.resize(h_dim, 0);
        self.rec.resize(h_dim, 0);
        self.r.resize(h_dim, 0.0);
        self.z.resize(h_dim, 0.0);
    }
}

/// Quantized GRU (paper Eq. 1 conventions: the update gate keeps the
/// *previous* state).
pub(crate) struct QGru {
    /// Input kernels `[W_r, W_z, W_h]`.
    wx: [Int8Matrix; 3],
    /// Recurrent kernels `[U_r, U_z, U_h]`.
    u: [Int8Matrix; 3],
    /// Gate biases `[b_r, b_z, b_h]` (f32 — see module docs).
    b: [Vec<f32>; 3],
}

impl QGru {
    fn from_gru(g: &Gru) -> Self {
        let q = |m: &Matrix| Int8Matrix::quantize(m);
        let [wr, wz, wh] = g.input_kernels();
        let [ur, uz, uh] = g.recurrent_kernels();
        let [br, bz, bh] = g.biases();
        Self {
            wx: [q(wr), q(wz), q(wh)],
            u: [q(ur), q(uz), q(uh)],
            b: [br.as_slice().to_vec(), bz.as_slice().to_vec(), bh.as_slice().to_vec()],
        }
    }

    /// Input width.
    pub(crate) fn in_dim(&self) -> usize {
        self.wx[0].in_dim()
    }

    /// Hidden width.
    pub(crate) fn hidden_dim(&self) -> usize {
        self.wx[0].out_dim()
    }

    /// A workspace pre-sized for `t_len`-step scans, so the first
    /// [`QGru::scan_ws`] already runs allocation-free.
    pub(crate) fn make_ws(&self, t_len: usize) -> QGruWs {
        let mut ws = QGruWs::default();
        ws.prepare(t_len, self.hidden_dim());
        ws
    }

    /// Runs the recurrence in a caller-owned workspace, writing the f32
    /// hidden states (`T × h`) into `states` and/or the fixed-scale int8
    /// states into `states_q` when provided. Both the dynamic
    /// [`QGru::scan`] and the plan executor route here, so the two paths
    /// are one implementation (and bit-identical by construction).
    pub(crate) fn scan_ws(
        &self,
        t_len: usize,
        x: &[i8],
        x_scale: f32,
        ws: &mut QGruWs,
        mut states: Option<&mut [f32]>,
        mut states_q: Option<&mut [i8]>,
    ) {
        let (d, h_dim) = (self.in_dim(), self.hidden_dim());
        assert_eq!(x.len(), t_len * d, "quantized GRU input length mismatch");
        assert!(t_len > 0, "quantized GRU requires a non-empty sequence");
        ws.prepare(t_len, h_dim);

        // whole-sequence input projections: one int8 GEMM per gate,
        // rescaled (+ bias) into f32 pre-activation bases `T × h`
        for g in 0..3 {
            self.wx[g].gemm_into(t_len, x, &mut ws.acc, false);
            for (idx, (slot, &acc)) in ws.a[g].iter_mut().zip(ws.acc.iter()).enumerate() {
                let j = idx % h_dim;
                *slot = acc as f32 * x_scale * self.wx[g].scales()[j] + self.b[g][j];
            }
        }

        let QGruWs { a, acc: _, h, h_q, rh_q, rec, r, z } = ws;
        for t in 0..t_len {
            let base = |g: usize, j: usize| a[g][t * h_dim + j];
            self.u[0].gemm_into(1, h_q, rec, false);
            for j in 0..h_dim {
                r[j] = sigmoid(base(0, j) + rec[j] as f32 * H_SCALE * self.u[0].scales()[j]);
            }
            self.u[1].gemm_into(1, h_q, rec, false);
            for j in 0..h_dim {
                z[j] = sigmoid(base(1, j) + rec[j] as f32 * H_SCALE * self.u[1].scales()[j]);
            }
            // |r ⊙ h| ≤ |h| ≤ 1, so the reset-gated state shares h's scale
            for j in 0..h_dim {
                rh_q[j] = quantize_value(r[j] * h[j], H_SCALE);
            }
            self.u[2].gemm_into(1, rh_q, rec, false);
            for j in 0..h_dim {
                let hc = (base(2, j) + rec[j] as f32 * H_SCALE * self.u[2].scales()[j]).tanh();
                h[j] = z[j] * h[j] + (1.0 - z[j]) * hc;
                h_q[j] = quantize_value(h[j], H_SCALE);
            }
            if let Some(s) = states.as_deref_mut() {
                s[t * h_dim..(t + 1) * h_dim].copy_from_slice(h);
            }
            if let Some(sq) = states_q.as_deref_mut() {
                sq[t * h_dim..(t + 1) * h_dim].copy_from_slice(h_q);
            }
        }
    }

    /// Runs the recurrence; returns the f32 hidden states (`T × h`) and
    /// the same states as the fixed-scale int8 tensor fed onward.
    fn scan(&self, x: &QAct) -> (Matrix, QAct) {
        assert_eq!(x.cols, self.wx[0].in_dim(), "quantized GRU input width mismatch");
        let (t_len, h_dim) = (x.rows, self.wx[0].out_dim());
        let mut ws = QGruWs::default();
        let mut states = Matrix::zeros(t_len, h_dim);
        let mut states_q = vec![0i8; t_len * h_dim];
        self.scan_ws(
            t_len,
            &x.data,
            x.scale,
            &mut ws,
            Some(states.as_mut_slice()),
            Some(&mut states_q),
        );
        (states, QAct { rows: t_len, cols: h_dim, data: states_q, scale: H_SCALE })
    }

    fn info(&self) -> LayerInfo {
        let (d, h) = (self.wx[0].in_dim(), self.wx[0].out_dim());
        LayerInfo {
            kind: "gru",
            in_dim: d,
            out_dim: h,
            params: 3 * (d * h + h * h + h),
            macs: (3 * (d * h + h * h)) as u64,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.wx.iter().chain(&self.u).map(Int8Matrix::storage_bytes).sum::<usize>()
            + self.b.iter().map(|b| 4 * b.len()).sum::<usize>()
    }
}

/// Reusable workspace for [`QLstm::scan_ws`] — see [`QGruWs`].
#[derive(Default)]
pub(crate) struct QLstmWs {
    /// Whole-sequence gate bases `[i, f, o, g]`, each `T × h`.
    a: [Vec<f32>; 4],
    /// Integer scratch for the whole-sequence input GEMMs (`T × h`).
    acc: Vec<i32>,
    h: Vec<f32>,
    h_q: Vec<i8>,
    /// Cell state (stays f32 — unbounded, never enters a matrix product).
    c: Vec<f32>,
    rec: [Vec<i32>; 4],
}

impl QLstmWs {
    /// Sizes every buffer for a `t_len × h_dim` scan and resets the
    /// hidden and cell state to zero.
    fn prepare(&mut self, t_len: usize, h_dim: usize) {
        for a in &mut self.a {
            a.resize(t_len * h_dim, 0.0);
        }
        self.acc.resize(t_len * h_dim, 0);
        self.h.clear();
        self.h.resize(h_dim, 0.0);
        self.h_q.clear();
        self.h_q.resize(h_dim, 0);
        self.c.clear();
        self.c.resize(h_dim, 0.0);
        for r in &mut self.rec {
            r.resize(h_dim, 0);
        }
    }
}

/// Quantized LSTM, gate order `[i, f, o, g]`; the cell state stays f32.
pub(crate) struct QLstm {
    wx: [Int8Matrix; 4],
    u: [Int8Matrix; 4],
    b: [Vec<f32>; 4],
}

impl QLstm {
    fn from_lstm(l: &Lstm) -> Self {
        let q = |m: &Matrix| Int8Matrix::quantize(m);
        Self {
            wx: l.input_kernels().map(q),
            u: l.recurrent_kernels().map(q),
            b: l.biases().map(|b| b.as_slice().to_vec()),
        }
    }

    /// Input width.
    pub(crate) fn in_dim(&self) -> usize {
        self.wx[0].in_dim()
    }

    /// Hidden width.
    pub(crate) fn hidden_dim(&self) -> usize {
        self.wx[0].out_dim()
    }

    /// A workspace pre-sized for `t_len`-step scans, so the first
    /// [`QLstm::scan_ws`] already runs allocation-free.
    pub(crate) fn make_ws(&self, t_len: usize) -> QLstmWs {
        let mut ws = QLstmWs::default();
        ws.prepare(t_len, self.hidden_dim());
        ws
    }

    /// Runs the recurrence in a caller-owned workspace — the LSTM
    /// counterpart of [`QGru::scan_ws`], shared by the dynamic and plan
    /// paths.
    pub(crate) fn scan_ws(
        &self,
        t_len: usize,
        x: &[i8],
        x_scale: f32,
        ws: &mut QLstmWs,
        mut states: Option<&mut [f32]>,
        mut states_q: Option<&mut [i8]>,
    ) {
        let (d, h_dim) = (self.in_dim(), self.hidden_dim());
        assert_eq!(x.len(), t_len * d, "quantized LSTM input length mismatch");
        assert!(t_len > 0, "quantized LSTM requires a non-empty sequence");
        ws.prepare(t_len, h_dim);

        // same up-front layout as the GRU: one int8 GEMM per gate
        for g in 0..4 {
            self.wx[g].gemm_into(t_len, x, &mut ws.acc, false);
            for (idx, (slot, &acc)) in ws.a[g].iter_mut().zip(ws.acc.iter()).enumerate() {
                let j = idx % h_dim;
                *slot = acc as f32 * x_scale * self.wx[g].scales()[j] + self.b[g][j];
            }
        }

        let QLstmWs { a, acc: _, h, h_q, c, rec } = ws;
        for t in 0..t_len {
            for (k, rec_k) in rec.iter_mut().enumerate() {
                self.u[k].gemm_into(1, h_q, rec_k, false);
            }
            for j in 0..h_dim {
                let pre = |k: usize| {
                    a[k][t * h_dim + j] + rec[k][j] as f32 * H_SCALE * self.u[k].scales()[j]
                };
                let i = sigmoid(pre(0));
                let f = sigmoid(pre(1));
                let o = sigmoid(pre(2));
                let g = pre(3).tanh();
                c[j] = f * c[j] + i * g;
                h[j] = o * c[j].tanh();
                h_q[j] = quantize_value(h[j], H_SCALE);
            }
            if let Some(s) = states.as_deref_mut() {
                s[t * h_dim..(t + 1) * h_dim].copy_from_slice(h);
            }
            if let Some(sq) = states_q.as_deref_mut() {
                sq[t * h_dim..(t + 1) * h_dim].copy_from_slice(h_q);
            }
        }
    }

    fn scan(&self, x: &QAct) -> (Matrix, QAct) {
        assert_eq!(x.cols, self.wx[0].in_dim(), "quantized LSTM input width mismatch");
        let (t_len, h_dim) = (x.rows, self.wx[0].out_dim());
        let mut ws = QLstmWs::default();
        let mut states = Matrix::zeros(t_len, h_dim);
        let mut states_q = vec![0i8; t_len * h_dim];
        self.scan_ws(
            t_len,
            &x.data,
            x.scale,
            &mut ws,
            Some(states.as_mut_slice()),
            Some(&mut states_q),
        );
        (states, QAct { rows: t_len, cols: h_dim, data: states_q, scale: H_SCALE })
    }

    fn info(&self) -> LayerInfo {
        let (d, h) = (self.wx[0].in_dim(), self.wx[0].out_dim());
        LayerInfo {
            kind: "lstm",
            in_dim: d,
            out_dim: h,
            params: 4 * (d * h + h * h + h),
            macs: (4 * (d * h + h * h)) as u64,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.wx.iter().chain(&self.u).map(Int8Matrix::storage_bytes).sum::<usize>()
            + self.b.iter().map(|b| 4 * b.len()).sum::<usize>()
    }
}

/// One layer of a [`QuantizedModel`] — crate-visible so the plan
/// compiler ([`crate::plan`]) can specialize ops per variant.
pub(crate) enum QLayer {
    Dense(QDense),
    Gru(QGru),
    Lstm(QLstm),
}

impl QLayer {
    fn forward_q(&self, x: &QAct) -> QAct {
        match self {
            QLayer::Dense(d) => d.forward_q(x),
            QLayer::Gru(g) => g.scan(x).1,
            QLayer::Lstm(l) => l.scan(x).1,
        }
    }

    fn forward_f32(&self, x: &QAct) -> Matrix {
        match self {
            QLayer::Dense(d) => d.forward_f32(x),
            QLayer::Gru(g) => g.scan(x).0,
            QLayer::Lstm(l) => l.scan(x).0,
        }
    }

    pub(crate) fn info(&self) -> LayerInfo {
        match self {
            QLayer::Dense(d) => d.info(),
            QLayer::Gru(g) => g.info(),
            QLayer::Lstm(l) => l.info(),
        }
    }

    fn storage_bytes(&self) -> usize {
        match self {
            QLayer::Dense(d) => d.storage_bytes(),
            QLayer::Gru(g) => g.storage_bytes(),
            QLayer::Lstm(l) => l.storage_bytes(),
        }
    }
}

/// An int8 model executing entirely on the quantized path: every matrix
/// product runs in the [`mdl_tensor::kernel::int8`] kernel, activations
/// stay int8 between layers, and only the final layer emits f32 logits.
///
/// Built from a trained f32 [`Sequential`] ([`QuantizedModel::from_model`])
/// or assembled directly from quantized parts
/// ([`QuantizedModel::from_dense_parts`] — the `mdl-compress` artifact
/// bridge). Inference is read-only (`&self`), so a model can be shared
/// behind an `Arc` exactly like the f32 eval path.
pub struct QuantizedModel {
    layers: Vec<QLayer>,
}

impl std::fmt::Debug for QuantizedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedModel")
            .field("layers", &self.layers.len())
            .field("storage_bytes", &self.storage_bytes())
            .finish()
    }
}

impl QuantizedModel {
    /// Quantizes a trained f32 model. Returns `None` if any layer is not
    /// Dense/GRU/LSTM (the quantized path covers the paper's model
    /// family; anything else keeps serving f32).
    ///
    /// Takes `&mut` only because layer downcasting goes through the
    /// `as_any_mut` hook; the model is not modified.
    pub fn from_model(model: &mut Sequential) -> Option<Self> {
        let mut layers = Vec::new();
        for layer in model.layers_mut().iter_mut() {
            let any = layer.as_any_mut();
            if let Some(d) = any.downcast_ref::<Dense>() {
                layers.push(QLayer::Dense(QDense::from_dense(d)));
            } else if let Some(g) = any.downcast_ref::<Gru>() {
                layers.push(QLayer::Gru(QGru::from_gru(g)));
            } else if let Some(l) = any.downcast_ref::<Lstm>() {
                layers.push(QLayer::Lstm(QLstm::from_lstm(l)));
            } else {
                return None;
            }
        }
        if layers.is_empty() {
            return None;
        }
        Some(Self { layers })
    }

    /// Assembles an all-dense quantized model from already-quantized
    /// parts: `(weights, bias, activation)` per layer, in order. This is
    /// how a `mdl_compress::quantize` artifact becomes executable without
    /// a f32 weight round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or a bias length mismatches its weight
    /// matrix's output dimension.
    pub fn from_dense_parts(parts: Vec<(Int8Matrix, Vec<f32>, Activation)>) -> Self {
        assert!(!parts.is_empty(), "quantized model needs at least one layer");
        let layers = parts
            .into_iter()
            .map(|(w, bias, activation)| {
                assert_eq!(bias.len(), w.out_dim(), "bias length must match output channels");
                QLayer::Dense(QDense { w, bias, activation })
            })
            .collect();
        Self { layers }
    }

    /// Read-only quantized forward pass; returns f32 logits.
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        let (last, head) = self.layers.split_last().expect("non-empty model");
        let mut act = QAct::quantize(x);
        for layer in head {
            act = layer.forward_q(&act);
        }
        last.forward_f32(&act)
    }

    /// Class probabilities (softmax over the final layer's outputs).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        softmax_rows(&self.forward_eval(x))
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.forward_eval(x).argmax_rows()
    }

    /// Fraction of rows whose argmax matches the label.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let pred = self.predict(x);
        let correct = pred.iter().zip(labels.iter()).filter(|(p, y)| p == y).count();
        correct as f64 / labels.len().max(1) as f64
    }

    /// Input width expected by the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers[0].info().in_dim
    }

    /// The quantized layer stack (crate-visible for the plan compiler).
    pub(crate) fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Per-layer structural descriptions (same kinds/dims/macs as the
    /// f32 model this was quantized from).
    pub fn layer_infos(&self) -> Vec<LayerInfo> {
        self.layers.iter().map(QLayer::info).collect()
    }

    /// Total multiply–accumulate count per example.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.info().macs).sum()
    }

    /// Bytes held by the quantized representation (int8 weights +
    /// per-channel scales + f32 biases) — the artifact-size story the
    /// paper tells (§IV: int8 conv params at 340 KB).
    pub fn storage_bytes(&self) -> usize {
        self.layers.iter().map(QLayer::storage_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dropout;
    use crate::layer::{Layer, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(12, 32, Activation::Relu, &mut rng));
        net.push(Dense::new(32, 16, Activation::Tanh, &mut rng));
        net.push(Dense::new(16, 4, Activation::Identity, &mut rng));
        net
    }

    fn probe(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * 0.31).sin())
    }

    #[test]
    fn quantized_dense_tracks_f32_outputs() {
        let mut net = dense_net(9);
        let q = QuantizedModel::from_model(&mut net).expect("all-dense quantizes");
        let x = probe(6, 12);
        let f = net.forward_eval(&x);
        let g = q.forward_eval(&x);
        assert_eq!(f.shape(), g.shape());
        let scale = f.max_abs().max(1e-6);
        for (a, b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() < 0.15 * scale, "f32 {a} vs int8 {b}");
        }
        // argmax agreement on well-separated logits
        assert_eq!(net.predict(&x), q.predict(&x));
    }

    #[test]
    fn quantized_recurrent_layers_track_f32() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new();
        net.push(Gru::new(5, 12, &mut rng));
        net.push(Lstm::new(12, 8, &mut rng));
        net.push(Dense::new(8, 3, Activation::Identity, &mut rng));
        let q = QuantizedModel::from_model(&mut net).expect("gru/lstm quantize");
        let x = probe(20, 5);
        let f = net.forward_eval(&x);
        let g = q.forward_eval(&x);
        assert_eq!(f.shape(), g.shape());
        for (a, b) in f.as_slice().iter().zip(g.as_slice()) {
            assert!((a - b).abs() < 0.12, "f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn unsupported_layer_yields_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, Activation::Relu, &mut rng));
        net.push(Dropout::new(4, 0.5, 7));
        assert!(QuantizedModel::from_model(&mut net).is_none());
        assert!(QuantizedModel::from_model(&mut Sequential::new()).is_none());
    }

    #[test]
    fn int8_storage_is_a_quarter_of_f32() {
        let mut net = dense_net(2);
        let q = QuantizedModel::from_model(&mut net).expect("quantizes");
        let f32_bytes: usize = q.layer_infos().iter().map(|i| 4 * i.params).sum();
        // ~4x on the weights; per-channel scales and f32 biases eat a bit
        // of the ratio on these small layers
        assert!(
            (q.storage_bytes() as f64) < 0.4 * f32_bytes as f64,
            "int8 ({}) must be well under half of f32 ({f32_bytes})",
            q.storage_bytes()
        );
    }

    #[test]
    fn quantized_model_is_deterministic() {
        let mut net = dense_net(5);
        let q = QuantizedModel::from_model(&mut net).expect("quantizes");
        let x = probe(3, 12);
        let a = q.forward_eval(&x);
        let b = q.forward_eval(&x);
        assert!(a.as_slice().iter().zip(b.as_slice()).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn forward_after_training_mode_forward() {
        // from_model must not disturb the f32 model it reads
        let mut net = dense_net(11);
        let x = probe(2, 12);
        let before = net.forward(&x, Mode::Eval);
        let _q = QuantizedModel::from_model(&mut net).expect("quantizes");
        let after = net.forward(&x, Mode::Eval);
        assert!(before.approx_eq(&after, 0.0));
    }
}
