//! A compact on-disk / over-the-air model format.
//!
//! §III of the paper worries about the size of the app bundled with its
//! DNN and about updating models without shipping a new app. This module
//! gives the workspace a versioned binary format for [`Sequential`]
//! networks built from the standard layer set: a small header describing
//! the architecture followed by the flat fp32 parameter vector.
//!
//! Wire layout (little-endian):
//!
//! ```text
//! magic "MDLM" | version u8 | layer_count u16
//! per layer: tag u8 | in_dim u32 | out_dim u32 | extra u32
//! param_count u32 | params f32 × param_count
//! ```

use crate::activation::Activation;
use crate::dense::Dense;
use crate::gru::{BiGru, Gru};
use crate::layer::{Layer, ParamVector};
use crate::sequential::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAGIC: &[u8; 4] = b"MDLM";
const VERSION: u8 = 1;

/// Errors produced when decoding a saved model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadModelError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u8),
    /// The buffer ended before the declared content.
    Truncated,
    /// An unknown layer tag was encountered.
    UnknownLayer(u8),
    /// The parameter count does not match the declared architecture.
    ParamMismatch {
        /// Parameters the architecture requires.
        expected: usize,
        /// Parameters present in the buffer.
        found: usize,
    },
}

impl std::fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadModelError::BadMagic => write!(f, "buffer is not a saved model"),
            LoadModelError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            LoadModelError::Truncated => write!(f, "buffer ended unexpectedly"),
            LoadModelError::UnknownLayer(t) => write!(f, "unknown layer tag {t}"),
            LoadModelError::ParamMismatch { expected, found } => {
                write!(f, "expected {expected} parameters, found {found}")
            }
        }
    }
}

impl std::error::Error for LoadModelError {}

fn activation_tag(a: Activation) -> u32 {
    match a {
        Activation::Identity => 0,
        Activation::Relu => 1,
        Activation::Sigmoid => 2,
        Activation::Tanh => 3,
        Activation::LeakyRelu(_) => 4,
    }
}

fn activation_from_tag(t: u32) -> Activation {
    match t {
        1 => Activation::Relu,
        2 => Activation::Sigmoid,
        3 => Activation::Tanh,
        4 => Activation::LeakyRelu(0.01),
        _ => Activation::Identity,
    }
}

/// Serialises a network built from `Dense`, `Gru` and `BiGru` layers.
///
/// Returns `None` if the network contains a layer kind the format cannot
/// describe (e.g. dropout, which is inference-irrelevant anyway).
///
/// # Examples
///
/// ```
/// use mdl_nn::{save_model, load_model, Sequential, Dense, Activation};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 2, Activation::Relu, &mut rng));
/// let bytes = save_model(&mut net).expect("dense nets are saveable");
/// let restored = load_model(&bytes).expect("round trip");
/// assert_eq!(restored.len(), 1);
/// ```
pub fn save_model(net: &mut Sequential) -> Option<Vec<u8>> {
    let mut header: Vec<(u8, u32, u32, u32)> = Vec::new();
    for layer in net.layers_mut() {
        let any = layer.as_any_mut();
        if let Some(d) = any.downcast_ref::<Dense>() {
            header.push((
                0,
                d.weight().rows() as u32,
                d.weight().cols() as u32,
                activation_tag(d.activation()),
            ));
        } else if let Some(g) = any.downcast_ref::<Gru>() {
            header.push((1, g.input_dim() as u32, g.hidden_dim() as u32, 0));
        } else if let Some(b) = any.downcast_ref::<BiGru>() {
            header.push((2, b.info().in_dim as u32, b.hidden_dim() as u32, 0));
        } else {
            return None;
        }
    }
    let params = net.param_vector();

    let mut out = Vec::with_capacity(16 + 13 * header.len() + 4 * params.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(header.len() as u16).to_le_bytes());
    for (tag, a, b, c) in header {
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    Some(out)
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadModelError> {
        if self.at + n > self.buf.len() {
            return Err(LoadModelError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, LoadModelError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, LoadModelError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    fn u32(&mut self) -> Result<u32, LoadModelError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn f32(&mut self) -> Result<f32, LoadModelError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }
}

/// Reconstructs a network saved by [`save_model`].
///
/// # Errors
///
/// Returns a [`LoadModelError`] on any malformed input; never panics.
pub fn load_model(buf: &[u8]) -> Result<Sequential, LoadModelError> {
    let mut r = Reader { buf, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(LoadModelError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(LoadModelError::UnsupportedVersion(version));
    }
    let layer_count = r.u16()? as usize;
    // init RNG is irrelevant: every weight is overwritten below
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Sequential::new();
    for _ in 0..layer_count {
        let tag = r.u8()?;
        let a = r.u32()? as usize;
        let b = r.u32()? as usize;
        let c = r.u32()?;
        match tag {
            0 => {
                net.push(Dense::new(a, b, activation_from_tag(c), &mut rng));
            }
            1 => {
                net.push(Gru::new(a, b, &mut rng));
            }
            2 => {
                net.push(BiGru::new(a, b, &mut rng));
            }
            t => return Err(LoadModelError::UnknownLayer(t)),
        }
    }
    let declared = r.u32()? as usize;
    let expected = net.num_params();
    if declared != expected {
        return Err(LoadModelError::ParamMismatch { expected, found: declared });
    }
    let mut params = Vec::with_capacity(declared);
    for _ in 0..declared {
        params.push(r.f32()?);
    }
    net.set_param_vector(&params);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use mdl_tensor::Matrix;

    fn sample_net(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(6, 8, Activation::Relu, rng));
        net.push(Dense::new(8, 3, Activation::Identity, rng));
        net
    }

    #[test]
    fn round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(600);
        let mut net = sample_net(&mut rng);
        let x = Matrix::from_fn(4, 6, |r, c| ((r + c) as f32 * 0.7).sin());
        let before = net.forward(&x, Mode::Eval);
        let bytes = save_model(&mut net).expect("dense nets are saveable");
        let mut restored = load_model(&bytes).expect("round trip");
        let after = restored.forward(&x, Mode::Eval);
        assert!(after.approx_eq(&before, 0.0), "bit-exact round trip");
    }

    #[test]
    fn round_trip_with_recurrent_layers() {
        let mut rng = StdRng::seed_from_u64(601);
        let mut net = Sequential::new();
        net.push(Gru::new(3, 5, &mut rng));
        net.push(Dense::new(5, 2, Activation::Tanh, &mut rng));
        let x = Matrix::from_fn(6, 3, |r, c| (r as f32 - c as f32) * 0.2);
        let before = net.forward(&x, Mode::Eval);
        let bytes = save_model(&mut net).expect("gru nets are saveable");
        let mut restored = load_model(&bytes).expect("round trip");
        assert!(restored.forward(&x, Mode::Eval).approx_eq(&before, 0.0));
    }

    #[test]
    fn dropout_is_not_saveable() {
        let mut rng = StdRng::seed_from_u64(602);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, Activation::Relu, &mut rng));
        net.push(crate::dense::Dropout::new(4, 0.5, 1));
        assert!(save_model(&mut net).is_none());
    }

    #[test]
    fn corrupt_inputs_error_cleanly() {
        let mut rng = StdRng::seed_from_u64(603);
        let mut net = sample_net(&mut rng);
        let bytes = save_model(&mut net).expect("saveable");

        assert_eq!(load_model(b"np").err(), Some(LoadModelError::Truncated));
        assert_eq!(load_model(b"XXXXxxxxxxxx").err(), Some(LoadModelError::BadMagic));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(load_model(&wrong_version).err(), Some(LoadModelError::UnsupportedVersion(99)));

        let truncated = &bytes[..bytes.len() - 3];
        assert_eq!(load_model(truncated).err(), Some(LoadModelError::Truncated));

        let mut bad_tag = bytes.clone();
        bad_tag[7] = 42; // first layer tag
        assert!(matches!(load_model(&bad_tag).err(), Some(LoadModelError::UnknownLayer(42))));
    }

    #[test]
    fn size_is_header_plus_params() {
        let mut rng = StdRng::seed_from_u64(604);
        let mut net = sample_net(&mut rng);
        let n_params = net.num_params();
        let bytes = save_model(&mut net).expect("saveable");
        // magic(4) + version(1) + count(2) + 2 layers × 13 + len(4) + params
        assert_eq!(bytes.len(), 4 + 1 + 2 + 2 * 13 + 4 + 4 * n_params);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mdl_tensor::Matrix;
    use proptest::prelude::*;

    fn act_of(tag: u8) -> Activation {
        match tag % 5 {
            0 => Activation::Identity,
            1 => Activation::Relu,
            2 => Activation::Sigmoid,
            3 => Activation::Tanh,
            // the format hardcodes slope 0.01, so only that round-trips
            _ => Activation::LeakyRelu(0.01),
        }
    }

    /// A net exercising every layer tag the format knows (Dense=0, Gru=1,
    /// BiGru=2) with generated widths and activations.
    fn full_tag_net(w: &[usize], acts: &[u8], seed: u64) -> (Sequential, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(w[0], w[1], act_of(acts[0]), &mut rng));
        net.push(Gru::new(w[1], w[2], &mut rng));
        net.push(BiGru::new(w[2], w[3], &mut rng));
        net.push(Dense::new(2 * w[3], 3, act_of(acts[1]), &mut rng));
        (net, w[0])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn every_layer_tag_round_trips_bit_exactly(
            w in prop::collection::vec(1usize..5, 4),
            acts in prop::collection::vec(0u8..5, 2),
            seed in 0u64..1000,
        ) {
            let (mut net, in_dim) = full_tag_net(&w, &acts, seed);
            let x = Matrix::from_fn(5, in_dim, |r, c| ((r * 7 + c) as f32 * 0.3).sin());
            let before = net.forward_eval(&x);
            let bytes = save_model(&mut net).expect("standard layers serialize");
            let restored = load_model(&bytes).expect("round trip");
            prop_assert!(restored.forward_eval(&x).approx_eq(&before, 0.0));
        }

        #[test]
        fn every_error_variant_is_reachable(
            w in prop::collection::vec(1usize..5, 4),
            acts in prop::collection::vec(0u8..5, 2),
            seed in 0u64..1000,
            magic_mask in 1u8..=255,
            version_mask in 1u8..=255,
            cut in 1usize..10_000,
            tag_excess in 0u8..253,
            count_mask in 1u32..1_000_000,
        ) {
            let (mut net, _) = full_tag_net(&w, &acts, seed);
            let bytes = save_model(&mut net).expect("standard layers serialize");

            // BadMagic: any corruption of the 4 magic bytes
            let mut bad_magic = bytes.clone();
            bad_magic[(seed % 4) as usize] ^= magic_mask;
            prop_assert_eq!(load_model(&bad_magic).err(), Some(LoadModelError::BadMagic));

            // UnsupportedVersion: any version byte other than 1
            let mut bad_version = bytes.clone();
            bad_version[4] ^= version_mask;
            prop_assert_eq!(
                load_model(&bad_version).err(),
                Some(LoadModelError::UnsupportedVersion(VERSION ^ version_mask))
            );

            // Truncated: every strict prefix ends inside declared content
            let keep = bytes.len() - (1 + cut % bytes.len());
            prop_assert_eq!(
                load_model(&bytes[..keep]).err(),
                Some(LoadModelError::Truncated)
            );

            // UnknownLayer: tags 3..=255 name no layer (first tag is at 7)
            let unknown = 3 + tag_excess;
            let mut bad_tag = bytes.clone();
            bad_tag[7] = unknown;
            prop_assert_eq!(
                load_model(&bad_tag).err(),
                Some(LoadModelError::UnknownLayer(unknown))
            );

            // ParamMismatch: the count field disagrees with the header
            let expected = net.num_params();
            let found = expected ^ count_mask as usize;
            let count_at = 4 + 1 + 2 + 13 * 4;
            let mut bad_count = bytes.clone();
            bad_count[count_at..count_at + 4]
                .copy_from_slice(&(found as u32).to_le_bytes());
            prop_assert_eq!(
                load_model(&bad_count).err(),
                Some(LoadModelError::ParamMismatch { expected, found })
            );
        }
    }
}
