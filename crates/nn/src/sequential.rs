//! A feed-forward stack of layers.

use crate::layer::{Layer, LayerInfo, Mode};
use crate::profile;
use mdl_tensor::stats::softmax_rows;
use mdl_tensor::Matrix;
use std::sync::Arc;

/// An ordered stack of layers applied front to back.
///
/// # Examples
///
/// ```
/// use mdl_nn::{Sequential, Dense, Activation, Mode, Layer};
/// use mdl_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, Activation::Relu, &mut rng));
/// net.push(Dense::new(8, 3, Activation::Identity, &mut rng));
/// let logits = net.forward(&Matrix::ones(2, 4), Mode::Eval);
/// assert_eq!(logits.shape(), (2, 3));
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Per-layer counter handles, resolved at [`Layer::set_profiler`]
    /// time so the forward/backward loops only touch atomics.
    profiler: Option<profile::Attached>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let info = l.info();
            write!(f, "{} {}→{}", info.kind, info.in_dim, info.out_dim)?;
        }
        write!(f, "]")
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self { layers: Vec::new(), profiler: None }
    }

    /// Appends a layer to the stack.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.push_boxed(Box::new(layer))
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        // keep handle count in sync if a profiler is already attached
        if let Some(attached) = self.profiler.take() {
            self.profiler = Some(profile::Attached::new(attached.profiler, &self.layer_infos()));
        }
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers (used by compression passes).
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }

    /// Splits the stack after `at` layers into (local, cloud) halves.
    ///
    /// Used by the split-inference framework (paper Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_at(self, at: usize) -> (Sequential, Sequential) {
        assert!(at <= self.layers.len(), "split point beyond network depth");
        let mut layers = self.layers;
        let tail = layers.split_off(at);
        // profiler handles are bound to the original layer indices;
        // the halves start unprofiled
        (Sequential { layers, profiler: None }, Sequential { layers: tail, profiler: None })
    }

    /// Class probabilities (softmax over the final layer's outputs).
    ///
    /// Runs the read-only [`Layer::forward_eval`] path, so concurrent
    /// callers can share the model behind an `Arc`.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        softmax_rows(&self.forward_eval(x))
    }

    /// Hard class predictions (read-only; shareable across threads).
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.forward_eval(x).argmax_rows()
    }

    /// Fraction of rows whose argmax matches the label.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let pred = self.predict(x);
        let correct = pred.iter().zip(labels.iter()).filter(|(p, y)| p == y).count();
        correct as f64 / labels.len().max(1) as f64
    }

    /// Per-layer structural descriptions.
    pub fn layer_infos(&self) -> Vec<LayerInfo> {
        self.layers.iter().map(|l| l.info()).collect()
    }

    /// Total multiply–accumulate count per example.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.info().macs).sum()
    }
}

impl Layer for Sequential {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Matrix, mode: Mode) -> Matrix {
        let Self { layers, profiler } = self;
        let mut cur = x.clone();
        match profiler {
            None => {
                for layer in layers {
                    cur = layer.forward(&cur, mode);
                }
            }
            Some(p) => {
                for (layer, handles) in layers.iter_mut().zip(&p.handles) {
                    let rows = cur.rows();
                    let t0 = p.profiler.now_ns();
                    cur = layer.forward(&cur, mode);
                    handles.record_fwd(rows, p.profiler.now_ns().saturating_sub(t0));
                }
            }
        }
        cur
    }

    fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        match &self.profiler {
            None => {
                for layer in &self.layers {
                    cur = layer.forward_eval(&cur);
                }
            }
            Some(p) => {
                for (layer, handles) in self.layers.iter().zip(&p.handles) {
                    let rows = cur.rows();
                    let t0 = p.profiler.now_ns();
                    cur = layer.forward_eval(&cur);
                    handles.record_fwd(rows, p.profiler.now_ns().saturating_sub(t0));
                }
            }
        }
        cur
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let Self { layers, profiler } = self;
        let mut grad = grad_out.clone();
        match profiler {
            None => {
                for layer in layers.iter_mut().rev() {
                    grad = layer.backward(&grad);
                }
            }
            Some(p) => {
                for (layer, handles) in layers.iter_mut().zip(&p.handles).rev() {
                    let t0 = p.profiler.now_ns();
                    grad = layer.backward(&grad);
                    handles.record_bwd(p.profiler.now_ns().saturating_sub(t0));
                }
            }
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn set_profiler(&mut self, profiler: Option<Arc<crate::profile::LayerProfiler>>) {
        self.profiler = profiler.map(|p| profile::Attached::new(p, &self.layer_infos()));
    }

    fn info(&self) -> LayerInfo {
        let in_dim = self.layers.first().map(|l| l.info().in_dim).unwrap_or(0);
        let out_dim = self.layers.last().map(|l| l.info().out_dim).unwrap_or(0);
        LayerInfo {
            kind: "sequential",
            in_dim,
            out_dim,
            params: self.layers.iter().map(|l| l.info().params).sum(),
            macs: self.total_macs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::layer::ParamVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_layer(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, Activation::Tanh, rng));
        net.push(Dense::new(5, 2, Activation::Identity, rng));
        net
    }

    #[test]
    fn forward_composes() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut net = two_layer(&mut rng);
        let y = net.forward(&Matrix::ones(7, 3), Mode::Eval);
        assert_eq!(y.shape(), (7, 2));
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut net = two_layer(&mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.5, 0.9], &[1.0, 0.2, -0.4]]);
        let base = net.param_vector();
        net.zero_grad();
        let _ = net.forward(&x, Mode::Train);
        let _ = net.backward(&Matrix::ones(2, 2));
        let analytic = net.grad_vector();

        let eps = 1e-3f32;
        let n = base.len();
        for k in [0usize, n / 4, n / 2, 3 * n / 4, n - 1] {
            let mut plus = base.clone();
            plus[k] += eps;
            net.set_param_vector(&plus);
            let lp = net.forward(&x, Mode::Eval).sum();
            let mut minus = base.clone();
            minus[k] -= eps;
            net.set_param_vector(&minus);
            let lm = net.forward(&x, Mode::Eval).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - analytic[k]).abs() < 1e-2, "param {k}: fd={fd} vs {}", analytic[k]);
        }
    }

    #[test]
    fn split_at_preserves_function() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = two_layer(&mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.4, -0.2]]);
        let full = net.forward(&x, Mode::Eval);
        let (mut local, mut cloud) = net.split_at(1);
        let mid = local.forward(&x, Mode::Eval);
        let composed = cloud.forward(&mid, Mode::Eval);
        assert!(composed.approx_eq(&full, 1e-6));
        assert_eq!(local.len(), 1);
        assert_eq!(cloud.len(), 1);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(43);
        let net = two_layer(&mut rng);
        let p = net.predict_proba(&Matrix::ones(3, 3));
        for r in 0..3 {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn info_aggregates() {
        let mut rng = StdRng::seed_from_u64(44);
        let net = two_layer(&mut rng);
        let info = net.info();
        assert_eq!(info.in_dim, 3);
        assert_eq!(info.out_dim, 2);
        assert_eq!(info.params, 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(info.macs, 15 + 10);
    }

    #[test]
    fn accuracy_on_trivial_labels() {
        let mut rng = StdRng::seed_from_u64(45);
        let net = two_layer(&mut rng);
        let x = Matrix::ones(4, 3);
        let pred = net.predict(&x);
        let acc = net.accuracy(&x, &pred);
        assert_eq!(acc, 1.0);
    }
}
