//! Mini-batch training loops for classification models.

use crate::layer::{Layer, Mode};
use crate::loss::softmax_cross_entropy;
use crate::optim::Optimizer;
use crate::profile::LayerProfiler;
use mdl_obs::{Buckets, Obs};
use mdl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`fit_classifier`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Whether to shuffle example order each epoch.
    pub shuffle: bool,
    /// Optional L2 gradient-norm clip applied per batch.
    pub grad_clip: Option<f64>,
    /// GEMM kernel worker threads for this run (`None` keeps the process
    /// default from `MDL_THREADS`/available parallelism). Thread count
    /// never affects results — the kernel is bit-deterministic — only
    /// wall-clock time.
    pub kernel_threads: Option<usize>,
    /// Observability session: when set, the loop opens `train.fit` /
    /// `train.epoch` / `train.batch` spans, publishes `train.*` counters
    /// and attaches a per-layer [`LayerProfiler`] to the model.
    /// Instrumentation never changes results — only what is recorded.
    pub obs: Option<Obs>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            shuffle: true,
            grad_clip: None,
            kernel_threads: None,
            obs: None,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean cross-entropy over the epoch.
    pub loss: f64,
    /// Training accuracy measured over the epoch's batches.
    pub accuracy: f64,
}

/// Trains `model` with softmax cross-entropy on `(x, labels)`.
///
/// Returns per-epoch loss/accuracy. The model is modified in place.
///
/// # Panics
///
/// Panics if `x.rows() != labels.len()` or the training set is empty.
pub fn fit_classifier(
    model: &mut dyn Layer,
    opt: &mut dyn Optimizer,
    x: &Matrix,
    labels: &[usize],
    config: &TrainConfig,
    rng: &mut impl Rng,
) -> Vec<EpochStats> {
    assert_eq!(x.rows(), labels.len(), "one label per example required");
    assert!(!labels.is_empty(), "training set must be non-empty");
    if let Some(t) = config.kernel_threads {
        mdl_tensor::kernel::set_threads(t);
    }
    let n = labels.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(config.epochs);

    // resolve instrumentation once; the batch loop then only touches
    // atomics (counters) and the span ring buffer
    let instruments = config.obs.as_ref().map(|obs| {
        model.set_profiler(Some(LayerProfiler::new(obs)));
        (
            obs.root_span("train.fit"),
            obs.registry().counter("train.batches"),
            obs.registry().counter("train.examples"),
            obs.registry().histogram("train.batch_ns", Buckets::Pow2),
            obs.clock().clone(),
        )
    });

    for epoch in 0..config.epochs {
        let epoch_span = instruments.as_ref().map(|(fit, _, _, _, _)| fit.child("train.epoch"));
        if config.shuffle {
            order.shuffle(rng);
        }
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch_span = epoch_span.as_ref().map(|e| e.child("train.batch"));
            let t0 = instruments.as_ref().map(|(_, _, _, _, clock)| clock.now_ns());
            let bx = x.select_rows(chunk);
            let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            model.zero_grad();
            let logits = model.forward(&bx, Mode::Train);
            let (loss, grad) = softmax_cross_entropy(&logits, &by);
            let _ = model.backward(&grad);
            if let Some(max_norm) = config.grad_clip {
                clip_gradients(model, max_norm);
            }
            opt.step(model);

            total_loss += loss as f64;
            batches += 1;
            for (p, &y) in logits.argmax_rows().iter().zip(by.iter()) {
                if *p == y {
                    correct += 1;
                }
            }
            if let Some((_, batch_counter, examples, batch_ns, clock)) = instruments.as_ref() {
                batch_counter.inc();
                examples.add(chunk.len() as u64);
                batch_ns.record(clock.now_ns().saturating_sub(t0.unwrap_or(0)));
            }
            drop(batch_span);
        }
        let stats = EpochStats {
            epoch,
            loss: total_loss / batches.max(1) as f64,
            accuracy: correct as f64 / n as f64,
        };
        if let Some(obs) = &config.obs {
            obs.registry().gauge("train.loss").set(stats.loss);
            obs.registry().gauge("train.accuracy").set(stats.accuracy);
        }
        history.push(stats);
        drop(epoch_span);
    }
    if let Some((fit, ..)) = instruments {
        fit.exit();
        model.set_profiler(None);
    }
    history
}

/// Scales all parameter gradients so their global L2 norm is at most `max_norm`.
pub fn clip_gradients(model: &mut dyn Layer, max_norm: f64) {
    let mut sq = 0.0f64;
    model.visit_params(&mut |_, g| {
        sq += g.as_slice().iter().map(|&v| (v as f64).powi(2)).sum::<f64>();
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = (max_norm / norm) as f32;
        model.visit_params(&mut |_, g| g.scale_mut(scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::optim::Adam;
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two Gaussian blobs: class 0 centred at (-1,-1), class 1 at (1,1).
    fn blobs(n: usize, rng: &mut StdRng) -> (Matrix, Vec<usize>) {
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let centre = if label == 0 { -1.0 } else { 1.0 };
            x[(i, 0)] = centre + mdl_tensor::init::gaussian(rng) * 0.3;
            x[(i, 1)] = centre + mdl_tensor::init::gaussian(rng) * 0.3;
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(50);
        let (x, y) = blobs(200, &mut rng);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, Activation::Relu, &mut rng));
        net.push(Dense::new(8, 2, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.01);
        let history = fit_classifier(
            &mut net,
            &mut opt,
            &x,
            &y,
            &TrainConfig { epochs: 20, batch_size: 16, ..Default::default() },
            &mut rng,
        );
        assert_eq!(history.len(), 20);
        assert!(history.last().unwrap().accuracy > 0.95, "{history:?}");
        assert!(history.last().unwrap().loss < history[0].loss);
    }

    #[test]
    fn grad_clip_bounds_norm() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, Activation::Identity, &mut rng));
        net.zero_grad();
        // inject a large gradient
        net.visit_params(&mut |_, g| g.map_mut(|_| 100.0));
        clip_gradients(&mut net, 1.0);
        let mut sq = 0.0f64;
        net.visit_params(&mut |_, g| {
            sq += g.as_slice().iter().map(|&v| (v as f64).powi(2)).sum::<f64>();
        });
        assert!((sq.sqrt() - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let mut rng = StdRng::seed_from_u64(52);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &Matrix::zeros(0, 2),
            &[],
            &TrainConfig::default(),
            &mut rng,
        );
    }
}
