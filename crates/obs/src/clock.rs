//! The time source every instrument reads.
//!
//! Observability data is only reproducible if its clock is: a [`Clock`]
//! is either a **wall** clock (monotonic nanoseconds since creation, for
//! real benchmarking) or a **sim** clock (a counter that advances only
//! when a simulation advances it — the `mdl-net` fabric drives it with
//! its per-round transfer times). Under a sim clock, every timestamp in a
//! trace is a pure function of the simulated events, so two seeded runs
//! produce bit-identical snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which source a [`Clock`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Monotonic wall time (nanoseconds since the clock was created).
    Wall,
    /// Deterministic simulated time, advanced explicitly.
    Sim,
}

impl ClockKind {
    /// Stable lowercase name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Wall => "wall",
            Self::Sim => "sim",
        }
    }

    /// Parses [`ClockKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "wall" => Some(Self::Wall),
            "sim" => Some(Self::Sim),
            _ => None,
        }
    }
}

enum Source {
    Wall(Instant),
    Sim(AtomicU64),
}

/// A cloneable handle to one time source; clones share the same time.
#[derive(Clone)]
pub struct Clock {
    source: Arc<Source>,
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Clock::{:?}@{}ns", self.kind(), self.now_ns())
    }
}

impl Clock {
    /// A monotonic wall clock starting at 0 ns now.
    pub fn wall() -> Self {
        Self { source: Arc::new(Source::Wall(Instant::now())) }
    }

    /// A simulated clock starting at 0 ns.
    pub fn sim() -> Self {
        Self { source: Arc::new(Source::Sim(AtomicU64::new(0))) }
    }

    /// Which source this clock reads.
    pub fn kind(&self) -> ClockKind {
        match *self.source {
            Source::Wall(_) => ClockKind::Wall,
            Source::Sim(_) => ClockKind::Sim,
        }
    }

    /// `true` for a simulated clock.
    pub fn is_sim(&self) -> bool {
        self.kind() == ClockKind::Sim
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match &*self.source {
            Source::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Source::Sim(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Advances a simulated clock by `ns`; a no-op on a wall clock (wall
    /// time advances itself). Saturates instead of wrapping.
    pub fn advance_ns(&self, ns: u64) {
        if let Source::Sim(t) = &*self.source {
            // saturating add via CAS: fetch_add could wrap after ~584 years
            // of simulated time, but a runaway simulation should pin, not wrap
            let mut cur = t.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_add(ns);
                match t.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Advances a simulated clock by (fractional) seconds, rounding to
    /// whole nanoseconds; a no-op on a wall clock or for non-positive `s`.
    pub fn advance_secs(&self, s: f64) {
        if s > 0.0 {
            self.advance_ns((s * 1e9).round() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_only_when_told() {
        let c = Clock::sim();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(250);
        c.advance_secs(1e-6);
        assert_eq!(c.now_ns(), 1250);
        assert!(c.is_sim());
        assert_eq!(c.kind().name(), "sim");
    }

    #[test]
    fn sim_clock_saturates() {
        let c = Clock::sim();
        c.advance_ns(u64::MAX - 5);
        c.advance_ns(100);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::sim();
        let b = a.clone();
        b.advance_ns(7);
        assert_eq!(a.now_ns(), 7);
    }

    #[test]
    fn wall_clock_monotone_and_ignores_advance() {
        let c = Clock::wall();
        let t0 = c.now_ns();
        c.advance_ns(1_000_000_000_000);
        let t1 = c.now_ns();
        assert!(t1 < 1_000_000_000_000, "advance must not touch wall time");
        assert!(t1 >= t0);
        assert_eq!(c.kind(), ClockKind::Wall);
    }

    #[test]
    fn kind_round_trips_through_name() {
        for k in [ClockKind::Wall, ClockKind::Sim] {
            assert_eq!(ClockKind::parse(k.name()), Some(k));
        }
        assert_eq!(ClockKind::parse("lunar"), None);
    }
}
