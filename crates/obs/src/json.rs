//! A minimal JSON value, writer and parser.
//!
//! The workspace vendors a marker-only `serde` stub (derives expand to
//! nothing), so snapshots serialize through this module instead. It is
//! deliberately small: objects preserve insertion order, numbers are
//! written with Rust's shortest round-trip `f64` formatting (so
//! format→parse restores the exact bits for finite values), and the
//! parser accepts exactly the subset the writer emits plus ordinary
//! whitespace. Non-finite numbers are rejected at write time — snapshots
//! never contain them.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; u64 counters survive to 2^53).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "non-finite number in JSON export");
                // `{}` on f64 is the shortest representation that parses
                // back to the same bits — exactly what the round-trip needs
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value, optionally padded
    /// with whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// Serializes compactly (no whitespace), keys in stored order. Panics on
/// non-finite numbers; snapshots never produce them.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Convenience constructors for building documents.
impl Json {
    /// A number from a `u64` (exact up to 2^53, like JavaScript).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { message, offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // surrogates would need pairing; the writer never
                            // emits them (only control chars use \u)
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("p50\"quote\\n")),
            ("n".into(), Json::u64(12345678901234)),
            ("x".into(), Json::Num(-0.1)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("xs".into(), Json::Arr(vec![Json::u64(1), Json::Num(2.5)])),
            ("o".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // serialize → parse → serialize is a fixed point
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn f64_display_round_trips_bits() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE, -2.5e17] {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"x\\u0007y\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("x\u{7}y"));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn control_chars_escape_and_return() {
        let s = "line1\nline2\ttab\u{1}ctl";
        let text = Json::str(s).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"open", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn writer_rejects_nan() {
        let _ = Json::Num(f64::NAN).to_string();
    }
}
