//! `mdl-obs` — zero-dependency, deterministic observability.
//!
//! One [`Obs`] handle bundles the three primitives every subsystem shares:
//!
//! * a [`Clock`] — wall time for real benchmarking, or a **sim clock**
//!   advanced by the `mdl-net` fabric so every timestamp is a pure
//!   function of the simulated events;
//! * a [`MetricsRegistry`] of named counters, gauges and fixed-bucket
//!   histograms with lock-free, allocation-free recording;
//! * a [`Tracer`] building a tree of timed [`Span`]s in a fixed-size
//!   ring buffer.
//!
//! [`Obs::snapshot`] freezes everything into an [`ObsSnapshot`] that
//! compares with `==` and round-trips through JSON bit-exactly.
//!
//! # Determinism contract
//!
//! Under [`Obs::sim`], a seeded run produces a bit-identical snapshot
//! across repeats and across `MDL_THREADS` settings, provided the
//! instrumented control flow is itself deterministic (spans entered in
//! one order, counters fed the same totals). Wall-clock handles
//! ([`Obs::wall`]) trade that away for real timings.
//!
//! # Span naming
//!
//! Dotted lowercase paths, subsystem first: `train.fit` > `train.epoch` >
//! `train.batch`, `fed.round`, `serve.batch`, `pipeline.train` … Metric
//! names follow the same convention (`serve.completed`,
//! `net.bytes_up`, `kernel.gemm.calls`).
//!
//! ```
//! use mdl_obs::Obs;
//!
//! let obs = Obs::sim();
//! let span = obs.root_span("train.fit");
//! obs.clock().advance_ns(1_000);
//! obs.registry().counter("train.batches").inc();
//! span.exit();
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("train.batches"), Some(1));
//! assert_eq!(snap.spans[0].duration_ns(), 1_000);
//! let restored = mdl_obs::ObsSnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(restored, snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, ClockKind};
pub use json::{Json, JsonError};
pub use registry::{Buckets, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use snapshot::{build_span_tree, ObsSnapshot, SpanNode};
pub use span::{Span, SpanRecord, Tracer, DEFAULT_SPAN_CAPACITY};

use std::sync::Arc;

struct ObsInner {
    clock: Clock,
    registry: MetricsRegistry,
    tracer: Tracer,
}

/// A cloneable observability session: one clock, one registry, one
/// tracer. Clones share all three, so a handle can be passed to the
/// trainer, the serving stack and the network fabric and everything
/// lands in a single snapshot.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Obs({:?}, {:?})", self.inner.clock, self.inner.tracer)
    }
}

impl Obs {
    /// A session over `clock` with the given span ring-buffer capacity.
    pub fn with_clock(clock: Clock, span_capacity: usize) -> Self {
        Self {
            inner: Arc::new(ObsInner {
                clock: clock.clone(),
                registry: MetricsRegistry::new(),
                tracer: Tracer::new(clock, span_capacity),
            }),
        }
    }

    /// A wall-clock session (real timings, not reproducible).
    pub fn wall() -> Self {
        Self::with_clock(Clock::wall(), DEFAULT_SPAN_CAPACITY)
    }

    /// A sim-clock session (deterministic; time advances only via
    /// [`Clock::advance_ns`] / [`Clock::advance_secs`]).
    pub fn sim() -> Self {
        Self::with_clock(Clock::sim(), DEFAULT_SPAN_CAPACITY)
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// The shared tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Opens a top-level span.
    pub fn root_span(&self, name: &'static str) -> Span {
        self.inner.tracer.root(name)
    }

    /// Freezes the current state of everything into one snapshot.
    pub fn snapshot(&self) -> ObsSnapshot {
        let (counters, gauges, histograms) = self.inner.registry.snapshot_parts();
        let (records, dropped_spans) = self.inner.tracer.drain_view();
        ObsSnapshot {
            clock: self.inner.clock.kind(),
            now_ns: self.inner.clock.now_ns(),
            counters,
            gauges,
            histograms,
            spans: build_span_tree(&records),
            dropped_spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let obs = Obs::sim();
        let other = obs.clone();
        other.registry().counter("x").add(3);
        other.clock().advance_ns(11);
        other.root_span("r").exit();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("x"), Some(3));
        assert_eq!(snap.now_ns, 11);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.clock, ClockKind::Sim);
    }

    #[test]
    fn identical_sim_sessions_snapshot_identically() {
        let run = || {
            let obs = Obs::sim();
            let fit = obs.root_span("train.fit");
            for _ in 0..3 {
                let epoch = fit.child("train.epoch");
                obs.clock().advance_ns(500);
                obs.registry().counter("train.batches").add(4);
                obs.registry().histogram("train.batch_ns", Buckets::Pow2).record(125);
                epoch.exit();
            }
            fit.exit();
            obs.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }
}
