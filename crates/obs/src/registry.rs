//! The [`MetricsRegistry`]: named counters, gauges and fixed-bucket
//! histograms behind lock-free handles.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short mutex and
//! allocates the name once; the returned handles are `Arc`-backed and
//! record with plain atomic operations — **no allocation and no lock on
//! the hot path**. Snapshots iterate names in sorted order, so two
//! registries fed the same samples export byte-identical JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bucket layout of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buckets {
    /// Bucket `i` holds values in `[2^i, 2^(i+1))` (value 0 lands in
    /// bucket 0). 64 buckets cover the whole `u64` range.
    Pow2,
    /// Bucket `i` holds values in `[i·width, (i+1)·width)`; the last of
    /// `count` buckets also absorbs everything larger.
    Linear {
        /// Width of each bucket (must be ≥ 1).
        width: u64,
        /// Number of buckets (must be ≥ 1).
        count: usize,
    },
}

impl Buckets {
    /// Number of buckets this layout allocates.
    pub fn len(&self) -> usize {
        match *self {
            Self::Pow2 => 64,
            Self::Linear { count, .. } => count,
        }
    }

    /// `true` for a zero-bucket layout (never constructed by the
    /// registry, which clamps `count` to at least 1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the bucket `value` falls in.
    pub fn index_of(&self, value: u64) -> usize {
        match *self {
            Self::Pow2 => 63 - value.max(1).leading_zeros() as usize,
            Self::Linear { width, count } => {
                ((value / width.max(1)) as usize).min(count.saturating_sub(1))
            }
        }
    }

    /// Inclusive upper bound reported for bucket `i` (the quantile
    /// estimate returned when a rank lands in it).
    pub fn upper_bound(&self, i: usize) -> u64 {
        match *self {
            Self::Pow2 => {
                if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                }
            }
            Self::Linear { width, .. } => (i as u64 + 1).saturating_mul(width.max(1)) - 1,
        }
    }

    /// Stable name used in JSON exports.
    pub fn scheme_name(&self) -> &'static str {
        match self {
            Self::Pow2 => "pow2",
            Self::Linear { .. } => "linear",
        }
    }
}

/// A monotonically increasing named counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (saturating; a counter pins at `u64::MAX`, never wraps).
    pub fn add(&self, n: u64) {
        if self.0.fetch_add(n, Ordering::Relaxed) > u64::MAX - n {
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value. For exporters mirroring an externally
    /// accumulated total (e.g. transport metrics) into the registry —
    /// normal instrumentation should only ever [`Counter::add`].
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding one `f64` (last write wins).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Publishes a new value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistInner {
    scheme: Buckets,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram; quantiles read back as the upper bound of
/// the bucket the rank falls in, without allocating.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn new(scheme: Buckets) -> Self {
        let n = scheme.len().max(1);
        Self(Arc::new(HistInner {
            scheme,
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let h = &self.0;
        h.buckets[h.scheme.index_of(value)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `p`-th percentile (`0 < p <= 100`);
    /// 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        let h = &self.0;
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().clamp(1.0, n as f64) as u64;
        let mut seen = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return h.scheme.upper_bound(i);
            }
        }
        h.scheme.upper_bound(h.buckets.len() - 1)
    }

    /// Point-in-time copy of every field.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let h = &self.0;
        let buckets: Vec<(usize, u64)> = h
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect();
        let count = h.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            scheme: h.scheme,
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { h.min.load(Ordering::Relaxed) },
            max: h.max.load(Ordering::Relaxed),
            p50: self.quantile(50.0),
            p95: self.quantile(95.0),
            p99: self.quantile(99.0),
            buckets,
        }
    }
}

/// A frozen view of one histogram; see [`Histogram::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Bucket layout.
    pub scheme: Buckets,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median upper-bound estimate.
    pub p50: u64,
    /// 95th-percentile upper-bound estimate.
    pub p95: u64,
    /// 99th-percentile upper-bound estimate.
    pub p99: u64,
    /// `(bucket index, count)` pairs, ascending, zero counts omitted.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Folds `other` into this snapshot (same name and scheme required).
    /// Bucket-count merging is exact, so the operation is associative and
    /// commutative; `min`/`max`/quantiles are recomputed from the merged
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if the schemes differ.
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(self.scheme, other.scheme, "cannot merge histograms with different buckets");
        let mut counts: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *counts.entry(i).or_insert(0) += c;
        }
        let buckets: Vec<(usize, u64)> = counts.into_iter().collect();
        let count = self.count + other.count;
        let (min, max) = match (self.count, other.count) {
            (0, 0) => (0, 0),
            (0, _) => (other.min, other.max),
            (_, 0) => (self.min, self.max),
            _ => (self.min.min(other.min), self.max.max(other.max)),
        };
        let quantile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p / 100.0) * count as f64).ceil().clamp(1.0, count as f64) as u64;
            let mut seen = 0u64;
            for &(i, c) in &buckets {
                seen += c;
                if seen >= rank {
                    return self.scheme.upper_bound(i);
                }
            }
            self.scheme.upper_bound(self.scheme.len().saturating_sub(1))
        };
        Self {
            name: self.name.clone(),
            scheme: self.scheme,
            count,
            sum: self.sum + other.sum,
            min,
            max,
            p50: quantile(50.0),
            p95: quantile(95.0),
            p99: quantile(99.0),
            buckets,
        }
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Frozen `(counters, gauges, histograms)` views of a registry.
pub type RegistryParts = (Vec<(String, u64)>, Vec<(String, f64)>, Vec<HistogramSnapshot>);

/// A shared registry of named instruments; clones share the same store.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    items: Arc<Mutex<BTreeMap<String, Instrument>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.items.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} instruments)")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Cache the handle — this takes the registration lock.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind (an instrumentation bug, not a runtime condition).
    pub fn counter(&self, name: &str) -> Counter {
        let mut items = self.items.lock().expect("registry poisoned");
        match items
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use (initial value 0.0).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut items = self.items.lock().expect("registry poisoned");
        match items
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `scheme` on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different instrument kind or a
    /// histogram with a different bucket layout.
    pub fn histogram(&self, name: &str, scheme: Buckets) -> Histogram {
        let mut items = self.items.lock().expect("registry poisoned");
        match items
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new(scheme)))
        {
            Instrument::Histogram(h) => {
                assert_eq!(h.0.scheme, scheme, "metric {name:?} has a different bucket layout");
                h.clone()
            }
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Frozen views of every instrument, names ascending.
    pub fn snapshot_parts(&self) -> RegistryParts {
        let items = self.items.lock().expect("registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, item) in items.iter() {
            match item {
                Instrument::Counter(c) => counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => histograms.push(h.snapshot(name)),
            }
        }
        (counters, gauges, histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a");
        c.inc();
        c.add(41);
        assert_eq!(reg.counter("a").get(), 42, "same name returns the same counter");
        c.store(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauges_hold_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("q");
        g.set(2.5);
        g.set(-7.25);
        assert_eq!(reg.gauge("q").get(), -7.25);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("x");
        let _ = reg.counter("x");
    }

    #[test]
    fn pow2_histogram_quantiles_bound_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", Buckets::Pow2);
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(50_000);
        let p50 = h.quantile(50.0);
        assert!((100..=255).contains(&p50), "{p50}");
        assert!(h.quantile(99.0) <= 255);
        assert!(h.quantile(100.0) >= 50_000);
        let snap = h.snapshot("lat");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min, 100);
        assert_eq!(snap.max, 50_000);
        assert_eq!(snap.sum, 99 * 100 + 50_000);
    }

    #[test]
    fn linear_histogram_keeps_exact_small_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("batch", Buckets::Linear { width: 1, count: 65 });
        h.record(1);
        h.record(7);
        h.record(7);
        h.record(1_000); // clamps to last bucket
        let snap = h.snapshot("batch");
        assert_eq!(snap.buckets, vec![(1, 1), (7, 2), (64, 1)]);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("e", Buckets::Pow2);
        assert_eq!(h.quantile(99.0), 0);
        let snap = h.snapshot("e");
        assert_eq!((snap.count, snap.min, snap.max, snap.sum), (0, 0, 0, 0));
    }

    #[test]
    fn snapshot_parts_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("z").inc();
        reg.counter("a").inc();
        reg.gauge("m").set(1.0);
        let (counters, gauges, _) = reg.snapshot_parts();
        assert_eq!(counters.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(), vec!["a", "z"]);
        assert_eq!(gauges.len(), 1);
    }

    #[test]
    fn merge_is_exact_on_buckets() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("a", Buckets::Pow2);
        let b = reg.histogram("b", Buckets::Pow2);
        let all = reg.histogram("all", Buckets::Pow2);
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 5, 1000] {
            b.record(v);
            all.record(v);
        }
        let merged = a.snapshot("x").merge(&b.snapshot("x"));
        let direct = all.snapshot("x");
        assert_eq!(merged.buckets, direct.buckets);
        assert_eq!(merged.count, direct.count);
        assert_eq!(merged.sum, direct.sum);
        assert_eq!((merged.min, merged.max), (direct.min, direct.max));
        assert_eq!((merged.p50, merged.p95, merged.p99), (direct.p50, direct.p95, direct.p99));
    }
}
