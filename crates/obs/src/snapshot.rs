//! [`ObsSnapshot`]: the single frozen export of an observability session —
//! every counter, gauge and histogram from the registry plus the span
//! tree — with a bit-exact JSON round-trip.

use crate::clock::ClockKind;
use crate::json::{Json, JsonError};
use crate::registry::{Buckets, HistogramSnapshot};
use crate::span::SpanRecord;

/// One node of the exported span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Pre-order id assigned at enter time.
    pub id: u64,
    /// Region name.
    pub name: String,
    /// Clock reading at enter.
    pub start_ns: u64,
    /// Clock reading at exit.
    pub end_ns: u64,
    /// Child spans, ascending by id.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Flattens the subtree into `(depth, name)` pairs in pre-order —
    /// a compact shape for asserting on structure in tests.
    pub fn outline(&self) -> Vec<(usize, String)> {
        fn walk(node: &SpanNode, depth: usize, out: &mut Vec<(usize, String)>) {
            out.push((depth, node.name.clone()));
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = Vec::new();
        walk(self, 0, &mut out);
        out
    }
}

/// Rebuilds the span forest from flat ring-buffer records. Records whose
/// parent was overwritten by the ring buffer are promoted to roots; the
/// forest and every child list are ordered by id (= enter order).
pub fn build_span_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let present: std::collections::BTreeSet<u64> = sorted.iter().map(|r| r.id).collect();
    let mut nodes: std::collections::BTreeMap<u64, SpanNode> = sorted
        .iter()
        .map(|r| {
            (
                r.id,
                SpanNode {
                    id: r.id,
                    name: r.name.to_string(),
                    start_ns: r.start_ns,
                    end_ns: r.end_ns,
                    children: Vec::new(),
                },
            )
        })
        .collect();
    let mut roots = Vec::new();
    // children have larger ids than parents (pre-order assignment), so
    // walking ids descending lets each node be complete before it is
    // attached to its parent
    for r in sorted.iter().rev() {
        let node = nodes.remove(&r.id).expect("node present");
        if r.parent != 0 && present.contains(&r.parent) {
            nodes.get_mut(&r.parent).expect("parent still pending").children.insert(0, node);
        } else {
            roots.insert(0, node);
        }
    }
    roots
}

/// A frozen, comparable, JSON-serializable view of one observability
/// session. Two seeded sim-clock runs produce equal snapshots; see the
/// crate docs for the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Which clock stamped the data.
    pub clock: ClockKind,
    /// Clock reading when the snapshot was taken.
    pub now_ns: u64,
    /// `(name, value)` for every counter, names ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, names ascending.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram, names ascending.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span forest ordered by enter time.
    pub spans: Vec<SpanNode>,
    /// Spans lost to ring-buffer wrap-around.
    pub dropped_spans: u64,
}

impl ObsSnapshot {
    /// Counter value by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Gauge value by name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// All counters under a dotted-name prefix (e.g. `"sim."` or
    /// `"fed."`), in ascending name order — the slice a golden-trace test
    /// pins without freezing every other subsystem's counters.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters.iter().filter(|(n, _)| n.starts_with(prefix)).cloned().collect()
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pre-order `(depth, name)` outline of the whole span forest.
    pub fn span_outline(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for root in &self.spans {
            out.extend(root.outline());
        }
        out
    }

    /// Serializes to compact JSON. The output is a pure function of the
    /// snapshot contents (keys in fixed order, shortest-round-trip float
    /// formatting), so equal snapshots produce identical strings.
    pub fn to_json(&self) -> String {
        fn span_json(node: &SpanNode) -> Json {
            Json::Obj(vec![
                ("id".into(), Json::u64(node.id)),
                ("name".into(), Json::str(node.name.clone())),
                ("start_ns".into(), Json::u64(node.start_ns)),
                ("end_ns".into(), Json::u64(node.end_ns)),
                ("children".into(), Json::Arr(node.children.iter().map(span_json).collect())),
            ])
        }
        let hist_json = |h: &HistogramSnapshot| {
            let mut members = vec![
                ("name".into(), Json::str(h.name.clone())),
                ("scheme".into(), Json::str(h.scheme.scheme_name())),
            ];
            if let Buckets::Linear { width, count } = h.scheme {
                members.push(("width".into(), Json::u64(width)));
                members.push(("bucket_count".into(), Json::u64(count as u64)));
            }
            members.extend([
                ("count".into(), Json::u64(h.count)),
                ("sum".into(), Json::u64(h.sum)),
                ("min".into(), Json::u64(h.min)),
                ("max".into(), Json::u64(h.max)),
                ("p50".into(), Json::u64(h.p50)),
                ("p95".into(), Json::u64(h.p95)),
                ("p99".into(), Json::u64(h.p99)),
                (
                    "buckets".into(),
                    Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(i, c)| Json::Arr(vec![Json::u64(i as u64), Json::u64(c)]))
                            .collect(),
                    ),
                ),
            ]);
            Json::Obj(members)
        };
        Json::Obj(vec![
            ("clock".into(), Json::str(self.clock.name())),
            ("now_ns".into(), Json::u64(self.now_ns)),
            (
                "counters".into(),
                Json::Obj(self.counters.iter().map(|(n, v)| (n.clone(), Json::u64(*v))).collect()),
            ),
            (
                "gauges".into(),
                Json::Obj(self.gauges.iter().map(|(n, v)| (n.clone(), Json::Num(*v))).collect()),
            ),
            ("histograms".into(), Json::Arr(self.histograms.iter().map(hist_json).collect())),
            ("spans".into(), Json::Arr(self.spans.iter().map(span_json).collect())),
            ("dropped_spans".into(), Json::u64(self.dropped_spans)),
        ])
        .to_string()
    }

    /// Parses a snapshot back from [`ObsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let bad = |message: &'static str| JsonError { message, offset: 0 };
        let doc = Json::parse(text)?;
        let clock = doc
            .get("clock")
            .and_then(Json::as_str)
            .and_then(ClockKind::parse)
            .ok_or(bad("missing or invalid clock"))?;
        let now_ns = doc.get("now_ns").and_then(Json::as_u64).ok_or(bad("missing now_ns"))?;
        let counters = match doc.get("counters") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                .collect::<Option<Vec<_>>>()
                .ok_or(bad("non-integer counter"))?,
            _ => return Err(bad("missing counters")),
        };
        let gauges = match doc.get("gauges") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(n, v)| v.as_f64().map(|v| (n.clone(), v)))
                .collect::<Option<Vec<_>>>()
                .ok_or(bad("non-number gauge"))?,
            _ => return Err(bad("missing gauges")),
        };

        fn parse_hist(v: &Json) -> Option<HistogramSnapshot> {
            let scheme = match v.get("scheme")?.as_str()? {
                "pow2" => Buckets::Pow2,
                "linear" => Buckets::Linear {
                    width: v.get("width")?.as_u64()?,
                    count: v.get("bucket_count")?.as_u64()? as usize,
                },
                _ => return None,
            };
            let buckets = v
                .get("buckets")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr()?;
                    match pair {
                        [i, c] => Some((i.as_u64()? as usize, c.as_u64()?)),
                        _ => None,
                    }
                })
                .collect::<Option<Vec<_>>>()?;
            Some(HistogramSnapshot {
                name: v.get("name")?.as_str()?.to_string(),
                scheme,
                count: v.get("count")?.as_u64()?,
                sum: v.get("sum")?.as_u64()?,
                min: v.get("min")?.as_u64()?,
                max: v.get("max")?.as_u64()?,
                p50: v.get("p50")?.as_u64()?,
                p95: v.get("p95")?.as_u64()?,
                p99: v.get("p99")?.as_u64()?,
                buckets,
            })
        }
        let histograms = doc
            .get("histograms")
            .and_then(Json::as_arr)
            .ok_or(bad("missing histograms"))?
            .iter()
            .map(parse_hist)
            .collect::<Option<Vec<_>>>()
            .ok_or(bad("invalid histogram"))?;

        fn parse_span(v: &Json) -> Option<SpanNode> {
            Some(SpanNode {
                id: v.get("id")?.as_u64()?,
                name: v.get("name")?.as_str()?.to_string(),
                start_ns: v.get("start_ns")?.as_u64()?,
                end_ns: v.get("end_ns")?.as_u64()?,
                children: v
                    .get("children")?
                    .as_arr()?
                    .iter()
                    .map(parse_span)
                    .collect::<Option<Vec<_>>>()?,
            })
        }
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or(bad("missing spans"))?
            .iter()
            .map(parse_span)
            .collect::<Option<Vec<_>>>()
            .ok_or(bad("invalid span"))?;
        let dropped_spans =
            doc.get("dropped_spans").and_then(Json::as_u64).ok_or(bad("missing dropped_spans"))?;
        Ok(Self { clock, now_ns, counters, gauges, histograms, spans, dropped_spans })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: u64, name: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord { id, parent, name, start_ns: start, end_ns: end }
    }

    #[test]
    fn tree_rebuild_orders_by_id_and_orphans_become_roots() {
        // close order (ring order) differs from enter order; parent of id 5
        // was overwritten
        let records = vec![
            record(3, 1, "batch", 5, 6),
            record(2, 1, "setup", 1, 4),
            record(1, 0, "fit", 0, 10),
            record(5, 4, "orphan", 20, 21),
        ];
        let roots = build_span_tree(&records);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "fit");
        assert_eq!(
            roots[0].children.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["setup", "batch"]
        );
        assert_eq!(roots[1].name, "orphan");
        assert_eq!(
            roots[0].outline(),
            vec![(0, "fit".to_string()), (1, "setup".to_string()), (1, "batch".to_string())]
        );
    }

    fn sample_snapshot() -> ObsSnapshot {
        ObsSnapshot {
            clock: ClockKind::Sim,
            now_ns: 12_345,
            counters: vec![("a.count".into(), 7), ("b.bytes".into(), 1 << 40)],
            gauges: vec![("loss".into(), 0.1), ("neg".into(), -3.5)],
            histograms: vec![HistogramSnapshot {
                name: "lat".into(),
                scheme: Buckets::Linear { width: 2, count: 8 },
                count: 3,
                sum: 9,
                min: 1,
                max: 5,
                p50: 3,
                p95: 5,
                p99: 5,
                buckets: vec![(0, 1), (2, 2)],
            }],
            spans: build_span_tree(&[record(2, 1, "epoch", 1, 9), record(1, 0, "fit", 0, 10)]),
            dropped_spans: 0,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let back = ObsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn accessors_find_by_name() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("a.count"), Some(7));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("loss"), Some(0.1));
        assert_eq!(snap.histogram("lat").unwrap().count, 3);
        assert_eq!(snap.span_outline(), vec![(0, "fit".to_string()), (1, "epoch".to_string())]);
    }

    #[test]
    fn prefix_filter_selects_one_subsystem() {
        let snap = sample_snapshot();
        assert_eq!(snap.counters_with_prefix("a."), vec![("a.count".to_string(), 7)]);
        assert_eq!(snap.counters_with_prefix("b."), vec![("b.bytes".to_string(), 1 << 40)]);
        assert!(snap.counters_with_prefix("sim.").is_empty());
        assert_eq!(snap.counters_with_prefix("").len(), 2, "empty prefix keeps everything");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ObsSnapshot::from_json("{}").is_err());
        assert!(ObsSnapshot::from_json("not json").is_err());
        assert!(ObsSnapshot::from_json("{\"clock\":\"lunar\"}").is_err());
    }
}
