//! Structured span tracing: a tree of timed regions feeding a fixed-size
//! ring buffer.
//!
//! Spans carry an explicit parent (no thread-local ambient context — the
//! serve worker pool and the federated client threads would make that
//! nondeterministic): a root span comes from [`Tracer::root`], children
//! from [`Span::child`]. Ids are assigned at *enter* time from one atomic
//! counter, so under deterministic control flow the pre-order numbering —
//! and therefore the whole exported tree — is reproducible. Closing a
//! span (drop or [`Span::exit`]) stamps its duration from the shared
//! [`Clock`] and pushes one record into a ring buffer of fixed capacity;
//! when the buffer wraps, the oldest records are overwritten and a
//! `dropped` counter remembers how many were lost.

use crate::clock::Clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring-buffer capacity (closed spans retained).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One closed span as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Pre-order id assigned at enter time (1-based; 0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span, 0 for roots.
    pub parent: u64,
    /// Static region name, e.g. `"train.epoch"`.
    pub name: &'static str,
    /// Clock reading at enter.
    pub start_ns: u64,
    /// Clock reading at exit (`>= start_ns`).
    pub end_ns: u64,
}

struct RingLog {
    records: Vec<SpanRecord>,
    capacity: usize,
    /// Next write position when full (records.len() == capacity).
    head: usize,
    dropped: u64,
}

impl RingLog {
    fn push(&mut self, rec: SpanRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

struct TracerInner {
    clock: Clock,
    next_id: AtomicU64,
    log: Mutex<RingLog>,
}

/// A cloneable handle to one span log; clones share clock, ids and buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let log = self.inner.log.lock().expect("tracer poisoned");
        write!(f, "Tracer({} spans, {} dropped)", log.records.len(), log.dropped)
    }
}

impl Tracer {
    /// A tracer reading `clock`, retaining up to `capacity` closed spans.
    pub fn new(clock: Clock, capacity: usize) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                clock,
                next_id: AtomicU64::new(1),
                log: Mutex::new(RingLog {
                    records: Vec::new(),
                    capacity: capacity.max(1),
                    head: 0,
                    dropped: 0,
                }),
            }),
        }
    }

    /// Opens a top-level span named `name`.
    pub fn root(&self, name: &'static str) -> Span {
        self.open(name, 0)
    }

    fn open(&self, name: &'static str, parent: u64) -> Span {
        Span {
            tracer: self.clone(),
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start_ns: self.inner.clock.now_ns(),
            closed: false,
        }
    }

    /// Closed spans in close order, plus how many older ones the ring
    /// buffer overwrote.
    pub fn drain_view(&self) -> (Vec<SpanRecord>, u64) {
        let log = self.inner.log.lock().expect("tracer poisoned");
        let mut out = Vec::with_capacity(log.records.len());
        // unwind the ring so the result is oldest-first
        out.extend_from_slice(&log.records[log.head..]);
        out.extend_from_slice(&log.records[..log.head]);
        (out, log.dropped)
    }

    /// The clock this tracer stamps spans with.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }
}

/// An open timed region; closes on [`Span::exit`] or drop.
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    closed: bool,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Span#{}({})", self.id, self.name)
    }
}

impl Span {
    /// Opens a child region of this span.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer.open(name, self.id)
    }

    /// This span's pre-order id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The region name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Closes the span now (otherwise drop does it).
    pub fn exit(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let end_ns = self.tracer.inner.clock.now_ns().max(self.start_ns);
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            end_ns,
        };
        self.tracer.inner.log.lock().expect("tracer poisoned").push(rec);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_sim_time() {
        let clock = Clock::sim();
        let tracer = Tracer::new(clock.clone(), 64);
        let root = tracer.root("fit");
        clock.advance_ns(10);
        {
            let epoch = root.child("epoch");
            clock.advance_ns(5);
            epoch.child("batch").exit();
            clock.advance_ns(5);
            epoch.exit();
        }
        root.exit();
        let (recs, dropped) = tracer.drain_view();
        assert_eq!(dropped, 0);
        // close order: batch, epoch, fit
        assert_eq!(recs.iter().map(|r| r.name).collect::<Vec<_>>(), vec!["batch", "epoch", "fit"]);
        let batch = &recs[0];
        let epoch = &recs[1];
        let fit = &recs[2];
        assert_eq!(fit.parent, 0);
        assert_eq!(epoch.parent, fit.id);
        assert_eq!(batch.parent, epoch.id);
        assert_eq!((fit.start_ns, fit.end_ns), (0, 20));
        assert_eq!((epoch.start_ns, epoch.end_ns), (10, 20));
        assert_eq!((batch.start_ns, batch.end_ns), (15, 15));
    }

    #[test]
    fn ids_are_preorder() {
        let tracer = Tracer::new(Clock::sim(), 8);
        let a = tracer.root("a");
        let b = a.child("b");
        let c = tracer.root("c");
        assert!(a.id() < b.id() && b.id() < c.id());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tracer = Tracer::new(Clock::sim(), 2);
        tracer.root("one").exit();
        tracer.root("two").exit();
        tracer.root("three").exit();
        let (recs, dropped) = tracer.drain_view();
        assert_eq!(dropped, 1);
        assert_eq!(recs.iter().map(|r| r.name).collect::<Vec<_>>(), vec!["two", "three"]);
    }

    #[test]
    fn drop_closes_span() {
        let clock = Clock::sim();
        let tracer = Tracer::new(clock.clone(), 8);
        {
            let _s = tracer.root("scoped");
            clock.advance_ns(3);
        }
        let (recs, _) = tracer.drain_view();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].end_ns, 3);
    }
}
