//! Property tests for histogram quantile invariants and the
//! `ObsSnapshot` JSON round-trip (mirrors the `mdl_nn::saved` proptests).

use mdl_obs::{Buckets, HistogramSnapshot, Json, MetricsRegistry, Obs, ObsSnapshot};
use proptest::prelude::*;

/// Derives a bucket layout from one seed: a third Pow2, the rest linear
/// with varied width/count (the vendored proptest has no `prop_oneof`).
fn scheme_of(sel: u64) -> Buckets {
    if sel.is_multiple_of(3) {
        Buckets::Pow2
    } else {
        Buckets::Linear { width: sel % 63 + 1, count: (sel % 78 + 2) as usize }
    }
}

fn filled(scheme: Buckets, samples: &[u64]) -> HistogramSnapshot {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("h", scheme);
    for &s in samples {
        h.record(s);
    }
    h.snapshot("h")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50 ≤ p95 ≤ p99, and all quantiles sit in [min, upper_bound(max)].
    #[test]
    fn quantiles_monotone_and_bounded(
        sel in 0u64..10_000,
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let scheme = scheme_of(sel);
        let snap = filled(scheme, &samples);
        prop_assert!(snap.p50 <= snap.p95);
        prop_assert!(snap.p95 <= snap.p99);
        // quantiles are bucket upper bounds, so they are bracketed by the
        // bounds of the buckets holding the extreme samples (a linear
        // layout clamps large values into its last bucket, so comparing
        // against the raw min/max values would be too strong)
        let min_bound = scheme.upper_bound(scheme.index_of(snap.min));
        let max_bound = scheme.upper_bound(scheme.index_of(snap.max));
        prop_assert!(snap.p50 >= min_bound, "p50 {} < bound {}", snap.p50, min_bound);
        prop_assert!(snap.p99 <= max_bound, "p99 {} > bound {}", snap.p99, max_bound);
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *samples.iter().min().unwrap());
        prop_assert_eq!(snap.max, *samples.iter().max().unwrap());
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), a ⊕ b == b ⊕ a, and merging in pieces
    /// equals recording everything into one histogram.
    #[test]
    fn merge_associative_and_commutative(
        sel in 0u64..10_000,
        xs in prop::collection::vec(0u64..1_000_000, 0..60),
        ys in prop::collection::vec(0u64..1_000_000, 0..60),
        zs in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let scheme = scheme_of(sel);
        let a = filled(scheme, &xs);
        let b = filled(scheme, &ys);
        let c = filled(scheme, &zs);
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(a.merge(&b).merge(&c), filled(scheme, &all));
    }

    /// Snapshot → JSON → snapshot → JSON is bit-exact for arbitrary
    /// counters, gauges, histogram samples and span shapes.
    #[test]
    fn snapshot_json_round_trip(
        counter_seeds in prop::collection::vec(any::<u64>(), 1..6),
        gauge_bits in prop::collection::vec(any::<i64>(), 0..4),
        samples in prop::collection::vec(0u64..1_000_000, 0..50),
        advances in prop::collection::vec(1u64..1_000_000, 1..6),
    ) {
        let obs = Obs::sim();
        for (i, seed) in counter_seeds.iter().enumerate() {
            obs.registry().counter(&format!("c{i}.count")).add(seed % 1_000_000);
        }
        for (i, bits) in gauge_bits.iter().enumerate() {
            obs.registry().gauge(&format!("g{i}")).set(*bits as f64 / 1e6);
        }
        let h = obs.registry().histogram("lat", Buckets::Pow2);
        let root = obs.root_span("root");
        for (i, ns) in advances.iter().enumerate() {
            let child = root.child(if i % 2 == 0 { "even" } else { "odd" });
            obs.clock().advance_ns(*ns);
            child.exit();
        }
        for &s in &samples {
            h.record(s);
        }
        root.exit();

        let snap = obs.snapshot();
        let text = snap.to_json();
        let back = ObsSnapshot::from_json(&text).unwrap();
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_json(), text);
    }

    /// The JSON writer/parser round-trips arbitrary strings, including
    /// quotes, backslashes, control characters and non-ASCII.
    #[test]
    fn json_string_round_trip(codes in prop::collection::vec(0u32..0x11_0000, 0..40)) {
        let s: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let text = Json::str(s.clone()).to_string();
        prop_assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s.as_str()));
    }

    /// Finite f64 values survive format → parse with identical bits.
    #[test]
    fn json_f64_round_trip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            return;
        }
        let text = Json::Num(v).to_string();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }
}
